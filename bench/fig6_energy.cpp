// Figure 6: energy-consumption comparison of no-mobility (baseline),
// cost-unaware mobility, and iMobif, across flow-length / k / alpha
// settings. One panel per paper sub-figure:
//
//   (a) k = 0.5, alpha = 2, mean flow 100 KB  (short flows)
//   (b) mobility vs transmission energy decomposition for panel (a)
//   (c) k = 0.5, alpha = 2, mean flow 1 MB    (long flows)
//   (d) k = 1.0, alpha = 2, mean flow 1 MB
//   (e) k = 0.1, alpha = 2, mean flow 1 MB
//   (f) k = 0.5, alpha = 3, mean flow 1 MB
//
// Paper shape to reproduce: cost-unaware is far above 1 for short flows
// and usually above 1 even for long flows (except small k); iMobif stays
// at or below 1 essentially always, and tracks cost-unaware on instances
// where mobility genuinely pays.
#include "bench_common.hpp"

namespace {

using namespace imobif;

struct PanelSpec {
  const char* name;
  double k;
  double alpha;
  double mean_flow_bits;
};

void run_panel(const PanelSpec& spec, const bench::BenchConfig& config,
               bool print_decomposition, runtime::SweepReport& report,
               bench::FaultCounters& fault_totals) {
  exp::ScenarioParams p = bench::paper_defaults();
  p.mobility.k = spec.k;
  p.radio.alpha = spec.alpha;
  if (spec.alpha == 3.0) p.radio.b = bench::kAmplifierAlpha3;
  p.mean_flow_bits = util::Bits{spec.mean_flow_bits};
  bench::apply_seed(p, config);
  bench::apply_fault(p, config);

  const auto points = bench::run_comparison(p, config);
  fault_totals.add(points);

  util::Summary cu, in, mobility_j, transmit_j;
  std::vector<double> cu_ratios, in_ratios;
  std::size_t enabled = 0;
  for (const auto& pt : points) {
    cu.add(pt.energy_ratio_cost_unaware());
    in.add(pt.energy_ratio_informed());
    cu_ratios.push_back(pt.energy_ratio_cost_unaware());
    in_ratios.push_back(pt.energy_ratio_informed());
    mobility_j.add(pt.cost_unaware.movement_energy_j.value());
    transmit_j.add(pt.cost_unaware.transmit_energy_j.value());
    if (pt.informed.moved_distance_m.value() > 0.0) ++enabled;
  }

  bench::print_header(std::string("Figure 6") + spec.name);
  util::Table table({"flow", "length KB", "hops", "ratio cost-unaware",
                     "ratio imobif", "imobif notif"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    table.add_row({std::to_string(i),
                   util::Table::num(pt.flow_bits.value() / bench::kKB, 5),
                   std::to_string(pt.hops),
                   util::Table::num(pt.energy_ratio_cost_unaware()),
                   util::Table::num(pt.energy_ratio_informed()),
                   std::to_string(pt.informed.notifications)});
  }
  table.print(std::cout);

  std::cout << "\nCost-Unaware: Average: " << util::Table::num(cu.mean())
            << "   iMobif: Average: " << util::Table::num(in.mean())
            << "   (iMobif enabled mobility on " << enabled << "/"
            << points.size() << " flows)\n";
  bench::print_ratio_scatter(cu_ratios, in_ratios,
                             std::string("Figure 6") + spec.name +
                                 " - energy consumption ratio");

  const std::string panel(spec.name, 3);  // "(a)", "(c)", ...
  report.add_series(panel + " ratio_cost_unaware", cu_ratios);
  report.add_series(panel + " ratio_informed", in_ratios);

  if (print_decomposition) {
    bench::print_header(
        "Figure 6(b) - mobility vs transmission energy (cost-unaware, "
        "short flows)");
    std::cout << "Mobility Energy Consumption: Average: "
              << util::Table::num(mobility_j.mean())
              << " J   Transmission Energy Consumption: Average: "
              << util::Table::num(transmit_j.mean()) << " J\n";
    util::Series mob, tx;
    mob.name = "mobility J";
    mob.marker = 'o';
    tx.name = "transmission J";
    tx.marker = '*';
    for (std::size_t i = 0; i < points.size(); ++i) {
      mob.xs.push_back(static_cast<double>(i));
      mob.ys.push_back(points[i].cost_unaware.movement_energy_j.value());
      tx.xs.push_back(static_cast<double>(i));
      tx.ys.push_back(points[i].cost_unaware.transmit_energy_j.value());
    }
    util::PlotOptions po;
    po.title = "Figure 6(b) - energy decomposition per flow instance";
    po.x_label = "flow instance";
    po.y_label = "energy (J)";
    std::cout << util::render_scatter({mob, tx}, po);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Smaller default than the paper's 100 so the whole suite runs in
  // seconds; pass a count (or --instances) to reproduce at full scale.
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 40);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("fig6_energy");

  const PanelSpec panels[] = {
      {"(a) k=0.5 alpha=2 mean=100KB", 0.5, 2.0, 100.0 * bench::kKB},
      {"(c) k=0.5 alpha=2 mean=1MB", 0.5, 2.0, 1.0 * bench::kMB},
      {"(d) k=1.0 alpha=2 mean=1MB", 1.0, 2.0, 1.0 * bench::kMB},
      {"(e) k=0.1 alpha=2 mean=1MB", 0.1, 2.0, 1.0 * bench::kMB},
      {"(f) k=0.5 alpha=3 mean=1MB", 0.5, 3.0, 1.0 * bench::kMB},
  };
  bench::FaultCounters fault_totals;
  for (const auto& panel : panels) {
    run_panel(panel, config,
              /*print_decomposition=*/panel.k == 0.5 && panel.alpha == 2.0 &&
                  panel.mean_flow_bits < bench::kMB,
              report, fault_totals);
  }
  fault_totals.export_to(report);
  bench::export_report(report, config, stopwatch);
  return 0;
}
