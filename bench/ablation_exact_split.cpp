// Ablation A6: the paper's power-law approximation of the Theorem-1 hop
// balance vs the exact numerical solution (core/lifetime_solver.hpp).
//
// The paper claims the approximation "is effective in increasing system
// lifetime"; this bench quantifies what the closed-form shortcut gives up
// against the exact split on identical instances.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 25);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ablation_exact_split");

  bench::print_header(
      "Ablation A6 - Theorem-1 split: power-law approximation vs exact "
      "solver");

  util::Table table({"solver", "lifetime ratio avg", "lifetime ratio max",
                     ">1 instances", "avg notifications"});
  for (const bool exact : {false, true}) {
    exp::ScenarioParams p = bench::paper_defaults();
    p.strategy = net::StrategyId::kMaxLifetime;
    p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
    p.random_energy = true;
    p.energy_lo_j = util::Joules{5.0};
    p.energy_hi_j = util::Joules{100.0};
    p.exact_lifetime_split = exact;
    p.seed = 20050611;

    bench::apply_seed(p, config);

    exp::RunOptions opts;
    opts.stop_on_first_death = true;
    const auto points = bench::run_comparison(p, config, opts);

    util::Summary ratio, notif;
    std::size_t improved = 0;
    std::vector<double> series_values;
    for (const auto& pt : points) series_values.push_back(pt.lifetime_ratio_informed());
    report.add_series(std::string(exact ? "exact" : "approx") + std::string(" lifetime_ratio_informed"), series_values);
    for (const auto& pt : points) {
      ratio.add(pt.lifetime_ratio_informed());
      notif.add(static_cast<double>(pt.informed.notifications));
      if (pt.lifetime_ratio_informed() > 1.001) ++improved;
    }
    table.add_row({exact ? "exact (bisection)" : "approximation (paper)",
                   util::Table::num(ratio.mean()),
                   util::Table::num(ratio.max()),
                   std::to_string(improved) + "/" +
                       std::to_string(points.size()),
                   util::Table::num(notif.mean())});
  }
  table.print(std::cout);
  std::cout << "\nReading: at these parameters (amplifier term comparable "
               "to electronics\nterm at typical hop lengths) the exact "
               "split buys little over the paper's\napproximation - "
               "validating the paper's claim that the closed-form\n"
               "shortcut is effective.\n";
  bench::export_report(report, config, stopwatch);
  return 0;
}
