// Extension: iMobif robustness under injected channel loss (DESIGN.md §7).
//
// Sweeps the fault injector's per-delivery loss probability over the same
// paired flow instances (identical scenario seed per level, so level-to-
// level differences isolate the channel) and reports how the destination's
// notification retransmissions keep the source's mobility status
// converging as the channel degrades. A Gilbert-Elliott section repeats
// two levels with bursty loss at the matched stationary loss rate.
//
// Expected shape: notifications_applied stays near the zero-loss count for
// every loss level (retries recover the lost status changes), while
// notify_retries and dropped_injected grow with loss.
#include "bench_common.hpp"

namespace {

using namespace imobif;

struct LevelOutcome {
  double loss = 0.0;
  bool burst = false;
  std::size_t completed = 0;
  std::size_t instances = 0;
  util::Summary ratio_informed;
  util::Summary notifications;
  util::Summary retries;
  util::Summary applied;
  bench::FaultCounters counters;
};

exp::ScenarioParams lossy_params(const bench::BenchConfig& config) {
  exp::ScenarioParams p = bench::paper_defaults();
  p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
  bench::apply_seed(p, config);
  p.notify_retry_cap = bench::kBenchNotifyRetryCap;
  return p;
}

LevelOutcome run_level(const bench::BenchConfig& config, double loss,
                       bool burst) {
  exp::ScenarioParams p = lossy_params(config);
  p.fault.loss_rate = burst ? 0.0 : loss;
  if (burst) {
    // Match the stationary loss to `loss` with mean bad bursts of 5
    // deliveries: bad fraction = p_gb / (p_gb + p_bg).
    p.fault.gilbert_elliott = true;
    p.fault.p_bad_to_good = 0.2;
    p.fault.p_good_to_bad = loss * p.fault.p_bad_to_good / (1.0 - loss);
    p.fault.loss_good = 0.0;
    p.fault.loss_bad = 1.0;
  }
  p.fault.seed = config.fault_seed_set ? config.fault_seed : p.seed;

  LevelOutcome out;
  out.loss = loss;
  out.burst = burst;
  const auto points = bench::run_comparison(p, config);
  out.instances = points.size();
  for (const auto& pt : points) {
    if (pt.informed.completed) ++out.completed;
    out.ratio_informed.add(pt.energy_ratio_informed());
    out.notifications.add(static_cast<double>(pt.informed.notifications));
    out.retries.add(static_cast<double>(pt.informed.notify_retries));
    out.applied.add(
        static_cast<double>(pt.informed.notifications_applied));
  }
  out.counters.add(points);
  return out;
}

std::string level_tag(const LevelOutcome& out) {
  std::string tag = out.burst ? "burst_" : "loss_";
  tag += util::Table::num(out.loss, 2);
  return tag;
}

}  // namespace

int main(int argc, char** argv) {
  // Fewer instances than the fig benches: each level replays the full
  // three-mode comparison, and six levels + two burst levels = 8 sweeps.
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 12);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ext_lossy");

  const double levels[] = {0.0, 0.05, 0.1, 0.2, 0.35, 0.5};
  const double burst_levels[] = {0.1, 0.35};

  std::vector<LevelOutcome> outcomes;
  for (const double loss : levels) {
    outcomes.push_back(run_level(config, loss, /*burst=*/false));
  }
  for (const double loss : burst_levels) {
    outcomes.push_back(run_level(config, loss, /*burst=*/true));
  }

  bench::print_header(
      "Extension - notification reliability under channel loss");
  util::Table table({"loss", "model", "completed", "notif/flow",
                     "retries/flow", "applied/flow", "energy ratio",
                     "injected drops"});
  for (const auto& out : outcomes) {
    table.add_row({util::Table::num(out.loss, 2),
                   out.burst ? "burst" : "iid",
                   std::to_string(out.completed) + "/" +
                       std::to_string(out.instances),
                   util::Table::num(out.notifications.mean()),
                   util::Table::num(out.retries.mean()),
                   util::Table::num(out.applied.mean()),
                   util::Table::num(out.ratio_informed.mean()),
                   std::to_string(out.counters.medium.dropped_injected)});
  }
  table.print(std::cout);

  std::cout
      << "\nPaper check: applied/flow should hold roughly level across the\n"
         "loss sweep (retries recover dropped status changes) while\n"
         "retries/flow and injected drops climb with the loss rate; the\n"
         "burst rows stress the same machinery with correlated loss.\n";

  for (const auto& out : outcomes) {
    const std::string tag = level_tag(out);
    report.add_series(tag + " notifications",
                      {out.notifications.mean()}, false);
    report.add_series(tag + " retries", {out.retries.mean()}, false);
    report.add_series(tag + " applied", {out.applied.mean()}, false);
    report.add_series(tag + " ratio_informed",
                      {out.ratio_informed.mean()}, false);
  }
  bench::FaultCounters grand;
  for (const auto& out : outcomes) grand.add(out.counters);
  grand.export_to(report);
  bench::export_report(report, config, stopwatch);
  return 0;
}
