// Ablation A7: destination-side notification damping.
//
// Figure 7 shows a small *average* notification count but our replication
// exhibits a rare oscillating tail (a borderline flow flips enable/
// disable near its end). The `notification_min_gap` option rate-limits
// status-change requests; this sweep shows the tail shrinking while the
// energy ratio stays intact.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 40);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ablation_damping");

  bench::print_header("Ablation A7 - notification damping gap sweep");

  util::Table table({"min gap (pkts)", "imobif avg ratio",
                     "notifications avg", "notifications max"});
  for (const std::uint32_t gap : {0u, 2u, 4u, 8u, 16u}) {
    exp::ScenarioParams p = bench::paper_defaults();
    p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
    p.mobility.k = 0.5;
    p.notification_min_gap = gap;

    bench::apply_seed(p, config);

    const auto points = bench::run_comparison(p, config);
    util::Summary ratio, notif;
    std::vector<double> series_values;
    for (const auto& pt : points) series_values.push_back(pt.energy_ratio_informed());
    report.add_series(std::to_string(gap) + std::string(" energy_ratio_informed"), series_values);
    for (const auto& pt : points) {
      ratio.add(pt.energy_ratio_informed());
      notif.add(static_cast<double>(pt.informed.notifications));
    }
    table.add_row({std::to_string(gap), util::Table::num(ratio.mean()),
                   util::Table::num(notif.mean()),
                   util::Table::num(notif.max())});
  }
  table.print(std::cout);
  std::cout << "\nReading: a gap of a few packets caps the oscillation tail "
               "(max) without\nmoving the energy ratio - the decision is "
               "only delayed by a handful of\npackets on a flow thousands "
               "of packets long.\n";
  bench::export_report(report, config, stopwatch);
  return 0;
}
