// Figure 7: the number of notification packets per flow under iMobif.
//
// Paper claim: the cost/benefit comparison is consistent between
// successive packets, so only a handful of notifications are sent per
// flow (no oscillation).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 60);
  const bench::Stopwatch stopwatch;

  exp::ScenarioParams p = bench::paper_defaults();
  p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
  bench::apply_seed(p, config);
  bench::apply_fault(p, config);

  const auto points = bench::run_comparison(p, config);

  bench::print_header("Figure 7 - notification packets per flow (iMobif)");
  util::Summary notif;
  util::Series series;
  series.name = "notifications";
  series.marker = '*';
  util::Table table({"flow", "length KB", "notifications", "status flips"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& run = points[i].informed;
    notif.add(static_cast<double>(run.notifications));
    series.xs.push_back(static_cast<double>(i));
    series.ys.push_back(static_cast<double>(run.notifications));
    table.add_row({std::to_string(i),
                   util::Table::num(points[i].flow_bits.value() / bench::kKB, 5),
                   std::to_string(run.notifications),
                   std::to_string(run.notifications)});
  }
  table.print(std::cout);
  std::cout << "\nNumber of Notifications: Average: "
            << util::Table::num(notif.mean()) << "   max: "
            << util::Table::num(notif.max()) << "\n";

  util::PlotOptions po;
  po.title = "Figure 7 - notification packets per flow instance";
  po.x_label = "flow instance";
  po.y_label = "packets";
  std::cout << util::render_scatter({series}, po);

  std::cout << "\nPaper check: averages in the low single digits and no "
               "flow with a large\nnotification count indicate the "
               "cost/benefit signal is stable packet-to-packet.\n";

  runtime::SweepReport report("fig7_notifications");
  report.add_series("notifications", series.ys);
  bench::export_fault_counters(report, config, points);
  bench::export_report(report, config, stopwatch);
  return 0;
}
