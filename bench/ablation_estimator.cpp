// Ablation A5: the cost/benefit estimator (see core/imobif_policy.hpp).
//
// kPaperLocal is the literal Figure-1 listing: each sender evaluates its
// own out-hop against the next node's *current* position. Because a
// relay's relocation mostly shortens the hop *into* it, the per-sender
// view undercounts the benefit and enabling under-fires on bent paths.
// kHopReceiver (library default) evaluates each hop once, at its
// receiver, with both endpoints' stamped plans - same local information,
// carried one hop in the header - and reproduces the paper's reported
// enable behaviour.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 30);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ablation_estimator");

  bench::print_header(
      "Ablation A5 - benefit estimator: paper-local vs hop-receiver");

  util::Table table({"estimator", "k", "imobif avg ratio", "enabled flows",
                     "avg notifications"});
  for (const double k : {0.1, 0.5}) {
    for (const bool paper_local : {false, true}) {
      exp::ScenarioParams p = bench::paper_defaults();
      p.mobility.k = k;
      p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
      p.paper_local_estimator = paper_local;

      bench::apply_seed(p, config);

      const auto points = bench::run_comparison(p, config);
      util::Summary ratio, notif;
      std::size_t enabled = 0;
      std::vector<double> series_values;
      for (const auto& pt : points)
        series_values.push_back(pt.energy_ratio_informed());
      report.add_series(std::string(paper_local ? "paper-local"
                                               : "hop-receiver") +
                            " k=" + util::Table::num(k) +
                            " energy_ratio_informed",
                        series_values);
      for (const auto& pt : points) {
        ratio.add(pt.energy_ratio_informed());
        notif.add(static_cast<double>(pt.informed.notifications));
        if (pt.informed.moved_distance_m.value() > 0.0) ++enabled;
      }
      table.add_row({paper_local ? "paper-local" : "hop-receiver",
                     util::Table::num(k), util::Table::num(ratio.mean()),
                     std::to_string(enabled) + "/" +
                         std::to_string(points.size()),
                     util::Table::num(notif.mean())});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: both estimators keep iMobif at or below the "
               "baseline (safety),\nbut the hop-receiver estimator enables "
               "mobility on more of the genuinely\nprofitable instances, "
               "matching the paper's reported gains.\n";
  bench::export_report(report, config, stopwatch);
  return 0;
}
