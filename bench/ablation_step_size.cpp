// Ablation A4: the per-packet movement cap ("maximum distance traveled in
// each step"). Small steps converge slowly (savings arrive late in the
// flow); large steps front-load movement cost and overshoot moving
// targets.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 25);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ablation_step_size");

  bench::print_header("Ablation A4 - mobility step-size sweep");

  util::Table table({"max step m", "cost-unaware avg ratio",
                     "imobif avg ratio", "imobif moved m (avg)"});
  for (const double step : {0.25, 0.5, 1.0, 2.0, 5.0}) {
    exp::ScenarioParams p = bench::paper_defaults();
    p.mobility.k = 0.1;
    p.mobility.max_step_m = step;
    p.mean_flow_bits = util::Bits{1.0 * bench::kMB};

    bench::apply_seed(p, config);

    const auto points = bench::run_comparison(p, config);
    util::Summary cu, in, moved;
    std::vector<double> series_values;
    for (const auto& pt : points) series_values.push_back(pt.energy_ratio_informed());
    report.add_series(util::Table::num(step) + std::string(" energy_ratio_informed"), series_values);
    for (const auto& pt : points) {
      cu.add(pt.energy_ratio_cost_unaware());
      in.add(pt.energy_ratio_informed());
      moved.add(pt.informed.moved_distance_m.value());
    }
    table.add_row({util::Table::num(step), util::Table::num(cu.mean()),
                   util::Table::num(in.mean()),
                   util::Table::num(moved.mean())});
  }
  table.print(std::cout);
  std::cout << "\nReading: iMobif is insensitive to the cap (it only moves "
               "when the full\nrelocation pays), while the cost-unaware "
               "mover degrades past ~1-2 m/step:\nlarger steps chase the "
               "moving midpoint targets and overshoot. The paper's\n1 "
               "m/step (1 m/s at 1 packet/s) sits safely in the flat "
               "region for both.\n";
  bench::export_report(report, config, stopwatch);
  return 0;
}
