// Mobility x traffic grid: iMobif vs static relays under ambient motion
// (DESIGN.md §14).
//
// Sweeps the model zoo — {random-waypoint, gauss-markov, group} background
// motion crossed with {cbr, onoff, pareto} traffic shaping — plus one
// trace-replay cell, replaying the same paired flow instances per cell so
// cell-to-cell differences isolate the ambient models. Each cell runs the
// full three-mode comparison (baseline / cost-unaware / iMobif).
//
// Expected shape: iMobif's energy ratio stays at or below the cost-unaware
// ratio in every cell; ambient motion erodes both (relay positions decay
// between packets), bursty traffic erodes them further (longer idle gaps
// per delivered bit), and the informed policy degrades most gracefully.
//
// The trace cell reads --trace PATH when given; otherwise it writes the
// built-in demo schedule (a copy of bench/traces/demo.trace) to a fixed
// path so local and --remote farm runs resolve the same file.
#include <fstream>

#include "bench_common.hpp"
#include "mob/params.hpp"
#include "traffic/params.hpp"

namespace {

using namespace imobif;

/// Byte-for-byte the committed bench/traces/demo.trace (ten nodes
/// sweeping the arena over 400 s); see that file for the annotated copy.
constexpr const char* kDemoTrace =
    "0 0 100 100\n0 200 900 100\n0 400 900 900\n"
    "1 0 900 900\n1 200 100 900\n1 400 100 100\n"
    "2 0 500 50\n2 150 500 500\n2 400 500 950\n"
    "3 0 50 500\n3 150 500 500\n3 400 950 500\n"
    "4 0 200 800\n4 250 800 800\n4 400 800 200\n"
    "5 0 800 200\n5 250 200 200\n5 400 200 800\n"
    "6 0 100 500\n6 100 300 700\n6 300 700 300\n6 400 900 500\n"
    "7 0 900 500\n7 100 700 300\n7 300 300 700\n7 400 100 500\n"
    "8 0 400 400\n8 400 600 600\n"
    "9 0 600 600\n9 400 400 400\n";

struct Cell {
  mob::ModelId mobility;
  traffic::ModelId traffic;
};

struct CellOutcome {
  Cell cell;
  std::size_t completed = 0;
  std::size_t instances = 0;
  util::Summary ratio_unaware;
  util::Summary ratio_informed;
  util::Summary moved_m_informed;
  util::Summary notifications;
};

exp::ScenarioParams cell_params(const bench::BenchConfig& config,
                                const Cell& cell,
                                const std::string& trace_path) {
  exp::ScenarioParams p = bench::paper_defaults();
  // Long flows (the paper's Fig-6 "long" point): short flows never clear
  // the relocation crossover, so the informed policy would sit idle in
  // every cell and the grid would only exercise the cost-unaware mode.
  p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
  bench::apply_seed(p, config);
  bench::apply_fault(p, config);

  p.mob.model = cell.mobility;
  if (cell.mobility == mob::ModelId::kTrace) {
    p.mob.trace_file = trace_path;
  } else if (p.mob.enabled()) {
    p.mob.update_s = util::Seconds{1.0};
    p.mob.speed_min = util::MetersPerSecond{0.5};
    p.mob.speed_max = util::MetersPerSecond{2.0};
    p.mob.pause_s = util::Seconds{10.0};
  }
  p.traffic.model = cell.traffic;
  return p;
}

CellOutcome run_cell(const bench::BenchConfig& config, const Cell& cell,
                     const std::string& trace_path) {
  CellOutcome out;
  out.cell = cell;
  const auto points =
      bench::run_comparison(cell_params(config, cell, trace_path), config);
  out.instances = points.size();
  for (const auto& pt : points) {
    if (pt.informed.completed) ++out.completed;
    out.ratio_unaware.add(pt.energy_ratio_cost_unaware());
    out.ratio_informed.add(pt.energy_ratio_informed());
    out.moved_m_informed.add(pt.informed.moved_distance_m.value());
    out.notifications.add(static_cast<double>(pt.informed.notifications));
  }
  return out;
}

std::string cell_tag(const Cell& cell) {
  return std::string(mob::to_string(cell.mobility)) + "/" +
         traffic::to_string(cell.traffic);
}

}  // namespace

int main(int argc, char** argv) {
  // 10 cells x 3 modes each: keep the per-cell instance count small.
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 4);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("mobility_sweep");

  const util::Args args(argc, argv);
  std::string trace_path = args.get_string("trace", "");
  if (trace_path.empty()) {
    // Fixed path (not CWD-relative): a --remote farm worker on this host
    // resolves the scenario's embedded trace_file to the same bytes.
    trace_path = "/tmp/imobif_mobility_demo.trace";
    std::ofstream out(trace_path, std::ios::binary | std::ios::trunc);
    out << kDemoTrace;
    if (!out) {
      std::cerr << "mobility_sweep: cannot write " << trace_path << "\n";
      return 1;
    }
  }

  std::vector<Cell> cells;
  for (const mob::ModelId m :
       {mob::ModelId::kRandomWaypoint, mob::ModelId::kGaussMarkov,
        mob::ModelId::kGroup}) {
    for (const traffic::ModelId t :
         {traffic::ModelId::kCbr, traffic::ModelId::kOnOff,
          traffic::ModelId::kPareto}) {
      cells.push_back({m, t});
    }
  }
  cells.push_back({mob::ModelId::kTrace, traffic::ModelId::kCbr});

  std::vector<CellOutcome> outcomes;
  outcomes.reserve(cells.size());
  for (const Cell& cell : cells) {
    outcomes.push_back(run_cell(config, cell, trace_path));
  }

  bench::print_header("Mobility x traffic grid - iMobif vs static relays");
  util::Table table({"cell", "completed", "ratio unaware", "ratio imobif",
                     "moved m (imobif)", "notif/flow"});
  for (const auto& out : outcomes) {
    table.add_row({cell_tag(out.cell),
                   std::to_string(out.completed) + "/" +
                       std::to_string(out.instances),
                   util::Table::num(out.ratio_unaware.mean()),
                   util::Table::num(out.ratio_informed.mean()),
                   util::Table::num(out.moved_m_informed.mean()),
                   util::Table::num(out.notifications.mean())});
  }
  table.print(std::cout);

  std::cout
      << "\nPaper check: the informed ratio should stay at or below the\n"
         "cost-unaware ratio in every cell; ambient motion and bursty\n"
         "traffic erode both, the informed policy most gracefully.\n";

  for (const auto& out : outcomes) {
    const std::string tag = cell_tag(out.cell);
    report.add_series(tag + " ratio_unaware", {out.ratio_unaware.mean()},
                      false);
    report.add_series(tag + " ratio_informed", {out.ratio_informed.mean()},
                      false);
    report.add_series(tag + " moved_m_informed",
                      {out.moved_m_informed.mean()}, false);
    report.add_series(tag + " notifications", {out.notifications.mean()},
                      false);
  }
  bench::export_report(report, config, stopwatch);
  return 0;
}
