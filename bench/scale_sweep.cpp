// scale_sweep: events/sec and bytes/node from 1e2 to 1e6 nodes.
//
// The production-scale charter (ROADMAP item 1, DESIGN.md §12) stands on
// three core changes — grid-only neighbor discovery, struct-of-arrays hot
// state, batched same-tick event draining. This bench charts what they
// buy: for each node count it builds a constant-density network (the
// paper's 100 nodes per 1000 m square, area scaled with sqrt(N)), starts
// HELLO beaconing plus one corner-to-corner greedy flow, drains a fixed
// event budget, and reports executed events, events/sec, and bytes/node
// for the scale-critical structures (NodeStore columns, grid index, event
// queue).
//
// `events_executed` and `bytes_per_node` are deterministic in the seed;
// `events_per_sec` and the wall_ms lines are machine-dependent anchors,
// like the timing fields of every other committed baseline
// (bench/baselines/README.md).
//
//   ./bench/scale_sweep                        # full sweep, 1e2..1e6
//   ./bench/scale_sweep --nodes 1000000        # one point
//   ./bench/scale_sweep --max-nodes 100000     # sweep capped at 1e5 (CI)
//   ./bench/scale_sweep --events 2000000 --json BENCH_scale.json

#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/greedy_routing.hpp"
#include "net/network.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace imobif;

struct PointConfig {
  std::size_t nodes = 0;
  std::size_t event_budget = 0;
  std::uint64_t seed = 0;
};

struct PointResult {
  std::size_t nodes = 0;
  double build_ms = 0.0;
  double run_ms = 0.0;
  std::uint64_t events_executed = 0;
  double events_per_sec = 0.0;
  double sim_seconds = 0.0;
  double bytes_per_node = 0.0;
};

PointResult run_point(const PointConfig& point) {
  // Constant density: the paper's 100 nodes in a 1000 m square, area
  // scaled with sqrt(N) so neighborhood sizes — and thus per-event work —
  // stay comparable across the sweep.
  const double side =
      1000.0 * std::sqrt(static_cast<double>(point.nodes) / 100.0);

  net::NetworkConfig config;
  config.medium.comm_range_m = 180.0;
  config.radio.a = 1e-7;
  config.radio.b = 5e-10;
  config.radio.alpha = 2.0;

  const bench::Stopwatch build_watch;
  net::Network network(config);
  util::Rng rng(point.seed);
  for (std::size_t i = 0; i < point.nodes; ++i) {
    network.add_node(
        geom::Vec2{rng.uniform(0.0, side), rng.uniform(0.0, side)},
        util::Joules{2000.0});
  }
  network.set_routing(
      std::make_unique<net::GreedyRouting>(network.medium()));

  // One corner-to-corner flow through the greedy data plane; endpoints
  // come from the grid's nearest() so the pick is deterministic and
  // touches the new query path.
  const auto src = network.medium().grid().nearest(
      geom::Vec2{0.05 * side, 0.05 * side}, side);
  const auto dst = network.medium().grid().nearest(
      geom::Vec2{0.95 * side, 0.95 * side}, side);
  network.start_hellos();
  if (src.has_value() && dst.has_value() && src->id != dst->id) {
    net::FlowSpec flow;
    flow.id = 1;
    flow.source = src->id;
    flow.destination = dst->id;
    flow.length_bits = util::Bits{1e12};  // outlasts any event budget
    network.start_flow(flow);
  }
  PointResult result;
  result.nodes = point.nodes;
  result.build_ms = build_watch.elapsed_ms();

  const bench::Stopwatch run_watch;
  const std::size_t before = network.simulator().executed_events();
  const sim::Time start = network.simulator().now();
  network.simulator().run(sim::Time::infinity(), point.event_budget);
  result.run_ms = run_watch.elapsed_ms();
  result.events_executed = network.simulator().executed_events() - before;
  result.sim_seconds = (network.simulator().now() - start).seconds();
  result.events_per_sec =
      result.run_ms > 0.0
          ? static_cast<double>(result.events_executed) /
                (result.run_ms / 1000.0)
          : 0.0;
  const std::size_t hot_bytes = network.store().approx_bytes() +
                                network.medium().grid().approx_bytes() +
                                network.simulator().queue_approx_bytes();
  result.bytes_per_node =
      static_cast<double>(hot_bytes) / static_cast<double>(point.nodes);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: " << args.program()
              << " [--nodes N] [--max-nodes M] [--events B] [--seed S]"
                 " [--json PATH]\n"
                 "  --nodes      run a single point at N nodes\n"
                 "  --max-nodes  cap the default 1e2..1e6 sweep at M\n"
                 "  --events     event budget per point (default 2000000)\n"
                 "  --seed       topology seed (default 20050610)\n"
                 "  --json       write a BENCH_scale.json artifact\n";
    return 0;
  }
  const auto event_budget =
      static_cast<std::size_t>(args.get_int("events", 2000000));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", 20050610));
  const std::string json_path = args.get_string("json", "");

  std::vector<std::size_t> counts;
  if (args.has("nodes")) {
    counts.push_back(static_cast<std::size_t>(args.get_int("nodes", 100)));
  } else {
    const auto max_nodes = static_cast<std::size_t>(
        args.get_int("max-nodes", 1000000));
    for (std::size_t n = 100; n <= max_nodes; n *= 10) counts.push_back(n);
  }

  bench::print_header("scale sweep: events/sec and bytes/node vs node count");
  std::cout << "event budget " << event_budget << " per point, seed " << seed
            << "\n\n";

  const bench::Stopwatch total_watch;
  util::Table table({"nodes", "build ms", "run ms", "events", "events/s",
                     "sim s", "bytes/node"});
  std::vector<PointResult> results;
  for (const std::size_t nodes : counts) {
    PointConfig point;
    point.nodes = nodes;
    point.event_budget = event_budget;
    point.seed = seed;
    results.push_back(run_point(point));
    const PointResult& r = results.back();
    table.add_row({std::to_string(r.nodes), util::Table::num(r.build_ms, 1),
                   util::Table::num(r.run_ms, 1),
                   std::to_string(r.events_executed),
                   util::Table::num(r.events_per_sec, 4),
                   util::Table::num(r.sim_seconds, 2),
                   util::Table::num(r.bytes_per_node, 1)});
  }
  table.print(std::cout);

  if (!json_path.empty()) {
    runtime::SweepReport report("scale_sweep");
    report.set_meta("event_budget",
                    static_cast<std::uint64_t>(event_budget));
    report.set_meta("seed", seed);
    std::vector<double> nodes_s, events_s, eps_s, bpn_s, sim_s;
    for (const PointResult& r : results) {
      nodes_s.push_back(static_cast<double>(r.nodes));
      events_s.push_back(static_cast<double>(r.events_executed));
      eps_s.push_back(r.events_per_sec);
      bpn_s.push_back(r.bytes_per_node);
      sim_s.push_back(r.sim_seconds);
    }
    report.add_series("nodes", nodes_s);
    report.add_series("events_executed", events_s);
    report.add_series("events_per_sec", eps_s);
    report.add_series("bytes_per_node", bpn_s);
    report.add_series("sim_seconds", sim_s);
    report.set_wall_ms(total_watch.elapsed_ms());
    report.write_file(json_path);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
