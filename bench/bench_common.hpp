// Shared helpers for the figure-reproduction binaries.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exp/experiments.hpp"
#include "runtime/report.hpp"
#include "runtime/sweep.hpp"
#include "svc/client.hpp"
#include "svc/frame.hpp"
#include "util/args.hpp"
#include "util/ascii_plot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace imobif::bench {

/// Flags shared by every figure/ablation binary:
///   --instances N   flow instances per series (positional N still works)
///   --seed S        override the scenario base seed
///   --jobs N        worker threads for the sweep (default 1)
///   --json PATH     write a BENCH_*.json artifact of the result series
///   --loss P        injected per-delivery channel loss probability
///   --fault-seed S  fault-injection seed (default: the scenario seed)
///   --checkpoint-dir D  persist per-unit results/checkpoints under D
///   --resume        reuse results/checkpoints found in --checkpoint-dir
///   --checkpoint-every-s T  checkpoint cadence in sim-seconds (default 30)
///   --remote HOST:PORT  run sweeps on an imobif_sweepd farm instead of
///                   in-process (results stay bit-identical either way)
struct BenchConfig {
  std::size_t instances = 0;
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::size_t jobs = 1;
  std::string json_path;
  double loss = 0.0;
  std::uint64_t fault_seed = 0;
  bool fault_seed_set = false;
  runtime::CheckpointOptions checkpoint;
  std::string remote;  ///< "host:port" of an imobif_sweepd coordinator
};

inline BenchConfig parse_bench_args(int argc, char** argv,
                                    std::size_t default_instances) {
  const util::Args args(argc, argv);
  if (args.has("help")) {
    std::cout << "usage: " << args.program()
              << " [N] [--instances N] [--seed S] [--jobs N] [--json PATH]"
                 " [--loss P] [--fault-seed S]\n"
                 "       [--checkpoint-dir D] [--resume]"
                 " [--checkpoint-every-s T] [--remote HOST:PORT]\n"
                 "  N / --instances  flow instances per series (default "
              << default_instances
              << ")\n"
                 "  --seed           override the scenario base seed\n"
                 "  --jobs           worker threads (default 1)\n"
                 "  --json           write results as a JSON artifact\n"
                 "  --loss           injected channel loss probability in "
                 "[0, 1) (default 0,\n"
                 "                   enables notification retries when > 0)\n"
                 "  --fault-seed     seed for the fault injector (default: "
                 "scenario seed)\n"
                 "  --checkpoint-dir persist per-unit results and periodic\n"
                 "                   checkpoints so a killed sweep can resume\n"
                 "  --resume         reuse files found in --checkpoint-dir\n"
                 "  --checkpoint-every-s  checkpoint cadence in simulated\n"
                 "                   seconds (default 30)\n"
                 "  --remote         run sweeps on an imobif_sweepd farm at\n"
                 "                   HOST:PORT (bit-identical results)\n";
    std::exit(0);
  }
  BenchConfig config;
  config.instances = default_instances;
  if (!args.positional().empty()) {
    config.instances = std::stoul(args.positional().front());
  }
  config.instances = static_cast<std::size_t>(
      args.get_int("instances", static_cast<std::int64_t>(config.instances)));
  config.seed_set = args.has("seed");
  if (config.seed_set) {
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  }
  const std::int64_t jobs = args.get_int("jobs", 1);
  config.jobs = jobs < 1 ? 1 : static_cast<std::size_t>(jobs);
  config.json_path = args.get_string("json", "");
  config.loss = args.get_double("loss", 0.0);
  config.fault_seed_set = args.has("fault-seed");
  if (config.fault_seed_set) {
    config.fault_seed =
        static_cast<std::uint64_t>(args.get_int("fault-seed", 0));
  }
  config.checkpoint.dir = args.get_string("checkpoint-dir", "");
  config.checkpoint.resume = args.get_bool("resume", false);
  config.checkpoint.every_sim_s =
      args.get_double("checkpoint-every-s", config.checkpoint.every_sim_s);
  config.remote = args.get_string("remote", "");
  return config;
}

/// Applies the --seed override (benches keep their figure-specific
/// defaults otherwise).
inline void apply_seed(exp::ScenarioParams& params, const BenchConfig& config) {
  if (config.seed_set) params.seed = config.seed;
}

/// Retry cap used whenever a bench turns loss on: enough attempts that a
/// notification survives heavy loss (0.5^6 ~ 1.6% residual failure) while
/// the backoff keeps the extra traffic negligible.
inline constexpr std::uint32_t kBenchNotifyRetryCap = 6;

/// Applies the --loss / --fault-seed overrides. With --loss 0 (the
/// default) this leaves `params` untouched so every artifact stays
/// byte-identical to a build without the fault layer; with loss > 0 it
/// arms the injector and the notification retry machinery.
inline void apply_fault(exp::ScenarioParams& params,
                        const BenchConfig& config) {
  if (config.loss <= 0.0 && !config.fault_seed_set) return;
  params.fault.loss_rate = config.loss;
  params.fault.seed = config.fault_seed_set ? config.fault_seed : params.seed;
  params.notify_retry_cap = kBenchNotifyRetryCap;
}

/// Accumulates medium drop counters and notification-reliability totals
/// across runs, for the "counters" block of a JSON artifact.
struct FaultCounters {
  net::Medium::Counters medium;
  std::uint64_t notify_retries = 0;
  std::uint64_t notifications_applied = 0;

  void add(const exp::RunResult& run) {
    medium.broadcasts += run.medium.broadcasts;
    medium.unicasts += run.medium.unicasts;
    medium.delivered += run.medium.delivered;
    medium.dropped_out_of_range += run.medium.dropped_out_of_range;
    medium.dropped_dead += run.medium.dropped_dead;
    medium.dropped_unknown += run.medium.dropped_unknown;
    medium.dropped_injected += run.medium.dropped_injected;
    medium.dropped_faulted += run.medium.dropped_faulted;
    notify_retries += run.notify_retries;
    notifications_applied += run.notifications_applied;
  }

  void add(const std::vector<exp::ComparisonPoint>& points) {
    for (const auto& pt : points) {
      add(pt.baseline);
      add(pt.cost_unaware);
      add(pt.informed);
    }
  }

  void add(const FaultCounters& other) {
    medium.broadcasts += other.medium.broadcasts;
    medium.unicasts += other.medium.unicasts;
    medium.delivered += other.medium.delivered;
    medium.dropped_out_of_range += other.medium.dropped_out_of_range;
    medium.dropped_dead += other.medium.dropped_dead;
    medium.dropped_unknown += other.medium.dropped_unknown;
    medium.dropped_injected += other.medium.dropped_injected;
    medium.dropped_faulted += other.medium.dropped_faulted;
    notify_retries += other.notify_retries;
    notifications_applied += other.notifications_applied;
  }

  void export_to(runtime::SweepReport& report) const {
    report.set_counter("unicasts", medium.unicasts);
    report.set_counter("delivered", medium.delivered);
    report.set_counter("dropped_out_of_range", medium.dropped_out_of_range);
    report.set_counter("dropped_dead", medium.dropped_dead);
    report.set_counter("dropped_unknown", medium.dropped_unknown);
    report.set_counter("dropped_injected", medium.dropped_injected);
    report.set_counter("dropped_faulted", medium.dropped_faulted);
    report.set_counter("notify_retries", notify_retries);
    report.set_counter("notifications_applied", notifications_applied);
  }
};

/// Adds the drop/retry counters to the artifact. Counters are exported
/// unconditionally (a --loss 0 run simply reports zero drops): the
/// "counters" block is part of every report's layout, so downstream
/// merge logic — the sweep-service coordinator in particular — never
/// special-cases its absence.
inline void export_fault_counters(
    runtime::SweepReport& report, const BenchConfig& config,
    const std::vector<exp::ComparisonPoint>& points) {
  (void)config;
  FaultCounters totals;
  totals.add(points);
  totals.export_to(report);
}

/// run_comparison routed through the parallel sweep runtime; bit-identical
/// results for any --jobs value, and crash-resumable when --checkpoint-dir
/// is set. Each call gets a distinct checkpoint scope ("s0-", "s1-", ...)
/// from a per-process counter: bench binaries run panels/variants in a
/// fixed order, so the Nth sweep maps to the same files in the original
/// and the resuming process, while two sweeps never collide.
///
/// With --remote the sweep runs on an imobif_sweepd farm instead; the
/// instance-indexed RNG derivation makes the returned points — and thus
/// every artifact built from them — bit-identical to the in-process path.
inline std::vector<exp::ComparisonPoint> run_comparison(
    const exp::ScenarioParams& params, const BenchConfig& config,
    const exp::RunOptions& options = {}) {
  if (!config.remote.empty()) {
    const svc::Endpoint endpoint = svc::parse_endpoint(config.remote);
    svc::SubmitOptions submit;
    submit.host = endpoint.host;
    submit.port = endpoint.port;
    submit.params = params;
    submit.instances = config.instances;
    submit.run_options = options;
    return svc::submit_sweep(submit).points;
  }
  static int sweep_counter = 0;
  runtime::CheckpointOptions checkpoint = config.checkpoint;
  checkpoint.scope = "s" + std::to_string(sweep_counter++) + "-";
  return runtime::run_comparison_parallel(params, config.instances, options,
                                          config.jobs, checkpoint);
}

/// Monotonic milliseconds-since-construction stopwatch for wall_ms.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Writes the report when --json was given; stamps the common meta first.
/// --jobs is deliberately NOT recorded: aside from the wall_ms line, the
/// artifact must be byte-identical regardless of worker count.
inline void export_report(runtime::SweepReport& report,
                          const BenchConfig& config,
                          const Stopwatch& stopwatch) {
  if (config.json_path.empty()) return;
  report.set_meta("instances", static_cast<std::uint64_t>(config.instances));
  report.set_wall_ms(stopwatch.elapsed_ms());
  report.write_file(config.json_path);
  std::cout << "\nwrote " << config.json_path << " (" << config.jobs
            << " jobs, " << util::Table::num(stopwatch.elapsed_ms(), 5)
            << " ms)\n";
}

/// Paper-default scenario (DESIGN.md parameter reconstruction).
inline exp::ScenarioParams paper_defaults() {
  exp::ScenarioParams p;
  p.area_m = util::Meters{1000.0};
  p.node_count = 100;
  p.comm_range_m = util::Meters{180.0};
  p.radio.a = 1e-7;
  p.radio.b = 5e-10;
  p.radio.alpha = 2.0;
  p.mobility.k = 0.5;
  p.mobility.max_step_m = 1.0;
  p.initial_energy_j = util::Joules{2000.0};
  p.packet_bits = util::Bits{8192.0};        // 1 KB packets
  p.rate_bps = util::BitsPerSecond{8192.0};  // 1 KB/s = 8 Kbps
  p.seed = 20050610;       // ICDCS 2005
  return p;
}

inline constexpr double kKB = 1024.0 * 8.0;
inline constexpr double kMB = 1024.0 * kKB;

/// Amplifier coefficient for alpha = 3 runs (unit differs from alpha = 2;
/// calibrated per DESIGN.md).
inline constexpr double kAmplifierAlpha3 = 3e-12;

struct SeriesStats {
  util::Summary cost_unaware;
  util::Summary informed;
  std::size_t informed_enabled = 0;
};

inline void print_header(const std::string& title) {
  std::cout << "\n" << std::string(74, '=') << "\n"
            << title << "\n"
            << std::string(74, '=') << "\n";
}

/// Renders Fig-6-style per-instance ratio scatter: x = instance index,
/// y = ratio, with the ratio-1 reference line.
inline void print_ratio_scatter(const std::vector<double>& cost_unaware,
                                const std::vector<double>& informed,
                                const std::string& title) {
  util::Series cu, in;
  cu.name = "cost-unaware";
  cu.marker = 'o';
  in.name = "imobif";
  in.marker = '*';
  for (std::size_t i = 0; i < cost_unaware.size(); ++i) {
    cu.xs.push_back(static_cast<double>(i));
    cu.ys.push_back(cost_unaware[i]);
  }
  for (std::size_t i = 0; i < informed.size(); ++i) {
    in.xs.push_back(static_cast<double>(i));
    in.ys.push_back(informed[i]);
  }
  util::PlotOptions opts;
  opts.title = title;
  opts.x_label = "flow instance";
  opts.y_label = "ratio vs no-mobility";
  opts.h_line = 1.0;
  std::cout << util::render_scatter({cu, in}, opts);
}

}  // namespace imobif::bench
