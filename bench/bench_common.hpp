// Shared helpers for the figure-reproduction binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "exp/experiments.hpp"
#include "util/ascii_plot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace imobif::bench {

/// Paper-default scenario (DESIGN.md parameter reconstruction).
inline exp::ScenarioParams paper_defaults() {
  exp::ScenarioParams p;
  p.area_m = 1000.0;
  p.node_count = 100;
  p.comm_range_m = 180.0;
  p.radio.a = 1e-7;
  p.radio.b = 5e-10;
  p.radio.alpha = 2.0;
  p.mobility.k = 0.5;
  p.mobility.max_step_m = 1.0;
  p.initial_energy_j = 2000.0;
  p.packet_bits = 8192.0;  // 1 KB packets
  p.rate_bps = 8192.0;     // 1 KB/s = 8 Kbps
  p.seed = 20050610;       // ICDCS 2005
  return p;
}

inline constexpr double kKB = 1024.0 * 8.0;
inline constexpr double kMB = 1024.0 * kKB;

/// Amplifier coefficient for alpha = 3 runs (unit differs from alpha = 2;
/// calibrated per DESIGN.md).
inline constexpr double kAmplifierAlpha3 = 3e-12;

struct SeriesStats {
  util::Summary cost_unaware;
  util::Summary informed;
  std::size_t informed_enabled = 0;
};

inline void print_header(const std::string& title) {
  std::cout << "\n" << std::string(74, '=') << "\n"
            << title << "\n"
            << std::string(74, '=') << "\n";
}

/// Renders Fig-6-style per-instance ratio scatter: x = instance index,
/// y = ratio, with the ratio-1 reference line.
inline void print_ratio_scatter(const std::vector<double>& cost_unaware,
                                const std::vector<double>& informed,
                                const std::string& title) {
  util::Series cu, in;
  cu.name = "cost-unaware";
  cu.marker = 'o';
  in.name = "imobif";
  in.marker = '*';
  for (std::size_t i = 0; i < cost_unaware.size(); ++i) {
    cu.xs.push_back(static_cast<double>(i));
    cu.ys.push_back(cost_unaware[i]);
  }
  for (std::size_t i = 0; i < informed.size(); ++i) {
    in.xs.push_back(static_cast<double>(i));
    in.ys.push_back(informed[i]);
  }
  util::PlotOptions opts;
  opts.title = title;
  opts.x_label = "flow instance";
  opts.y_label = "ratio vs no-mobility";
  opts.h_line = 1.0;
  std::cout << util::render_scatter({cu, in}, opts);
}

}  // namespace imobif::bench
