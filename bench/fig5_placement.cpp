// Figure 5: the effect of controlled mobility on a wireless network.
//
// (a) original placement of a flow's nodes, (b) steady state under the
// min-total-energy strategy (evenly spaced on the source-destination
// line, independent of residual energy), (c) steady state under the
// max-lifetime strategy (on the line, hop length proportional to the
// upstream node's residual energy). Node "size" in the paper maps here to
// the printed residual energy.
#include "bench_common.hpp"

#include "geom/segment.hpp"

namespace {

using namespace imobif;

exp::ScenarioParams scenario() {
  exp::ScenarioParams p = bench::paper_defaults();
  p.mean_flow_bits = util::Bits{4.0 * bench::kMB};
  p.min_hops = 5;                       // a visibly multi-hop flow
  p.random_energy = true;               // energy-dependent placement visible
  p.energy_lo_j = util::Joules{400.0};
  p.energy_hi_j = util::Joules{2000.0};
  p.seed = 9;
  return p;
}

void print_snapshot(const char* label, const exp::PlacementSnapshot& snap,
                    bool final_positions) {
  util::Table table({"node", "x (m)", "y (m)", "energy (J)", "hop to next (m)"});
  const auto& pos =
      final_positions ? snap.final_positions : snap.initial_positions;
  const auto& energy =
      final_positions ? snap.final_energies : snap.initial_energies;
  for (std::size_t i = 0; i < snap.path.size(); ++i) {
    const double hop =
        i + 1 < pos.size() ? geom::distance(pos[i], pos[i + 1]) : 0.0;
    table.add_row({std::to_string(snap.path[i]),
                   util::Table::num(pos[i].x, 5),
                   util::Table::num(pos[i].y, 5),
                   util::Table::num(energy[i].value(), 4),
                   i + 1 < pos.size() ? util::Table::num(hop, 4) : "-"});
  }
  std::cout << "\n--- " << label << " ---\n";
  table.print(std::cout);

  const geom::Segment line{pos.front(), pos.back()};
  double worst = 0.0;
  for (std::size_t i = 1; i + 1 < pos.size(); ++i) {
    worst = std::max(worst, line.distance_to(pos[i]));
  }
  std::cout << "max relay distance from source-dest line: "
            << util::Table::num(worst, 4) << " m   path tortuosity: "
            << util::Table::num(geom::tortuosity(pos.data(), pos.size()), 6)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 1);
  const bench::Stopwatch stopwatch;
  bench::print_header(
      "Figure 5 - node placement under controlled mobility\n"
      "(a) original, (b) min-total-energy steady state, (c) max-lifetime "
      "steady state");

  exp::RunOptions opts;
  opts.horizon_factor = 6.0;

  // (a)+(b): min-total-energy strategy, unconditional movement so the
  // steady state is reached regardless of profitability.
  exp::ScenarioParams p = scenario();
  bench::apply_seed(p, config);
  bench::apply_fault(p, config);
  p.strategy = net::StrategyId::kMinTotalEnergy;
  const exp::PlacementSnapshot min_energy =
      exp::run_placement(p, core::MobilityMode::kCostUnaware, opts);

  print_snapshot("(a) original placement", min_energy, false);
  print_snapshot("(b) min-total-energy steady state", min_energy, true);

  // (c): max-lifetime strategy on the identical instance.
  p.strategy = net::StrategyId::kMaxLifetime;
  const exp::PlacementSnapshot lifetime =
      exp::run_placement(p, core::MobilityMode::kCostUnaware, opts);
  print_snapshot("(c) max-lifetime steady state", lifetime, true);

  std::cout
      << "\nPaper check: in (b) relays are evenly spaced on the line\n"
         "independent of energy; in (c) they are on the same line but the\n"
         "hop following a node grows with that node's residual energy\n"
         "(Theorem 1), so (b) and (c) differ even though both look\n"
         "straight.\n";

  runtime::SweepReport report("fig5_placement");
  const auto to_doubles = [](const std::vector<util::Joules>& v) {
    std::vector<double> out;
    out.reserve(v.size());
    for (const util::Joules e : v) out.push_back(e.value());
    return out;
  };
  report.add_series("min_energy_final_energies",
                    to_doubles(min_energy.final_energies));
  report.add_series("max_lifetime_final_energies",
                    to_doubles(lifetime.final_energies));
  bench::FaultCounters totals;
  totals.add(min_energy.run);
  totals.add(lifetime.run);
  totals.export_to(report);
  bench::export_report(report, config, stopwatch);
  return 0;
}
