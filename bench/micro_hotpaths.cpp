// Microbenchmarks (google-benchmark) for the simulator's hot paths: the
// event queue, greedy forwarding, the strategy math, and a full small
// flow replay. These bound the cost of scaling experiments up.
//
// `--json PATH` (stripped before google-benchmark sees the argv) exports
// the per-benchmark timings as a BENCH_micro.json SweepReport artifact so
// CI can archive them next to the figure artifacts.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/imobif.hpp"
#include "exp/experiments.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace imobif;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(sim::Time::from_ticks(
                     static_cast<std::int64_t>(rng.uniform_int(0, 1 << 20))),
                 [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().when.ticks());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(256)->Arg(4096);

void BM_RadioModelPower(benchmark::State& state) {
  energy::RadioParams params;
  params.alpha = 2.0;
  const energy::RadioEnergyModel model(params);
  double d = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.power_per_bit(util::Meters{d}));
    d = d < 300.0 ? d + 1.0 : 1.0;
  }
}
BENCHMARK(BM_RadioModelPower);

void BM_MaxLifetimeTarget(benchmark::State& state) {
  core::MaxLifetimeStrategy strategy(2.0);
  core::RelayContext ctx;
  ctx.prev_position = {0.0, 0.0};
  ctx.next_position = {200.0, 40.0};
  ctx.prev_energy = util::Joules{35.0};
  ctx.self_energy = util::Joules{12.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.next_position(ctx));
  }
}
BENCHMARK(BM_MaxLifetimeTarget);

void BM_EvaluateHop(benchmark::State& state) {
  energy::RadioParams params;
  const energy::RadioEnergyModel radio(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_hop(
        radio, util::Joules{50.0}, util::Joules{3.0}, {0, 0}, {10, 0},
        {150, 0}, {140, 0}, util::Bits{1e6}, true));
  }
}
BENCHMARK(BM_EvaluateHop);

void BM_GridIndexQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(9);
  net::GridIndex index(180.0);
  std::vector<geom::Vec2> points;
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Vec2 p{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)};
    index.insert(static_cast<net::GridIndex::Id>(i), p);
    points.push_back(p);
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    std::size_t hits = 0;
    index.for_each_in_range(points[cursor], 180.0,
                            [&hits](net::GridIndex::Id, geom::Vec2) {
                              ++hits;
                            });
    benchmark::DoNotOptimize(hits);
    cursor = (cursor + 1) % n;
  }
}
BENCHMARK(BM_GridIndexQuery)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ExactLifetimeSplit(benchmark::State& state) {
  energy::RadioParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::exact_lifetime_split(params, util::Joules{35.0},
                                   util::Joules{12.0}, util::Meters{250.0}));
  }
}
BENCHMARK(BM_ExactLifetimeSplit);

void BM_SampleInstance(benchmark::State& state) {
  exp::ScenarioParams p;
  p.seed = 3;
  util::Rng rng(p.seed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp::sample_instance(p, rng));
  }
}
BENCHMARK(BM_SampleInstance);

void BM_FullFlowReplay(benchmark::State& state) {
  exp::ScenarioParams p;
  p.seed = 3;
  p.mean_flow_bits = util::Bits{100.0 * 1024.0 * 8.0};
  util::Rng rng(p.seed);
  const exp::FlowInstance inst = exp::sample_instance(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exp::run_instance(inst, p, core::MobilityMode::kInformed));
  }
}
BENCHMARK(BM_FullFlowReplay);

/// ConsoleReporter that also keeps every iteration run's adjusted timings
/// (nanoseconds, the suite's default unit) for the JSON artifact.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double real_ns = 0.0;
    double cpu_ns = 0.0;
  };

  const std::vector<Entry>& entries() const { return entries_; }

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      entries_.push_back({run.benchmark_name(), run.GetAdjustedRealTime(),
                          run.GetAdjustedCPUTime()});
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip --json before google-benchmark validates the remaining flags.
  std::string json_path;
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      continue;
    }
    filtered.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(filtered.size());

  const imobif::bench::Stopwatch stopwatch;
  benchmark::Initialize(&filtered_argc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, filtered.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty()) {
    imobif::runtime::SweepReport report("micro_hotpaths");
    report.set_meta("benchmarks",
                    static_cast<std::uint64_t>(reporter.entries().size()));
    for (const CollectingReporter::Entry& entry : reporter.entries()) {
      report.add_series(entry.name + ":real_ns", {entry.real_ns});
      report.add_series(entry.name + ":cpu_ns", {entry.cpu_ns});
    }
    report.set_wall_ms(stopwatch.elapsed_ms());
    report.write_file(json_path);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
