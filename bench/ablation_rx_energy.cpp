// Ablation A8: receiver-side energy accounting.
//
// The paper's model charges the transmitter only (E_T at the sender); the
// standard first-order radio model also charges receive electronics. A
// nonzero rx cost changes the lifetime calculus: shortening your own
// outgoing hop no longer helps if most of your drain is receiving, so the
// max-lifetime strategy's advantage should shrink as rx grows.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 25);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ablation_rx_energy");

  bench::print_header(
      "Ablation A8 - receiver energy (rx J/bit) vs lifetime gains");

  util::Table table({"rx J/bit", "cost-unaware avg", "informed avg",
                     "informed max", "baseline lifetime s (avg)"});
  for (const double rx : {0.0, 5e-8, 2e-7, 1e-6}) {
    exp::ScenarioParams p = bench::paper_defaults();
    p.strategy = net::StrategyId::kMaxLifetime;
    p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
    p.random_energy = true;
    p.energy_lo_j = util::Joules{5.0};
    p.energy_hi_j = util::Joules{100.0};
    p.radio.rx_per_bit = rx;
    p.seed = 20050611;

    bench::apply_seed(p, config);

    exp::RunOptions opts;
    opts.stop_on_first_death = true;
    const auto points = bench::run_comparison(p, config, opts);

    util::Summary cu, in, base;
    std::vector<double> series_values;
    for (const auto& pt : points) series_values.push_back(pt.lifetime_ratio_informed());
    report.add_series(util::Table::num(rx) + std::string(" lifetime_ratio_informed"), series_values);
    for (const auto& pt : points) {
      cu.add(pt.lifetime_ratio_cost_unaware());
      in.add(pt.lifetime_ratio_informed());
      base.add(pt.baseline.lifetime_s.value());
    }
    table.add_row({util::Table::num(rx), util::Table::num(cu.mean()),
                   util::Table::num(in.mean()), util::Table::num(in.max()),
                   util::Table::num(base.mean(), 5)});
  }
  table.print(std::cout);
  std::cout << "\nReading: rx = 0 is the paper's model. Growing rx "
               "shortens every lifetime\n(receiving is unavoidable) and "
               "compresses the informed strategy's edge -\nplacement can "
               "only optimize the transmit share of the drain. The "
               "informed\nframework stays safe throughout (never below the "
               "cost-unaware curve).\n";
  bench::export_report(report, config, stopwatch);
  return 0;
}
