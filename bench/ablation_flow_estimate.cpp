// Ablation A2 (paper Section 5 future work): impact of inaccurate flow
// length estimates on the energy performance of the framework.
//
// The source stamps `estimate_factor x true residual length` into data
// headers; the cost/benefit decision therefore over- or under-estimates
// the mobility benefit. Under-estimation (factor < 1) makes iMobif
// conservative (misses profitable moves); over-estimation (factor > 1)
// makes it enable mobility that cannot pay for itself within the actual
// flow.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 25);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ablation_flow_estimate");

  bench::print_header(
      "Ablation A2 - flow-length estimate error vs iMobif energy ratio");

  util::Table table({"estimate factor", "imobif avg ratio",
                     "imobif worst ratio", "enabled flows",
                     "avg notifications"});
  for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    exp::ScenarioParams p = bench::paper_defaults();
    p.mobility.k = 0.1;  // a regime where mobility often pays
    p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
    p.length_estimate_factor = factor;

    bench::apply_seed(p, config);

    const auto points = bench::run_comparison(p, config);
    util::Summary ratio, notif;
    std::size_t enabled = 0;
    std::vector<double> series_values;
    for (const auto& pt : points) series_values.push_back(pt.energy_ratio_informed());
    report.add_series(util::Table::num(factor) + std::string(" energy_ratio_informed"), series_values);
    for (const auto& pt : points) {
      ratio.add(pt.energy_ratio_informed());
      notif.add(static_cast<double>(pt.informed.notifications));
      if (pt.informed.moved_distance_m.value() > 0.0) ++enabled;
    }
    table.add_row({util::Table::num(factor), util::Table::num(ratio.mean()),
                   util::Table::num(ratio.max()),
                   std::to_string(enabled) + "/" +
                       std::to_string(points.size()),
                   util::Table::num(notif.mean())});
  }
  table.print(std::cout);
  std::cout << "\nReading (the answer to the paper's open question): "
               "under-estimates enable\nlate and then *disable "
               "prematurely* - the stamped residual shrinks faster\nthan "
               "the true one - stranding partial relocation cost (mild "
               "losses, worst\n~1.2-1.3x). Over-estimates enable eagerly "
               "and oscillate near the flow end\n(high notification "
               "counts, occasional ~1.8x instance). Accurate estimates\n"
               "dominate both; errors degrade gracefully rather than "
               "catastrophically.\n";
  bench::export_report(report, config, stopwatch);
  return 0;
}
