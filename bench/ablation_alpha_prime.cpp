// Ablation A1: sensitivity of the max-lifetime strategy to the regression
// exponent alpha' of the Theorem-1 approximation
// (d_{i-1}/d_i)^{alpha'} = e_{i-1}/e_i.
//
// The paper obtains alpha' "through regression on historical data" and
// does not report its value; this sweep shows how the lifetime ratio
// responds, justifying the library default alpha' = alpha.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 25);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ablation_alpha_prime");

  bench::print_header(
      "Ablation A1 - max-lifetime alpha' sweep (lifetime ratio vs "
      "baseline)");

  util::Table table({"alpha'", "informed avg", "informed max",
                     ">1 instances", "avg notifications"});
  for (const double alpha_prime : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    exp::ScenarioParams p = bench::paper_defaults();
    p.strategy = net::StrategyId::kMaxLifetime;
    p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
    p.random_energy = true;
    p.energy_lo_j = util::Joules{5.0};
    p.energy_hi_j = util::Joules{100.0};
    p.alpha_prime = alpha_prime;
    p.seed = 20050611;

    bench::apply_seed(p, config);

    exp::RunOptions opts;
    opts.stop_on_first_death = true;
    const auto points = bench::run_comparison(p, config, opts);

    util::Summary ratio, notif;
    std::size_t improved = 0;
    std::vector<double> series_values;
    for (const auto& pt : points) series_values.push_back(pt.lifetime_ratio_informed());
    report.add_series(util::Table::num(alpha_prime) + std::string(" lifetime_ratio_informed"), series_values);
    for (const auto& pt : points) {
      ratio.add(pt.lifetime_ratio_informed());
      notif.add(static_cast<double>(pt.informed.notifications));
      if (pt.lifetime_ratio_informed() > 1.001) ++improved;
    }
    table.add_row({util::Table::num(alpha_prime),
                   util::Table::num(ratio.mean()),
                   util::Table::num(ratio.max()),
                   std::to_string(improved) + "/" +
                       std::to_string(points.size()),
                   util::Table::num(notif.mean())});
  }
  table.print(std::cout);
  std::cout << "\nReading: alpha' = alpha (= 2 here) solves the Theorem-1 "
               "balance for the\namplifier-dominated regime; smaller "
               "alpha' over-shifts relays toward rich\nneighbors, larger "
               "alpha' flattens toward the midpoint rule.\n";
  bench::export_report(report, config, stopwatch);
  return 0;
}
