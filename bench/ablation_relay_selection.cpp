// Ablation A3 (paper Section 5 future work): optimizing relay *selection*
// in addition to relay *positions*.
//
// LineBiasedGreedyRouting penalizes next-hop candidates that sit far from
// the forwarding line, so the pinned flow path starts closer to the
// straight source-destination configuration that both strategies converge
// to - less relocation to pay for, at the cost of occasionally longer
// initial hops.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 25);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ablation_relay_selection");

  bench::print_header(
      "Ablation A3 - line-biased relay selection (weight sweep)");

  util::Table table({"line weight", "baseline avg J", "imobif avg ratio",
                     "imobif moved m (avg)", "enabled flows"});
  for (const double weight : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    exp::ScenarioParams p = bench::paper_defaults();
    p.mobility.k = 0.1;
    p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
    p.line_bias_weight = weight;

    bench::apply_seed(p, config);

    const auto points = bench::run_comparison(p, config);
    util::Summary baseline_j, ratio, moved;
    std::size_t enabled = 0;
    std::vector<double> series_values;
    for (const auto& pt : points) series_values.push_back(pt.energy_ratio_informed());
    report.add_series(util::Table::num(weight) + std::string(" energy_ratio_informed"), series_values);
    for (const auto& pt : points) {
      baseline_j.add(pt.baseline.total_energy_j.value());
      ratio.add(pt.energy_ratio_informed());
      moved.add(pt.informed.moved_distance_m.value());
      if (pt.informed.moved_distance_m.value() > 0.0) ++enabled;
    }
    table.add_row({util::Table::num(weight),
                   util::Table::num(baseline_j.mean()),
                   util::Table::num(ratio.mean()),
                   util::Table::num(moved.mean()),
                   std::to_string(enabled) + "/" +
                       std::to_string(points.size())});
  }
  table.print(std::cout);
  std::cout << "\nReading: a moderate bias shrinks relocation distance "
               "(moved m) while\nkeeping the static baseline competitive; "
               "selection and positioning\ncompose, as the paper "
               "conjectured in its future work.\n";
  bench::export_report(report, config, stopwatch);
  return 0;
}
