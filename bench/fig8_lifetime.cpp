// Figure 8: CDF of the system-lifetime ratio (vs the no-mobility
// baseline) for cost-unaware mobility and iMobif with the max-lifetime
// strategy.
//
// Setup per the paper: long flows (mean 1 MB), k = 0.5, alpha = 2, node
// residual energy drawn uniformly from a deliberately low range so nodes
// die mid-flow and lifetime differences are visible.
//
// Paper shape: cost-unaware lifetime is usually *shorter* than baseline
// (average ~0.55 - bottleneck nodes waste energy moving); iMobif is at or
// above baseline for most instances with improvements up to ~2-3x on some.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 60);
  const bench::Stopwatch stopwatch;

  exp::ScenarioParams p = bench::paper_defaults();
  p.strategy = net::StrategyId::kMaxLifetime;
  p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
  p.mobility.k = 0.5;
  p.random_energy = true;  // "intentionally low residual energy"
  p.energy_lo_j = util::Joules{5.0};
  p.energy_hi_j = util::Joules{100.0};
  p.seed = 20050611;
  bench::apply_seed(p, config);
  bench::apply_fault(p, config);

  exp::RunOptions opts;
  opts.stop_on_first_death = true;

  const auto points = bench::run_comparison(p, config, opts);

  bench::print_header(
      "Figure 8 - system lifetime ratio CDF (max-lifetime strategy)");
  util::Summary cu, in;
  util::Series cu_s, in_s;
  cu_s.name = "cost-unaware";
  cu_s.marker = 'o';
  in_s.name = "informed (imobif)";
  in_s.marker = '*';
  util::Table table({"flow", "length KB", "baseline life s",
                     "ratio cost-unaware", "ratio imobif", "death?"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    cu.add(pt.lifetime_ratio_cost_unaware());
    in.add(pt.lifetime_ratio_informed());
    cu_s.ys.push_back(pt.lifetime_ratio_cost_unaware());
    in_s.ys.push_back(pt.lifetime_ratio_informed());
    table.add_row({std::to_string(i),
                   util::Table::num(pt.flow_bits.value() / bench::kKB, 5),
                   util::Table::num(pt.baseline.lifetime_s.value(), 5),
                   util::Table::num(pt.lifetime_ratio_cost_unaware()),
                   util::Table::num(pt.lifetime_ratio_informed()),
                   pt.baseline.any_death ? "yes" : "censored"});
  }
  table.print(std::cout);

  std::cout << "\nCost-Unaware: Average " << util::Table::num(cu.mean())
            << "   Informed: Average " << util::Table::num(in.mean())
            << "   Informed max " << util::Table::num(in.max()) << "\n"
            << "KS distance between the two ratio distributions: "
            << util::Table::num(util::ks_statistic(cu_s.ys, in_s.ys))
            << "\n";

  util::PlotOptions po;
  po.title = "Figure 8 - CDF of system lifetime ratio";
  po.x_label = "system lifetime ratio";
  po.h_line = std::numeric_limits<double>::quiet_NaN();
  std::cout << util::render_cdf({cu_s, in_s}, po);

  std::cout << "\nPaper check: the cost-unaware CDF sits mostly left of "
               "ratio 1 (shorter\nlifetime than static), while the "
               "informed CDF hugs ratio 1 from above with a\ntail of "
               "instances improved by 1.5-3x.\n";

  runtime::SweepReport report("fig8_lifetime");
  report.add_series("lifetime_ratio_cost_unaware", cu_s.ys);
  report.add_series("lifetime_ratio_informed", in_s.ys);
  bench::export_fault_counters(report, config, points);
  bench::export_report(report, config, stopwatch);
  return 0;
}
