// Extension E2: relay recruitment — the paper's future-work item of
// optimizing the *selection* of intermediate flow nodes, not only their
// positions. Sweeps the recruitment margin over the long-flow scenario
// and reports energy ratios, recruit counts, and completion.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 25);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ext_recruitment");

  bench::print_header(
      "Extension E2 - relay recruitment (selection + positioning)");

  util::Table table({"recruit margin", "imobif avg ratio",
                     "recruits/flow (avg)", "moved m (avg)",
                     "all complete"});
  for (const double margin : {0.0, 1.0, 1.5, 3.0}) {
    exp::ScenarioParams p = bench::paper_defaults();
    p.mobility.k = 0.1;
    p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
    p.recruit_margin = margin;

    bench::apply_seed(p, config);

    const auto points = bench::run_comparison(p, config);
    util::Summary ratio, recruits, moved;
    bool complete = true;
    std::vector<double> series_values;
    for (const auto& pt : points) series_values.push_back(pt.energy_ratio_informed());
    report.add_series(util::Table::num(margin) + std::string(" energy_ratio_informed"), series_values);
    for (const auto& pt : points) {
      ratio.add(pt.energy_ratio_informed());
      recruits.add(static_cast<double>(pt.informed.recruits));
      moved.add(pt.informed.moved_distance_m.value());
      complete = complete && pt.informed.completed;
    }
    table.add_row({margin == 0.0 ? "off" : util::Table::num(margin),
                   util::Table::num(ratio.mean()),
                   util::Table::num(recruits.mean()),
                   util::Table::num(moved.mean()),
                   complete ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nReading: recruitment composes with informed mobility - "
               "extra relays split\nthe longest hops (savings grow with "
               "the residual flow), and the margin\nknob trades recruit "
               "count against the risk of splitting hops that barely\n"
               "pay. This prototypes the paper's 'optimize both the "
               "selection and\npositions of the intermediate flow nodes' "
               "future work.\n";
  bench::export_report(report, config, stopwatch);
  return 0;
}
