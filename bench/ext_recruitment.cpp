// Extension E2: relay recruitment — the paper's future-work item of
// optimizing the *selection* of intermediate flow nodes, not only their
// positions. Sweeps the recruitment margin over the long-flow scenario
// and reports energy ratios, recruit counts, and completion.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const std::size_t flows =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 25;

  bench::print_header(
      "Extension E2 - relay recruitment (selection + positioning)");

  util::Table table({"recruit margin", "imobif avg ratio",
                     "recruits/flow (avg)", "moved m (avg)",
                     "all complete"});
  for (const double margin : {0.0, 1.0, 1.5, 3.0}) {
    exp::ScenarioParams p = bench::paper_defaults();
    p.mobility.k = 0.1;
    p.mean_flow_bits = 1.0 * bench::kMB;
    p.recruit_margin = margin;

    const auto points = exp::run_comparison(p, flows);
    util::Summary ratio, recruits, moved;
    bool complete = true;
    for (const auto& pt : points) {
      ratio.add(pt.energy_ratio_informed());
      recruits.add(static_cast<double>(pt.informed.recruits));
      moved.add(pt.informed.moved_distance_m);
      complete = complete && pt.informed.completed;
    }
    table.add_row({margin == 0.0 ? "off" : util::Table::num(margin),
                   util::Table::num(ratio.mean()),
                   util::Table::num(recruits.mean()),
                   util::Table::num(moved.mean()),
                   complete ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nReading: recruitment composes with informed mobility - "
               "extra relays split\nthe longest hops (savings grow with "
               "the residual flow), and the margin\nknob trades recruit "
               "count against the risk of splitting hops that barely\n"
               "pay. This prototypes the paper's 'optimize both the "
               "selection and\npositions of the intermediate flow nodes' "
               "future work.\n";
  return 0;
}
