// Extension bench: multiple flows sharing relays (paper Section 2 notes
// iMobif "supports multiple one-to-one, one-to-many, and many-to-one
// flows" with the mechanism deferred to the TR). Two flows cross at a
// shared relay whose per-flow targets disagree; the multi-flow blending
// option weights the targets by residual flow bits instead of chasing
// whichever flow's packet arrived last.
#include "bench_common.hpp"

#include "core/imobif.hpp"

namespace {

using namespace imobif;

struct Outcome {
  double total_j = 0.0;
  double moved_m = 0.0;
  bool all_complete = false;
};

Outcome run(core::MobilityMode mode, bool blending, double long_bits,
            double short_bits) {
  net::NetworkConfig config;
  config.node.charge_hello_energy = false;
  config.radio.b = 5e-10;
  net::Network network(config);
  // An X topology: flows 0->4 and 5->6 share the bent center relay 2,
  // whose two per-flow midpoint targets disagree.
  const util::Joules battery{4000.0};
  network.add_node({0, 80}, battery);      // 0: source A
  network.add_node({120, 70}, battery);    // 1: relay A (off-line)
  network.add_node({250, 30}, battery);    // 2: shared center relay
  network.add_node({390, -60}, battery);   // 3: relay A' (off-line)
  network.add_node({560, -80}, battery);   // 4: dest A
  network.add_node({280, 170}, battery);   // 5: source B (via center)
  network.add_node({250, -140}, battery);  // 6: dest B

  network.set_routing(std::make_unique<net::GreedyRouting>(network.medium()));
  energy::MobilityParams mp;
  mp.k = 0.1;
  const energy::MobilityEnergyModel mobility(mp);
  auto policy = core::make_default_policy(network.radio(), mobility, mode);
  policy->set_multi_flow_blending(blending);
  network.set_policy(policy.get());
  network.warmup(util::Seconds{25.0});

  net::FlowSpec a;
  a.id = 1;
  a.source = 0;
  a.destination = 4;
  a.length_bits = util::Bits{long_bits};
  a.strategy = net::StrategyId::kMinTotalEnergy;
  a.initially_enabled = (mode == core::MobilityMode::kCostUnaware);
  net::FlowSpec b = a;
  b.id = 2;
  b.source = 5;
  b.destination = 6;
  b.length_bits = util::Bits{short_bits};
  network.start_flow(a);
  network.start_flow(b);
  network.run_flows(
      util::Seconds{long_bits / a.rate_bps.value() * 4.0 + 300.0});

  Outcome out;
  out.total_j = network.total_consumed_energy().value();
  out.moved_m = policy->total_distance_moved().value();
  out.all_complete = network.all_flows_complete();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 1);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ext_multiflow");
  bench::print_header(
      "Extension - crossing flows at a shared relay: target blending");

  const double long_bits = 4.0 * bench::kMB;
  const double short_bits = 1.0 * bench::kMB;

  util::Table table({"approach", "blending", "total J", "moved m", "done"});
  const auto add = [&](const char* name, core::MobilityMode mode,
                       bool blending) {
    const Outcome o = run(mode, blending, long_bits, short_bits);
    table.add_row({name, blending ? "on" : "off",
                   util::Table::num(o.total_j, 5),
                   util::Table::num(o.moved_m, 4),
                   o.all_complete ? "yes" : "NO"});
    report.add_series(std::string(name) + (blending ? " blend" : " direct"),
                      {o.total_j, o.moved_m});
  };
  add("no-mobility", core::MobilityMode::kNoMobility, false);
  add("cost-unaware", core::MobilityMode::kCostUnaware, false);
  add("cost-unaware", core::MobilityMode::kCostUnaware, true);
  add("imobif", core::MobilityMode::kInformed, false);
  add("imobif", core::MobilityMode::kInformed, true);
  table.print(std::cout);

  std::cout << "\nReading: without blending the shared relay oscillates "
               "between the two\nflows' disagreeing targets (more meters "
               "moved for the same benefit);\nblending weights the "
               "compromise position by residual traffic, cutting\nwasted "
               "movement. This realizes the multi-flow support the paper "
               "defers\nto its technical report.\n";
  bench::export_report(report, config, stopwatch);
  return 0;
}
