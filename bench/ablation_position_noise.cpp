// Ablation A9: localization error vs the framework's decisions.
//
// Assumption 2 lets nodes know their positions "using GPS or other
// positioning devices/algorithms". The src/loc module shows range-based
// localization leaves meter-scale residual error; this sweep injects that
// error into every advertised position (HELLOs and packet stamps) so
// routing, strategy targets, and cost/benefit estimates all see it, and
// measures what it does to iMobif's energy ratio.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const bench::BenchConfig config = bench::parse_bench_args(argc, argv, 25);
  const bench::Stopwatch stopwatch;
  runtime::SweepReport report("ablation_position_noise");

  bench::print_header(
      "Ablation A9 - localization error in advertised positions");

  util::Table table({"error radius m", "cost-unaware avg", "imobif avg",
                     "imobif worst", "enabled flows"});
  for (const double err : {0.0, 2.0, 5.0, 10.0, 25.0}) {
    exp::ScenarioParams p = bench::paper_defaults();
    p.mobility.k = 0.1;
    p.mean_flow_bits = util::Bits{1.0 * bench::kMB};
    p.position_error_m = util::Meters{err};

    bench::apply_seed(p, config);

    const auto points = bench::run_comparison(p, config);
    util::Summary cu, in;
    double worst = 0.0;
    std::size_t enabled = 0;
    std::vector<double> series_values;
    for (const auto& pt : points) series_values.push_back(pt.energy_ratio_informed());
    report.add_series(util::Table::num(err) + std::string(" energy_ratio_informed"), series_values);
    for (const auto& pt : points) {
      cu.add(pt.energy_ratio_cost_unaware());
      in.add(pt.energy_ratio_informed());
      worst = std::max(worst, pt.energy_ratio_informed());
      if (pt.informed.moved_distance_m.value() > 0.0) ++enabled;
    }
    table.add_row({util::Table::num(err), util::Table::num(cu.mean()),
                   util::Table::num(in.mean()), util::Table::num(worst),
                   std::to_string(enabled) + "/" +
                       std::to_string(points.size())});
  }
  table.print(std::cout);
  std::cout << "\nReading: meter-scale localization error (what src/loc "
               "delivers with\nrealistic ranging noise) is harmless - "
               "targets and cost estimates shift\nby less than a hop "
               "percent. Tens of meters start to blur the benefit\n"
               "estimate and enabling becomes conservative; the safety "
               "property (never\nmaterially above baseline) holds "
               "throughout.\n";
  bench::export_report(report, config, stopwatch);
  return 0;
}
