// imobif_sim: the general-purpose experiment driver.
//
// Runs N flow instances of a configurable scenario under all three
// approaches and prints per-instance energy/lifetime ratios with
// bootstrap confidence intervals, optionally writing a CSV. Scenario
// parameters come from --config FILE (key = value, see
// exp/scenario_io.hpp) overridden by individual --key flags.
//
//   $ ./imobif_sim --flows 50 --k 0.1 --mean_flow_kb 1024
//   $ ./imobif_sim --config scenario.conf --lifetime --csv out.csv
//   $ ./imobif_sim --print-config          # dump the effective scenario
#include <iostream>

#include "exp/experiments.hpp"
#include "exp/scenario_io.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace imobif;

util::Config config_from_args(const util::Args& args) {
  util::Config config;
  for (const std::string& key : args.keys()) {
    // Flags consumed directly by the driver, not the scenario.
    if (key == "config" || key == "flows" || key == "csv" ||
        key == "lifetime" || key == "print-config" || key == "help") {
      continue;
    }
    config.set(key, args.get_string(key));
  }
  return config;
}

void print_usage() {
  std::cout <<
      "imobif_sim - iMobif experiment driver\n\n"
      "  --config FILE        load scenario from a key = value file\n"
      "  --flows N            flow instances to run (default 20)\n"
      "  --lifetime           lifetime experiment (stop at first death)\n"
      "  --csv FILE           also write per-instance rows as CSV\n"
      "  --print-config       dump the effective scenario and exit\n"
      "  --help               this text\n\n"
      "Any scenario key (see exp/scenario_io.hpp) is accepted as a flag,\n"
      "e.g. --k 0.1 --radio_alpha 3 --strategy max-lifetime --seed 7.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.get_bool("help")) {
    print_usage();
    return 0;
  }

  exp::ScenarioParams params;
  params.mean_flow_bits = util::Bits{1024.0 * 1024.0 * 8.0};
  try {
    if (args.has("config")) {
      exp::apply_config(util::Config::from_file(args.get_string("config")),
                        params);
    }
    exp::apply_config(config_from_args(args), params);
    params.validate();
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }

  if (args.get_bool("print-config")) {
    std::cout << exp::to_config_string(params);
    return 0;
  }

  const auto flows = static_cast<std::size_t>(args.get_int("flows", 20));
  const bool lifetime = args.get_bool("lifetime");
  exp::RunOptions options;
  options.stop_on_first_death = lifetime;

  std::cout << "Running " << flows << " flow instances ("
            << (lifetime ? "lifetime" : "energy") << " experiment, strategy "
            << net::to_string(params.strategy) << ", k = "
            << params.mobility.k << ", alpha = " << params.radio.alpha
            << ", seed = " << params.seed << ")\n\n";

  const auto points = exp::run_comparison(params, flows, options);

  util::Table table({"flow", "length KB", "hops", "cost-unaware", "imobif",
                     "notifications"});
  std::vector<double> cu, in;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    const double rc = lifetime ? pt.lifetime_ratio_cost_unaware()
                               : pt.energy_ratio_cost_unaware();
    const double ri = lifetime ? pt.lifetime_ratio_informed()
                               : pt.energy_ratio_informed();
    cu.push_back(rc);
    in.push_back(ri);
    table.add_row({std::to_string(i),
                   util::Table::num(pt.flow_bits.value() / 8192.0, 5),
                   std::to_string(pt.hops), util::Table::num(rc),
                   util::Table::num(ri),
                   std::to_string(pt.informed.notifications)});
  }
  table.print(std::cout);

  util::Summary cu_sum, in_sum;
  for (double v : cu) cu_sum.add(v);
  for (double v : in) in_sum.add(v);
  const util::Interval cu_ci = util::bootstrap_mean_ci(cu);
  const util::Interval in_ci = util::bootstrap_mean_ci(in);
  std::cout << "\ncost-unaware mean ratio " << util::Table::num(cu_sum.mean())
            << "  [95% CI " << util::Table::num(cu_ci.lo) << ", "
            << util::Table::num(cu_ci.hi) << "]\n"
            << "imobif       mean ratio " << util::Table::num(in_sum.mean())
            << "  [95% CI " << util::Table::num(in_ci.lo) << ", "
            << util::Table::num(in_ci.hi) << "]\n";

  if (args.has("csv")) {
    util::write_csv(args.get_string("csv"), table);
    std::cout << "\nwrote " << args.get_string("csv") << "\n";
  }
  return 0;
}
