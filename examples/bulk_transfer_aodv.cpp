// Bulk transfer over AODV-lite: demonstrates the framework on top of the
// on-demand routing substrate the paper's Section 2 assumes (rather than
// the greedy geographic routing its evaluation uses).
//
// A robot swarm must ship a large sensor log across a crooked relay chain.
// AODV discovers the route; iMobif then decides per the cost/benefit
// aggregate whether straightening the chain pays for this transfer.
//
//   $ ./bulk_transfer_aodv [megabytes]
#include <cstdlib>
#include <iostream>

#include "core/imobif.hpp"
#include "geom/segment.hpp"
#include "util/table.hpp"

namespace {

using namespace imobif;

struct Outcome {
  double total_j = 0.0;
  double tx_j = 0.0;
  double move_j = 0.0;
  double max_offline_m = 0.0;
  std::uint64_t notifications = 0;
  bool completed = false;
};

const std::vector<geom::Vec2> kChain = {
    {0, 0}, {130, 70}, {260, -40}, {390, 60}, {520, -50}, {650, 0}};

Outcome run(core::MobilityMode mode, double flow_bits) {
  net::NetworkConfig config;
  config.node.charge_hello_energy = false;
  config.radio.b = 5e-10;
  net::Network network(config);
  for (const auto& pos : kChain) {
    network.add_node(pos, util::Joules{5000.0});
  }

  auto aodv = std::make_unique<net::AodvRouting>(network.medium());
  net::AodvRouting* routing = aodv.get();
  network.set_routing(std::move(aodv));

  energy::MobilityParams mp;
  mp.k = 0.1;
  const energy::MobilityEnergyModel mobility(mp);
  auto policy = core::make_default_policy(network.radio(), mobility, mode);
  network.set_policy(policy.get());

  network.warmup(util::Seconds{25.0});
  routing->prepare_route(network.node(0), 5);  // AODV discovery
  network.simulator().run(network.simulator().now() +
                          sim::Time::from_seconds(2.0));

  net::FlowSpec spec;
  spec.id = 1;
  spec.source = 0;
  spec.destination = 5;
  spec.length_bits = util::Bits{flow_bits};
  spec.strategy = net::StrategyId::kMinTotalEnergy;
  spec.initially_enabled = (mode == core::MobilityMode::kCostUnaware);
  network.start_flow(spec);
  network.run_flows(
      util::Seconds{flow_bits / spec.rate_bps.value() * 4.0 + 300.0});

  Outcome out;
  out.completed = network.progress(1).completed;
  out.total_j = network.total_consumed_energy().value();
  out.tx_j = network.total_transmit_energy().value();
  out.move_j = network.total_movement_energy().value();
  out.notifications = network.progress(1).notifications_from_dest;
  const geom::Segment line{kChain.front(), kChain.back()};
  for (std::size_t i = 1; i + 1 < kChain.size(); ++i) {
    out.max_offline_m =
        std::max(out.max_offline_m,
                 line.distance_to(
                     network.node(static_cast<net::NodeId>(i)).position()));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double megabytes = argc > 1 ? std::strtod(argv[1], nullptr) : 2.0;
  const double flow_bits = megabytes * 1024.0 * 1024.0 * 8.0;

  std::cout << "Bulk transfer of " << megabytes
            << " MB over an AODV-discovered crooked relay chain "
               "(k = 0.1 J/m).\n\n";

  imobif::util::Table table({"approach", "done", "total J", "tx J", "move J",
                             "max off-line m", "notifications"});
  const auto add = [&](const char* name, const Outcome& o) {
    table.add_row({name, o.completed ? "yes" : "NO",
                   imobif::util::Table::num(o.total_j, 5),
                   imobif::util::Table::num(o.tx_j, 5),
                   imobif::util::Table::num(o.move_j, 4),
                   imobif::util::Table::num(o.max_offline_m, 4),
                   std::to_string(o.notifications)});
  };
  add("no-mobility", run(imobif::core::MobilityMode::kNoMobility, flow_bits));
  add("cost-unaware",
      run(imobif::core::MobilityMode::kCostUnaware, flow_bits));
  add("imobif", run(imobif::core::MobilityMode::kInformed, flow_bits));
  table.print(std::cout);

  std::cout << "\nTry 0.1 MB: iMobif refuses to move (stays at the "
               "baseline) while the\ncost-unaware swarm wastes movement "
               "energy; at multi-MB sizes both move\nand iMobif matches "
               "the cost-unaware transmission savings.\n";
  return 0;
}
