// Minimal tour of the parallel experiment runtime: fan a Monte Carlo
// sweep across worker threads with the SweepEngine, aggregate the result
// series with a SweepReport, and export a JSON artifact.
//
//   parallel_sweep [--instances N] [--jobs N] [--seed S] [--json PATH]
//
// Results are bit-identical for any --jobs value: each job's instance is
// sampled from a seed derived statelessly from (base seed, job index).
#include <iostream>
#include <vector>

#include "runtime/report.hpp"
#include "runtime/sweep.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace imobif;

  const util::Args args(argc, argv);
  const std::size_t instances =
      static_cast<std::size_t>(args.get_int("instances", 8));
  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 4));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7));

  exp::ScenarioParams params;
  params.node_count = 60;
  params.area_m = util::Meters{800.0};
  params.mean_flow_bits = util::Bits{100.0 * 1024.0 * 8.0};

  // One job per instance, every job replayed under iMobif.
  std::vector<runtime::SweepJob> sweep(instances);
  for (auto& job : sweep) {
    job.params = params;
    job.mode = core::MobilityMode::kInformed;
  }

  const runtime::SweepEngine engine(jobs);
  const auto outcomes = engine.run(sweep, seed);

  std::vector<double> total_energy, moved_m;
  for (const auto& outcome : outcomes) {
    total_energy.push_back(outcome.result.total_energy_j.value());
    moved_m.push_back(outcome.result.moved_distance_m.value());
    std::cout << "seed " << outcome.seed << "  hops " << outcome.hops
              << "  energy " << outcome.result.total_energy_j.value()
              << " J  moved " << outcome.result.moved_distance_m.value()
              << " m\n";
  }

  runtime::SweepReport report("parallel_sweep_example");
  report.set_meta("base_seed", seed);
  report.add_series("total_energy_j", total_energy);
  report.add_series("moved_distance_m", moved_m);

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    report.write_file(json_path);
    std::cout << "wrote " << json_path << "\n";
  } else {
    std::cout << report.to_string();
  }
  return 0;
}
