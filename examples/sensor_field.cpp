// Sensor-field scenario (the paper's motivating application): several
// sensors stream reports across shared relays toward a collection point,
// batteries are small, and the operator cares about the time until the
// first node dies. Runs the max-lifetime strategy under the three
// approaches and demonstrates the multi-flow target-blending extension at
// relays serving more than one flow.
//
//   $ ./sensor_field [seed]
#include <cstdlib>
#include <iostream>

#include "core/imobif.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace imobif;

struct Outcome {
  double lifetime_s = 0.0;
  bool any_death = false;
  double delivered_kb = 0.0;
  double moved_m = 0.0;
};

Outcome run(core::MobilityMode mode, std::uint64_t seed) {
  net::NetworkConfig config;
  config.medium.comm_range_m = 180.0;
  config.node.charge_hello_energy = false;
  config.radio.b = 5e-10;

  net::Network network(config);
  util::Rng rng(seed);

  // A collection sink, two sensor clusters, and shared relays between.
  //   sensors 0,1 --- relays 2,3 --- sink 4; sensor 5 joins at relay 3.
  network.add_node({0.0, 60.0},
                   util::Joules{rng.uniform(20.0, 60.0)});  // sensor A
  network.add_node({0.0, -60.0},
                   util::Joules{rng.uniform(20.0, 60.0)});  // sensor B
  network.add_node({150.0, 20.0},
                   util::Joules{rng.uniform(10.0, 40.0)});  // relay
  network.add_node({300.0, -20.0},
                   util::Joules{rng.uniform(10.0, 40.0)});  // relay
  network.add_node({450.0, 0.0}, util::Joules{500.0});  // sink (mains)
  network.add_node({160.0, -140.0},
                   util::Joules{rng.uniform(20.0, 60.0)});  // sensor C

  network.set_routing(std::make_unique<net::GreedyRouting>(network.medium()));

  energy::MobilityParams mp;
  mp.k = 0.5;
  mp.max_step_m = 1.0;
  const energy::MobilityEnergyModel mobility(mp);
  auto policy = core::make_default_policy(network.radio(), mobility, mode);
  policy->set_multi_flow_blending(true);  // relays serve multiple flows
  network.set_policy(policy.get());
  network.set_stop_on_first_death(true);
  network.warmup(util::Seconds{25.0});

  const double report_stream = 300.0 * 1024.0 * 8.0;  // 300 KB per sensor
  for (net::NodeId sensor : {0u, 1u, 5u}) {
    net::FlowSpec spec;
    spec.id = sensor + 1;
    spec.source = sensor;
    spec.destination = 4;
    spec.length_bits = util::Bits{report_stream};
    spec.strategy = net::StrategyId::kMaxLifetime;
    spec.initially_enabled = (mode == core::MobilityMode::kCostUnaware);
    network.start_flow(spec);
  }
  network.run_flows(util::Seconds{4000.0});

  Outcome out;
  out.any_death = network.first_death_time().has_value();
  out.lifetime_s = out.any_death
                       ? network.first_death_time()->seconds()
                       : network.simulator().now().seconds();
  for (const auto* prog : network.all_progress()) {
    out.delivered_kb += prog->delivered_bits.value() / 8192.0;
  }
  out.moved_m = policy->total_distance_moved().value();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  std::cout << "Sensor field: 3 sensors -> shared relays -> sink, "
               "max-lifetime strategy,\nmulti-flow target blending "
               "enabled.\n\n";

  imobif::util::Table table({"approach", "first death (s)", "delivered KB",
                             "relays moved (m)"});
  const auto add = [&](const char* name, const Outcome& o) {
    table.add_row({name,
                   o.any_death ? imobif::util::Table::num(o.lifetime_s, 5)
                               : "none (flows done)",
                   imobif::util::Table::num(o.delivered_kb, 5),
                   imobif::util::Table::num(o.moved_m, 4)});
  };
  add("no-mobility", run(imobif::core::MobilityMode::kNoMobility, seed));
  add("cost-unaware", run(imobif::core::MobilityMode::kCostUnaware, seed));
  add("imobif", run(imobif::core::MobilityMode::kInformed, seed));
  table.print(std::cout);

  std::cout << "\nThe informed run only relocates relays when the expected "
               "bottleneck\ncapacity improves after paying the movement "
               "energy, so its first-death\ntime is never materially worse "
               "than static and often better; the\ncost-unaware run drains "
               "weak relays by moving them unconditionally.\n";
  return 0;
}
