// Localization demo: the positioning substrate behind Assumption 2.
//
// Drops a sensor field with a handful of GPS anchors, runs the iterative
// range-based localization of src/loc under increasing ranging noise, and
// reports coverage and accuracy — the error magnitudes that the
// `position_error_m` scenario knob (bench ablation A9) feeds back into
// the mobility framework.
//
//   $ ./localization_demo [seed]
#include <cstdlib>
#include <iostream>

#include "loc/localization.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace imobif;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 100 nodes uniform in the paper's 1000 m x 1000 m area.
  util::Rng rng(seed);
  std::vector<geom::Vec2> truth;
  for (int i = 0; i < 100; ++i) {
    truth.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }

  std::cout << "Iterative range-based localization, 100 nodes in "
               "1000 m x 1000 m, ranging\nradius 180 m (the paper's radio "
               "range). Sweeping anchor density vs ranging\nnoise.\n\n";

  util::Table table({"anchors", "noise sigma (m)", "localized",
                     "mean error (m)", "max error (m)"});
  for (const int anchor_count : {8, 16, 30}) {
    std::vector<bool> anchors(truth.size(), false);
    util::Rng pick(seed + 1);
    int placed = 0;
    while (placed < anchor_count) {
      const auto i = static_cast<std::size_t>(pick.uniform_int(0, 99));
      if (!anchors[i]) {
        anchors[i] = true;
        ++placed;
      }
    }
    for (const double sigma : {0.0, 1.0, 2.0}) {
      loc::LocalizationConfig config;
      config.range_m = 180.0;
      config.noise_sigma_m = sigma;
      config.seed = seed + 2;
      const auto result = loc::localize_network(truth, anchors, config);
      table.add_row({std::to_string(anchor_count), util::Table::num(sigma),
                     std::to_string(result.localized_count) + "/100",
                     util::Table::num(result.mean_error_m),
                     util::Table::num(result.max_error_m)});
    }
  }
  table.print(std::cout);

  std::cout << "\nReading: exact ranging recovers every reachable node "
               "exactly at any anchor\ndensity. Under noise, error "
               "compounds along multilateration chains, so\naccuracy is "
               "governed by the distance (in hops) to the nearest "
               "anchors -\ndenser anchoring keeps it at meter scale. "
               "These residual magnitudes are\nwhat imobif_sim "
               "--position_error_m injects into the mobility framework\n"
               "(harmless at meter scale, per ablation A9).\n";
  return 0;
}
