// Quickstart: run one flow instance under the three approaches the paper
// compares and print the headline numbers (total energy, notifications,
// relay displacement).
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "exp/experiments.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace imobif;

  exp::ScenarioParams params;
  params.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  params.mean_flow_bits = util::Bits{1024.0 * 1024.0 * 8.0};
  params.mobility.k = 0.5;
  params.radio.alpha = 2.0;
  params.strategy = net::StrategyId::kMinTotalEnergy;

  std::cout << "iMobif quickstart: one 1 MB-mean flow, k = 0.5 J/m, "
               "alpha = 2\n\n";

  const auto points = exp::run_comparison(params, /*flow_count=*/1);
  const exp::ComparisonPoint& pt = points.front();

  std::cout << "flow length: " << pt.flow_bits.value() / 8192.0
            << " KB over "
            << pt.hops << " greedy hops\n\n";

  util::Table table({"approach", "total J", "tx J", "move J", "ratio",
                     "notifications", "moved m"});
  auto add = [&](const char* name, const exp::RunResult& run,
                 double ratio) {
    table.add_row({name, util::Table::num(run.total_energy_j.value()),
                   util::Table::num(run.transmit_energy_j.value()),
                   util::Table::num(run.movement_energy_j.value()),
                   util::Table::num(ratio),
                   std::to_string(run.notifications),
                   util::Table::num(run.moved_distance_m.value())});
  };
  add("no-mobility", pt.baseline, 1.0);
  add("cost-unaware", pt.cost_unaware, pt.energy_ratio_cost_unaware());
  add("imobif", pt.informed, pt.energy_ratio_informed());
  table.print(std::cout);

  std::cout << "\nA ratio < 1 means the approach beat the static network; "
               "iMobif additionally\nnever does worse than the baseline on "
               "short flows because it verifies the\nmobility benefit "
               "against the movement cost before enabling it.\n";
  return 0;
}
