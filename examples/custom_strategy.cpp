// Extending the framework with a user-defined mobility strategy — the
// paper's central design claim: "imobif can be tuned for different energy
// optimization goals by changing the mobility strategy and the
// corresponding cost-benefit aggregate function."
//
// The custom strategy here is *sink-gravity*: every relay drifts a fixed
// fraction of the way toward its downstream neighbor (useful when the
// tail of a flow is expected to carry follow-up flows to the same sink).
// It reuses the min/sum aggregate of the min-energy strategy, and the
// unchanged iMobif machinery decides per flow whether the drift pays.
//
//   $ ./custom_strategy
#include <algorithm>
#include <iostream>
#include <limits>

#include "core/imobif.hpp"
#include "util/table.hpp"

namespace {

using namespace imobif;

// Application-specific strategy ids live above the reserved built-ins.
constexpr auto kSinkGravityId = static_cast<net::StrategyId>(200);

class SinkGravityStrategy final : public core::MobilityStrategy {
 public:
  explicit SinkGravityStrategy(double pull) : pull_(pull) {}

  net::StrategyId id() const override { return kSinkGravityId; }
  const char* name() const override { return "sink-gravity"; }

  geom::Vec2 next_position(const core::RelayContext& ctx) const override {
    // Drift `pull_` of the way from the current position toward the next
    // node, but never past the midpoint of prev/next (stay a relay).
    const geom::Vec2 toward =
        geom::lerp(ctx.self_position, ctx.next_position, pull_);
    const geom::Vec2 cap =
        geom::midpoint(ctx.prev_position, ctx.next_position);
    return geom::distance(ctx.prev_position, toward) <
                   geom::distance(ctx.prev_position, cap)
               ? toward
               : cap;
  }

  void aggregate(net::MobilityAggregate& agg,
                 const core::LocalPerformance& local) const override {
    agg.bits_mob = std::min(agg.bits_mob, local.bits_mob);
    agg.resi_mob += local.resi_mob;
    agg.bits_nomob = std::min(agg.bits_nomob, local.bits_nomob);
    agg.resi_nomob += local.resi_nomob;
  }

  void init_aggregate(net::MobilityAggregate& agg) const override {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    agg = {util::Bits{kInf}, util::Joules{0.0}, util::Bits{kInf},
           util::Joules{0.0}};
  }

 private:
  double pull_;
};

double run(core::MobilityMode mode, double flow_bits) {
  net::NetworkConfig config;
  config.node.charge_hello_energy = false;
  config.radio.b = 5e-10;
  net::Network network(config);
  for (const auto& pos : std::vector<geom::Vec2>{
           {0, 0}, {130, 50}, {260, -50}, {390, 0}}) {
    network.add_node(pos, util::Joules{5000.0});
  }
  network.set_routing(std::make_unique<net::GreedyRouting>(network.medium()));

  energy::MobilityParams mp;
  mp.k = 0.1;
  const energy::MobilityEnergyModel mobility(mp);

  // A policy with ONLY the custom strategy registered.
  auto policy = std::make_unique<core::ImobifPolicy>(network.radio(),
                                                     mobility, mode);
  policy->register_strategy(std::make_unique<SinkGravityStrategy>(0.15));
  network.set_policy(policy.get());
  network.warmup(util::Seconds{25.0});

  net::FlowSpec spec;
  spec.id = 1;
  spec.source = 0;
  spec.destination = 3;
  spec.length_bits = util::Bits{flow_bits};
  spec.strategy = kSinkGravityId;
  spec.initially_enabled = (mode == core::MobilityMode::kCostUnaware);
  network.start_flow(spec);
  network.run_flows(
      util::Seconds{flow_bits / spec.rate_bps.value() * 4.0 + 300.0});
  return network.total_consumed_energy().value();
}

}  // namespace

int main() {
  std::cout << "Custom 'sink-gravity' strategy plugged into the unchanged "
               "iMobif framework.\n\n";
  imobif::util::Table table(
      {"flow size", "baseline J", "cost-unaware J", "imobif J"});
  for (const double kb : {100.0, 2048.0}) {
    const double bits = kb * 1024.0 * 8.0;
    table.add_row({imobif::util::Table::num(kb, 5) + " KB",
                   imobif::util::Table::num(
                       run(imobif::core::MobilityMode::kNoMobility, bits), 5),
                   imobif::util::Table::num(
                       run(imobif::core::MobilityMode::kCostUnaware, bits), 5),
                   imobif::util::Table::num(
                       run(imobif::core::MobilityMode::kInformed, bits), 5)});
  }
  table.print(std::cout);
  std::cout << "\nThe framework needed no changes: the strategy supplies "
               "GetNextPosition and\nAggregateMobilityPerformance (plus the "
               "fold identity), and the cost/benefit\nplumbing, notification "
               "protocol, and movement mechanics come for free.\n";
  return 0;
}
