# Empty dependencies file for ablation_exact_split.
# This may be replaced when dependencies are built.
