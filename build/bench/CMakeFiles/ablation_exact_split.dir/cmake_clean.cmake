file(REMOVE_RECURSE
  "CMakeFiles/ablation_exact_split.dir/ablation_exact_split.cpp.o"
  "CMakeFiles/ablation_exact_split.dir/ablation_exact_split.cpp.o.d"
  "ablation_exact_split"
  "ablation_exact_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exact_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
