# Empty dependencies file for ext_recruitment.
# This may be replaced when dependencies are built.
