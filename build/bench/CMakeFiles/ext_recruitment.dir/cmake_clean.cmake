file(REMOVE_RECURSE
  "CMakeFiles/ext_recruitment.dir/ext_recruitment.cpp.o"
  "CMakeFiles/ext_recruitment.dir/ext_recruitment.cpp.o.d"
  "ext_recruitment"
  "ext_recruitment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_recruitment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
