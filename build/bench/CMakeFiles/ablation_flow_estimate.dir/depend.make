# Empty dependencies file for ablation_flow_estimate.
# This may be replaced when dependencies are built.
