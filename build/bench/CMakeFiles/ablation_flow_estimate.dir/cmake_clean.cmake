file(REMOVE_RECURSE
  "CMakeFiles/ablation_flow_estimate.dir/ablation_flow_estimate.cpp.o"
  "CMakeFiles/ablation_flow_estimate.dir/ablation_flow_estimate.cpp.o.d"
  "ablation_flow_estimate"
  "ablation_flow_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flow_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
