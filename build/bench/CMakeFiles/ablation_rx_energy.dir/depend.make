# Empty dependencies file for ablation_rx_energy.
# This may be replaced when dependencies are built.
