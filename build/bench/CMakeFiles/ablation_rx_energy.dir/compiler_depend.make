# Empty compiler generated dependencies file for ablation_rx_energy.
# This may be replaced when dependencies are built.
