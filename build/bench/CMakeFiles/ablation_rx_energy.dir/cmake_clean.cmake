file(REMOVE_RECURSE
  "CMakeFiles/ablation_rx_energy.dir/ablation_rx_energy.cpp.o"
  "CMakeFiles/ablation_rx_energy.dir/ablation_rx_energy.cpp.o.d"
  "ablation_rx_energy"
  "ablation_rx_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rx_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
