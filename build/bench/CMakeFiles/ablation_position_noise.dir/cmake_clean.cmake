file(REMOVE_RECURSE
  "CMakeFiles/ablation_position_noise.dir/ablation_position_noise.cpp.o"
  "CMakeFiles/ablation_position_noise.dir/ablation_position_noise.cpp.o.d"
  "ablation_position_noise"
  "ablation_position_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_position_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
