# Empty dependencies file for ablation_position_noise.
# This may be replaced when dependencies are built.
