# Empty dependencies file for fig7_notifications.
# This may be replaced when dependencies are built.
