file(REMOVE_RECURSE
  "CMakeFiles/fig7_notifications.dir/fig7_notifications.cpp.o"
  "CMakeFiles/fig7_notifications.dir/fig7_notifications.cpp.o.d"
  "fig7_notifications"
  "fig7_notifications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_notifications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
