file(REMOVE_RECURSE
  "CMakeFiles/fig8_lifetime.dir/fig8_lifetime.cpp.o"
  "CMakeFiles/fig8_lifetime.dir/fig8_lifetime.cpp.o.d"
  "fig8_lifetime"
  "fig8_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
