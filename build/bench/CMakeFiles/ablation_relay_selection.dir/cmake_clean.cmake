file(REMOVE_RECURSE
  "CMakeFiles/ablation_relay_selection.dir/ablation_relay_selection.cpp.o"
  "CMakeFiles/ablation_relay_selection.dir/ablation_relay_selection.cpp.o.d"
  "ablation_relay_selection"
  "ablation_relay_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relay_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
