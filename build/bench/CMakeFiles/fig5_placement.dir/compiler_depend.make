# Empty compiler generated dependencies file for fig5_placement.
# This may be replaced when dependencies are built.
