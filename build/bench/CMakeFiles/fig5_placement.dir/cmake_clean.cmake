file(REMOVE_RECURSE
  "CMakeFiles/fig5_placement.dir/fig5_placement.cpp.o"
  "CMakeFiles/fig5_placement.dir/fig5_placement.cpp.o.d"
  "fig5_placement"
  "fig5_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
