# Empty compiler generated dependencies file for ablation_alpha_prime.
# This may be replaced when dependencies are built.
