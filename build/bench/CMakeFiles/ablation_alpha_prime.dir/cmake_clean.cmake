file(REMOVE_RECURSE
  "CMakeFiles/ablation_alpha_prime.dir/ablation_alpha_prime.cpp.o"
  "CMakeFiles/ablation_alpha_prime.dir/ablation_alpha_prime.cpp.o.d"
  "ablation_alpha_prime"
  "ablation_alpha_prime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alpha_prime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
