# Empty compiler generated dependencies file for imobif_sim.
# This may be replaced when dependencies are built.
