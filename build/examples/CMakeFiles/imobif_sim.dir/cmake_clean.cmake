file(REMOVE_RECURSE
  "CMakeFiles/imobif_sim.dir/imobif_sim.cpp.o"
  "CMakeFiles/imobif_sim.dir/imobif_sim.cpp.o.d"
  "imobif_sim"
  "imobif_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imobif_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
