file(REMOVE_RECURSE
  "CMakeFiles/bulk_transfer_aodv.dir/bulk_transfer_aodv.cpp.o"
  "CMakeFiles/bulk_transfer_aodv.dir/bulk_transfer_aodv.cpp.o.d"
  "bulk_transfer_aodv"
  "bulk_transfer_aodv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_transfer_aodv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
