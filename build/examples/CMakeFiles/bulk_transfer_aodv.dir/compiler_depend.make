# Empty compiler generated dependencies file for bulk_transfer_aodv.
# This may be replaced when dependencies are built.
