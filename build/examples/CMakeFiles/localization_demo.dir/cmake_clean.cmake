file(REMOVE_RECURSE
  "CMakeFiles/localization_demo.dir/localization_demo.cpp.o"
  "CMakeFiles/localization_demo.dir/localization_demo.cpp.o.d"
  "localization_demo"
  "localization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
