# Empty compiler generated dependencies file for localization_demo.
# This may be replaced when dependencies are built.
