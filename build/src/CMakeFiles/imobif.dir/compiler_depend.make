# Empty compiler generated dependencies file for imobif.
# This may be replaced when dependencies are built.
