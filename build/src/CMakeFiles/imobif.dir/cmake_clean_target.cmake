file(REMOVE_RECURSE
  "libimobif.a"
)
