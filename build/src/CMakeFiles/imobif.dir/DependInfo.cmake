
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_benefit.cpp" "src/CMakeFiles/imobif.dir/core/cost_benefit.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/core/cost_benefit.cpp.o.d"
  "/root/repo/src/core/imobif_policy.cpp" "src/CMakeFiles/imobif.dir/core/imobif_policy.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/core/imobif_policy.cpp.o.d"
  "/root/repo/src/core/lifetime_solver.cpp" "src/CMakeFiles/imobif.dir/core/lifetime_solver.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/core/lifetime_solver.cpp.o.d"
  "/root/repo/src/core/max_lifetime_strategy.cpp" "src/CMakeFiles/imobif.dir/core/max_lifetime_strategy.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/core/max_lifetime_strategy.cpp.o.d"
  "/root/repo/src/core/min_energy_strategy.cpp" "src/CMakeFiles/imobif.dir/core/min_energy_strategy.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/core/min_energy_strategy.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/CMakeFiles/imobif.dir/core/strategy.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/core/strategy.cpp.o.d"
  "/root/repo/src/energy/battery.cpp" "src/CMakeFiles/imobif.dir/energy/battery.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/energy/battery.cpp.o.d"
  "/root/repo/src/energy/mobility_model.cpp" "src/CMakeFiles/imobif.dir/energy/mobility_model.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/energy/mobility_model.cpp.o.d"
  "/root/repo/src/energy/power_distance_table.cpp" "src/CMakeFiles/imobif.dir/energy/power_distance_table.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/energy/power_distance_table.cpp.o.d"
  "/root/repo/src/energy/radio_model.cpp" "src/CMakeFiles/imobif.dir/energy/radio_model.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/energy/radio_model.cpp.o.d"
  "/root/repo/src/exp/experiments.cpp" "src/CMakeFiles/imobif.dir/exp/experiments.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/exp/experiments.cpp.o.d"
  "/root/repo/src/exp/instance.cpp" "src/CMakeFiles/imobif.dir/exp/instance.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/exp/instance.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/CMakeFiles/imobif.dir/exp/runner.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/exp/runner.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "src/CMakeFiles/imobif.dir/exp/scenario.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/exp/scenario.cpp.o.d"
  "/root/repo/src/exp/scenario_io.cpp" "src/CMakeFiles/imobif.dir/exp/scenario_io.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/exp/scenario_io.cpp.o.d"
  "/root/repo/src/exp/trace.cpp" "src/CMakeFiles/imobif.dir/exp/trace.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/exp/trace.cpp.o.d"
  "/root/repo/src/geom/segment.cpp" "src/CMakeFiles/imobif.dir/geom/segment.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/geom/segment.cpp.o.d"
  "/root/repo/src/geom/vec2.cpp" "src/CMakeFiles/imobif.dir/geom/vec2.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/geom/vec2.cpp.o.d"
  "/root/repo/src/loc/localization.cpp" "src/CMakeFiles/imobif.dir/loc/localization.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/loc/localization.cpp.o.d"
  "/root/repo/src/loc/multilateration.cpp" "src/CMakeFiles/imobif.dir/loc/multilateration.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/loc/multilateration.cpp.o.d"
  "/root/repo/src/net/aodv_routing.cpp" "src/CMakeFiles/imobif.dir/net/aodv_routing.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/net/aodv_routing.cpp.o.d"
  "/root/repo/src/net/flow_groups.cpp" "src/CMakeFiles/imobif.dir/net/flow_groups.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/net/flow_groups.cpp.o.d"
  "/root/repo/src/net/flow_table.cpp" "src/CMakeFiles/imobif.dir/net/flow_table.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/net/flow_table.cpp.o.d"
  "/root/repo/src/net/greedy_routing.cpp" "src/CMakeFiles/imobif.dir/net/greedy_routing.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/net/greedy_routing.cpp.o.d"
  "/root/repo/src/net/grid_index.cpp" "src/CMakeFiles/imobif.dir/net/grid_index.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/net/grid_index.cpp.o.d"
  "/root/repo/src/net/medium.cpp" "src/CMakeFiles/imobif.dir/net/medium.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/net/medium.cpp.o.d"
  "/root/repo/src/net/neighbor_table.cpp" "src/CMakeFiles/imobif.dir/net/neighbor_table.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/net/neighbor_table.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/imobif.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/net/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/imobif.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/imobif.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/CMakeFiles/imobif.dir/net/routing.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/net/routing.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/imobif.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/imobif.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/CMakeFiles/imobif.dir/sim/time.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/sim/time.cpp.o.d"
  "/root/repo/src/util/args.cpp" "src/CMakeFiles/imobif.dir/util/args.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/util/args.cpp.o.d"
  "/root/repo/src/util/ascii_plot.cpp" "src/CMakeFiles/imobif.dir/util/ascii_plot.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/util/ascii_plot.cpp.o.d"
  "/root/repo/src/util/config.cpp" "src/CMakeFiles/imobif.dir/util/config.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/util/config.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/imobif.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/imobif.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/imobif.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/imobif.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
