file(REMOVE_RECURSE
  "CMakeFiles/energy_rx_model_test.dir/energy_rx_model_test.cpp.o"
  "CMakeFiles/energy_rx_model_test.dir/energy_rx_model_test.cpp.o.d"
  "energy_rx_model_test"
  "energy_rx_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_rx_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
