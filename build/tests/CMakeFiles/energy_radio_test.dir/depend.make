# Empty dependencies file for energy_radio_test.
# This may be replaced when dependencies are built.
