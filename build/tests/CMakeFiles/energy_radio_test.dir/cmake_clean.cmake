file(REMOVE_RECURSE
  "CMakeFiles/energy_radio_test.dir/energy_radio_test.cpp.o"
  "CMakeFiles/energy_radio_test.dir/energy_radio_test.cpp.o.d"
  "energy_radio_test"
  "energy_radio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_radio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
