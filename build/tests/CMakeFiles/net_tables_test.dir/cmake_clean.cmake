file(REMOVE_RECURSE
  "CMakeFiles/net_tables_test.dir/net_tables_test.cpp.o"
  "CMakeFiles/net_tables_test.dir/net_tables_test.cpp.o.d"
  "net_tables_test"
  "net_tables_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
