file(REMOVE_RECURSE
  "CMakeFiles/net_node_test.dir/net_node_test.cpp.o"
  "CMakeFiles/net_node_test.dir/net_node_test.cpp.o.d"
  "net_node_test"
  "net_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
