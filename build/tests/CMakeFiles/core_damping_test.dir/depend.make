# Empty dependencies file for core_damping_test.
# This may be replaced when dependencies are built.
