file(REMOVE_RECURSE
  "CMakeFiles/core_damping_test.dir/core_damping_test.cpp.o"
  "CMakeFiles/core_damping_test.dir/core_damping_test.cpp.o.d"
  "core_damping_test"
  "core_damping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_damping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
