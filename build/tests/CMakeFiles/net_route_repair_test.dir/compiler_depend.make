# Empty compiler generated dependencies file for net_route_repair_test.
# This may be replaced when dependencies are built.
