# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for net_route_repair_test.
