file(REMOVE_RECURSE
  "CMakeFiles/net_route_repair_test.dir/net_route_repair_test.cpp.o"
  "CMakeFiles/net_route_repair_test.dir/net_route_repair_test.cpp.o.d"
  "net_route_repair_test"
  "net_route_repair_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_route_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
