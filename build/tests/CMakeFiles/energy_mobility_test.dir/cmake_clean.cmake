file(REMOVE_RECURSE
  "CMakeFiles/energy_mobility_test.dir/energy_mobility_test.cpp.o"
  "CMakeFiles/energy_mobility_test.dir/energy_mobility_test.cpp.o.d"
  "energy_mobility_test"
  "energy_mobility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_mobility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
