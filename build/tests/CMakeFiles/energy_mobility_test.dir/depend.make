# Empty dependencies file for energy_mobility_test.
# This may be replaced when dependencies are built.
