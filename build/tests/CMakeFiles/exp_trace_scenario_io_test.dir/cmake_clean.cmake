file(REMOVE_RECURSE
  "CMakeFiles/exp_trace_scenario_io_test.dir/exp_trace_scenario_io_test.cpp.o"
  "CMakeFiles/exp_trace_scenario_io_test.dir/exp_trace_scenario_io_test.cpp.o.d"
  "exp_trace_scenario_io_test"
  "exp_trace_scenario_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_trace_scenario_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
