# Empty compiler generated dependencies file for exp_trace_scenario_io_test.
# This may be replaced when dependencies are built.
