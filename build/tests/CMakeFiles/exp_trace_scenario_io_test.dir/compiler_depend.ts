# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_trace_scenario_io_test.
