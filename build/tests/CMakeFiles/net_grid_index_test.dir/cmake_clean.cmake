file(REMOVE_RECURSE
  "CMakeFiles/net_grid_index_test.dir/net_grid_index_test.cpp.o"
  "CMakeFiles/net_grid_index_test.dir/net_grid_index_test.cpp.o.d"
  "net_grid_index_test"
  "net_grid_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_grid_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
