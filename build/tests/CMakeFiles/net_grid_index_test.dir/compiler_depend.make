# Empty compiler generated dependencies file for net_grid_index_test.
# This may be replaced when dependencies are built.
