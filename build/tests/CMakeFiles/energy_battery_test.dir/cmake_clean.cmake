file(REMOVE_RECURSE
  "CMakeFiles/energy_battery_test.dir/energy_battery_test.cpp.o"
  "CMakeFiles/energy_battery_test.dir/energy_battery_test.cpp.o.d"
  "energy_battery_test"
  "energy_battery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_battery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
