# Empty dependencies file for energy_battery_test.
# This may be replaced when dependencies are built.
