file(REMOVE_RECURSE
  "CMakeFiles/net_medium_test.dir/net_medium_test.cpp.o"
  "CMakeFiles/net_medium_test.dir/net_medium_test.cpp.o.d"
  "net_medium_test"
  "net_medium_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_medium_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
