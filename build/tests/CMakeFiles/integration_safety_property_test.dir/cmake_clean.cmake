file(REMOVE_RECURSE
  "CMakeFiles/integration_safety_property_test.dir/integration_safety_property_test.cpp.o"
  "CMakeFiles/integration_safety_property_test.dir/integration_safety_property_test.cpp.o.d"
  "integration_safety_property_test"
  "integration_safety_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_safety_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
