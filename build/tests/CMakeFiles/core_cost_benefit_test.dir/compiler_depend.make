# Empty compiler generated dependencies file for core_cost_benefit_test.
# This may be replaced when dependencies are built.
