# Empty dependencies file for util_config_test.
# This may be replaced when dependencies are built.
