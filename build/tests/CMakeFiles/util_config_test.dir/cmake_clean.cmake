file(REMOVE_RECURSE
  "CMakeFiles/util_config_test.dir/util_config_test.cpp.o"
  "CMakeFiles/util_config_test.dir/util_config_test.cpp.o.d"
  "util_config_test"
  "util_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
