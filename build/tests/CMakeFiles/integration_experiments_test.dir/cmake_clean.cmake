file(REMOVE_RECURSE
  "CMakeFiles/integration_experiments_test.dir/integration_experiments_test.cpp.o"
  "CMakeFiles/integration_experiments_test.dir/integration_experiments_test.cpp.o.d"
  "integration_experiments_test"
  "integration_experiments_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_experiments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
