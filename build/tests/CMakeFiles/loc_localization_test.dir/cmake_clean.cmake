file(REMOVE_RECURSE
  "CMakeFiles/loc_localization_test.dir/loc_localization_test.cpp.o"
  "CMakeFiles/loc_localization_test.dir/loc_localization_test.cpp.o.d"
  "loc_localization_test"
  "loc_localization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loc_localization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
