# Empty compiler generated dependencies file for loc_localization_test.
# This may be replaced when dependencies are built.
