file(REMOVE_RECURSE
  "CMakeFiles/integration_convergence_test.dir/integration_convergence_test.cpp.o"
  "CMakeFiles/integration_convergence_test.dir/integration_convergence_test.cpp.o.d"
  "integration_convergence_test"
  "integration_convergence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
