# Empty compiler generated dependencies file for integration_convergence_test.
# This may be replaced when dependencies are built.
