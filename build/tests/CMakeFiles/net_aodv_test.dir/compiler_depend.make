# Empty compiler generated dependencies file for net_aodv_test.
# This may be replaced when dependencies are built.
