file(REMOVE_RECURSE
  "CMakeFiles/net_aodv_test.dir/net_aodv_test.cpp.o"
  "CMakeFiles/net_aodv_test.dir/net_aodv_test.cpp.o.d"
  "net_aodv_test"
  "net_aodv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_aodv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
