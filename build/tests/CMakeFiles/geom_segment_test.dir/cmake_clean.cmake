file(REMOVE_RECURSE
  "CMakeFiles/geom_segment_test.dir/geom_segment_test.cpp.o"
  "CMakeFiles/geom_segment_test.dir/geom_segment_test.cpp.o.d"
  "geom_segment_test"
  "geom_segment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_segment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
