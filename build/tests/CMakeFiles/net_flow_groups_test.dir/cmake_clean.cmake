file(REMOVE_RECURSE
  "CMakeFiles/net_flow_groups_test.dir/net_flow_groups_test.cpp.o"
  "CMakeFiles/net_flow_groups_test.dir/net_flow_groups_test.cpp.o.d"
  "net_flow_groups_test"
  "net_flow_groups_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_flow_groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
