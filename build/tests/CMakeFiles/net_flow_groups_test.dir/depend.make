# Empty dependencies file for net_flow_groups_test.
# This may be replaced when dependencies are built.
