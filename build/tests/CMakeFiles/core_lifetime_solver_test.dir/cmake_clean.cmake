file(REMOVE_RECURSE
  "CMakeFiles/core_lifetime_solver_test.dir/core_lifetime_solver_test.cpp.o"
  "CMakeFiles/core_lifetime_solver_test.dir/core_lifetime_solver_test.cpp.o.d"
  "core_lifetime_solver_test"
  "core_lifetime_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lifetime_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
