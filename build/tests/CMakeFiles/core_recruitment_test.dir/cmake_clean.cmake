file(REMOVE_RECURSE
  "CMakeFiles/core_recruitment_test.dir/core_recruitment_test.cpp.o"
  "CMakeFiles/core_recruitment_test.dir/core_recruitment_test.cpp.o.d"
  "core_recruitment_test"
  "core_recruitment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_recruitment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
