# Empty dependencies file for core_recruitment_test.
# This may be replaced when dependencies are built.
