# Empty compiler generated dependencies file for energy_power_distance_table_test.
# This may be replaced when dependencies are built.
