file(REMOVE_RECURSE
  "CMakeFiles/energy_power_distance_table_test.dir/energy_power_distance_table_test.cpp.o"
  "CMakeFiles/energy_power_distance_table_test.dir/energy_power_distance_table_test.cpp.o.d"
  "energy_power_distance_table_test"
  "energy_power_distance_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_power_distance_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
