// Fixture: an unguarded header must be flagged.

namespace fixture {
struct Unguarded {};
}  // namespace fixture
