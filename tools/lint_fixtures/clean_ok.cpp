// Fixture: idiomatic library code must pass. Comments and strings that
// mention rand(), time(NULL) or std::cout are not code, and 1.0 == 1.0
// inside this comment is not a comparison.
#include <cmath>
#include <string>

namespace fixture {

inline bool nearly(double a, double b) { return std::abs(a - b) < 1e-9; }

inline std::string banner() {
  return "calls like rand() or time(NULL) in a string are fine";
}

}  // namespace fixture
