// Fixture: wall-clock reads must be flagged.
#include <chrono>
#include <ctime>

long long stamps() {
  const auto a = std::chrono::steady_clock::now().time_since_epoch().count();
  const auto b = static_cast<long long>(time(nullptr));
  return a + b;
}
