// Fixture: parent-relative include must be flagged.
#include "../escape_hatch.hpp"

int escape() { return 1; }
