// Fixture: waivers must suppress findings on the same and the next line.
bool sentinel_same_line(double k) { return k == 0.0; }  // lint:allow(float-equality)

// lint:allow(float-equality)
bool sentinel_next_line(double k) { return k == 0.0; }
