// Fixture: global stream output must be flagged.
#include <iostream>

void chatty() { std::cout << "library code must not print\n"; }
