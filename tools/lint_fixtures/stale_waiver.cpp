// Fixture: MUST fire stale-waiver twice — a waiver for code that was
// refactored away, and a waiver naming a rule that does not exist.
#include <vector>

namespace fixture {

int stale() {
  // The rand() call this once covered is gone; the waiver must now fail.
  // lint:allow(banned-random)
  return 4;
}

int misspelled() {
  // lint:allow(baned-random)
  return 7;
}

}  // namespace fixture
