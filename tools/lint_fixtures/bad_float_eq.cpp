// Fixture: exact floating-point comparison must be flagged.
bool drained(double residual_j) { return residual_j == 0.0; }
bool moved(double dist_m) { return 0.5 != dist_m; }
