// Fixture: unit-suffixed raw doubles OUTSIDE the typed layers are fine —
// src/util is where the boundary conversions live.
#pragma once

namespace imobif::util {

double json_number(double raw_j, double raw_s);

}  // namespace imobif::util
