// Fixture: unit-suffixed raw-double parameters in a typed-layer header.
// The fixture tree mirrors src/energy/ so the rule's path gate engages.
#pragma once

namespace imobif::energy {

// Both declarations bypass util::Quantity despite unit-suffixed names;
// one finding per line.
double bad_transmit(double distance_m, double payload_bits);
double bad_window(const double horizon_s);

// Out of scope for the rule: unsuffixed parameters, fields, and locals.
struct Params {
  double idle_power_w = 0.0;
};
inline double ok_scale(double factor) { return factor * 2.0; }

}  // namespace imobif::energy
