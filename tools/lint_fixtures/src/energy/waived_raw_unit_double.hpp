// Fixture: a waived raw-unit-double at a declared codec boundary.
#pragma once

namespace imobif::energy {

// Wire-format boundary: the codec hands us a raw f64, wrapping happens
// one frame up.  lint:allow is the documented escape hatch.
// lint:allow(raw-unit-double)
double decode_residual(double raw_j);

}  // namespace imobif::energy
