// Fixture: unit-suffixed raw-double parameters in a typed-layer header.
// The fixture tree mirrors src/mob/ so the rule's path gate engages for
// the mobility model zoo.
#pragma once

namespace imobif::mob {

// Both declarations bypass util::Quantity despite unit-suffixed names;
// one finding per line.
double bad_leg_length(double distance_m, double speed_factor);
double bad_pause(const double pause_s);

// Out of scope for the rule: unsuffixed parameters, fields, and locals.
struct Knobs {
  double gm_alpha = 0.75;
};
inline double ok_blend(double alpha) { return alpha * 0.5; }

}  // namespace imobif::mob
