// Fixture: raw blocking socket syscalls in the sweep-service layer must
// trip [socket-timeout] — reads have to sit behind poll_wait() deadlines.
#include "svc/bad_socket.hpp"

int leak_blocking_reads(int fd, char* buf, unsigned len) {
  sockaddr* addr = nullptr;
  (void)::accept(fd, addr, nullptr);           // finding 1
  return static_cast<int>(recv(fd, buf, len, 0));  // finding 2
}
