// Fixture: the socket-timeout waiver on the marker line or the line
// directly above suppresses the finding — the pattern socket.cpp's
// blessed non-blocking call sites use.
#include "svc/waived_socket.hpp"

int waived_blocking_reads(int fd, char* buf, unsigned len) {
  // Non-blocking fd; readiness came from poll_wait() with a deadline.
  // lint:allow(socket-timeout)
  const long got = ::recv(fd, buf, len, 0);
  ::connect(fd, nullptr, 0);  // lint:allow(socket-timeout)
  return static_cast<int>(got);
}
