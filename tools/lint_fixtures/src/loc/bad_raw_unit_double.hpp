// Fixture: unit-suffixed raw-double parameters in the localization layer.
// The fixture tree mirrors src/loc/ so the rule's path gate engages for
// the range-based positioning module (PR 10 widened TYPED_LAYER_DIRS).
#pragma once

namespace imobif::loc {

// Both declarations bypass util::Quantity despite unit-suffixed names;
// one finding per line.
double bad_range_gate(double range_m, int min_references);
double bad_settle(const double settle_s);

// Out of scope for the rule: dimensionless parameters and fields.
struct SolverKnobs {
  double min_relative_det = 1e-6;
};
inline double ok_scale(double det_ratio) { return det_ratio * 2.0; }

}  // namespace imobif::loc
