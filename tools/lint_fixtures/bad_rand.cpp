// Fixture: ambient randomness must be flagged.
#include <cstdlib>

int noisy() {
  std::srand(42);
  return std::rand();
}
