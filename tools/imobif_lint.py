#!/usr/bin/env python3
"""imobif determinism linter.

Enforces repo-specific invariants that generic static analyzers cannot
express. The simulator's headline claim — bit-reproducible runs from a
single 64-bit seed, for any worker count — only survives if no code path
consults ambient state, so this linter bans the ambient-state escape
hatches outright in library code (``src/``):

  banned-random    rand()/srand()/std::random_device/...: all randomness
                   must flow through util::rng seed derivation.
  wall-clock       time()/clock()/std::chrono::*_clock::now()/...:
                   simulated time comes from sim::Simulator, wall time is
                   measured only by drivers (bench/, tools/).
  iostream         #include <iostream> or std::cout/cerr/clog: library
                   code reports through return values and callbacks, not
                   by printing (contract failures use check.cpp's stderr).
  pragma-once      every header carries #pragma once.
  float-equality   ==/!= against a floating-point literal: energy and
                   position quantities accumulate rounding error; compare
                   with a tolerance or restructure.
  include-hygiene  no parent-relative ("../") includes, and a .cpp file's
                   first project include is its own header.
  raw-unit-double  a raw ``double`` parameter with a unit-suffixed name
                   (``*_j``, ``*_m``, ``*_s``, ``*_bits``) in a public
                   header of the typed layers (src/energy, src/core,
                   src/net): these must take util::Quantity types
                   (util::Joules, util::Meters, ...) so the dimension is
                   checked at compile time (see src/util/units.hpp).
  socket-timeout   a raw socket syscall (recv/read/accept/connect/select
                   family) in the sweep-service layer (src/svc/): every
                   descriptor there must be non-blocking with readiness
                   from poll_wait()'s bounded timeout, so a hung peer can
                   never wedge a daemon. The blessed call sites live in
                   src/svc/socket.cpp behind explicit waivers.

A finding can be waived by putting ``// lint:allow(<rule>)`` on the same
line or the line directly above it; use sparingly and leave a comment
explaining why the exact construct is safe.

Waivers are themselves audited: a ``lint:allow`` that suppresses nothing —
the offending code was refactored away, or the rule name is misspelled —
is reported as a ``stale-waiver`` error, so dead escape hatches cannot
accumulate and silently blanket future regressions.

When a compile database is available (``--compile-db`` or an auto-found
``build/compile_commands.json``), translation units not listed in it are
skipped instead of globbed blindly — dead files cannot then hide findings
or fail the gate. Headers are always linted (they never appear in the DB).

Usage: imobif_lint.py [--rules] [--compile-db PATH] [PATH ...]
       (default path: src)
Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import json
import os
import re
import sys

RULES = {
    "banned-random": "ambient randomness is banned; use util::Rng",
    "wall-clock": "wall-clock time is banned in library code",
    "iostream": "iostream/global streams are banned in library code",
    "pragma-once": "header must contain #pragma once",
    "float-equality": "==/!= on floating-point quantities",
    "include-hygiene": "include style violation",
    "raw-unit-double": "raw double parameter with unit-suffixed name in a "
                       "typed-layer public header; use util::Quantity",
    "socket-timeout": "raw socket syscall in src/svc/; sockets must be "
                      "non-blocking with poll_wait() timeouts",
    "stale-waiver": "lint:allow() that suppresses no finding (refactored "
                    "code or misspelled rule); remove it",
}

HEADER_EXTS = (".hpp", ".h")
SOURCE_EXTS = (".cpp", ".cc", ".cxx") + HEADER_EXTS

WAIVER_RE = re.compile(r"//\s*lint:allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

BANNED_RANDOM_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:rand|srand|random|drand48|lrand48|mrand48)\s*\("
    r"|std::random_device"
)
WALL_CLOCK_RE = re.compile(
    r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|(?<![\w:])clock\s*\(\s*\)"
    r"|(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now"
    r"|(?<![\w:])(?:gettimeofday|localtime|gmtime|ctime)\s*\("
)
IOSTREAM_RE = re.compile(
    r"#\s*include\s*<iostream>|std::(?:cout|cerr|clog)\b"
)
# A floating literal: 1.0, .5, 2., 1e-9, 1.5e3, optional f suffix. The
# lookarounds keep 'v1.method()' and version strings out.
FLOAT_LIT = r"(?:\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)[fF]?"
# ==/!= token (not <=, >=, ===, or the = of an assignment).
EQ_TOKEN = r"(?:==|!=)(?!=)"
FLOAT_EQ_RE = re.compile(
    rf"{EQ_TOKEN}\s*[-+]?{FLOAT_LIT}(?![\w.])"
    rf"|(?<![\w.]){FLOAT_LIT}\s*{EQ_TOKEN}"
)
PARENT_INCLUDE_RE = re.compile(r'#\s*include\s*"[^"]*\.\./')
PROJECT_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')
# A function parameter (preceded by '(' or ',') declared as a raw double
# whose name carries a unit suffix. Fields and locals start a declaration
# statement instead and are not matched.
RAW_UNIT_DOUBLE_RE = re.compile(
    r"[(,]\s*(?:const\s+)?double\s+\w+_(?:j|m|s|bits)\b"
)
# Directories whose public headers form the typed (units-bearing) layers.
TYPED_LAYER_DIRS = ("energy", "core", "net", "mob", "traffic")
# A raw socket syscall that can block forever on a peer: banned in the
# sweep-service layer, where every read must sit behind a poll_wait()
# deadline. `_`-suffixed names (read_available, accept_conn, connect_to —
# the wrapper layer itself) do not match.
SOCKET_CALL_RE = re.compile(
    r"(?<![\w.])(?:::\s*)?"
    r"(?:recv|recvfrom|recvmsg|read|accept|accept4|connect|select)\s*\("
)


def strip_code(line, in_block_comment):
    """Removes comments and string/char literal contents from a line.

    Returns (stripped_line, in_block_comment). Keeps the line's length
    roughly intact where it matters (matching is content-based).
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            break  # rest of line is a comment
        if c == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


class Finding:
    def __init__(self, path, line_no, rule, detail):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.detail = detail

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.detail}"


def lint_file(path):
    findings = []
    try:
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as err:
        return [Finding(path, 0, "include-hygiene", f"unreadable file: {err}")]

    waivers = {}  # line_no -> {rule name -> declaring comment's line}
    waiver_decls = []  # (comment line, rule) in file order
    for no, line in enumerate(raw_lines, 1):
        m = WAIVER_RE.search(line)
        if m:
            for rule in (r.strip() for r in m.group(1).split(",")):
                waiver_decls.append((no, rule))
                waivers.setdefault(no, {})[rule] = no
                waivers.setdefault(no + 1, {})[rule] = no

    used_waivers = set()  # (comment line, rule) that suppressed something

    def report(no, rule, detail):
        decl_line = waivers.get(no, {}).get(rule)
        if decl_line is not None:
            used_waivers.add((decl_line, rule))
            return
        findings.append(Finding(path, no, rule, detail))

    pragma_re = re.compile(r"^\s*#\s*pragma\s+once\b")
    is_header = path.endswith(HEADER_EXTS)
    if is_header and not any(pragma_re.match(l) for l in raw_lines):
        report(1, "pragma-once", RULES["pragma-once"])

    norm = path.replace(os.sep, "/")
    in_typed_layer_header = is_header and any(
        f"src/{d}/" in norm for d in TYPED_LAYER_DIRS
    )
    in_svc_layer = "src/svc/" in norm

    in_block = False
    first_project_include = None
    for no, raw in enumerate(raw_lines, 1):
        line, in_block = strip_code(raw, in_block)
        if not line.strip():
            continue
        if BANNED_RANDOM_RE.search(line):
            report(no, "banned-random", RULES["banned-random"])
        if WALL_CLOCK_RE.search(line):
            report(no, "wall-clock", RULES["wall-clock"])
        if IOSTREAM_RE.search(line):
            report(no, "iostream", RULES["iostream"])
        if FLOAT_EQ_RE.search(line):
            report(no, "float-equality", RULES["float-equality"])
        if in_typed_layer_header and RAW_UNIT_DOUBLE_RE.search(line):
            report(no, "raw-unit-double", RULES["raw-unit-double"])
        if in_svc_layer and SOCKET_CALL_RE.search(line):
            report(no, "socket-timeout", RULES["socket-timeout"])
        # Include directives carry their payload inside string quotes, so
        # match them against the raw line, not the literal-stripped one.
        if PARENT_INCLUDE_RE.search(raw):
            report(no, "include-hygiene",
                   'parent-relative #include "../..." is banned')
        m = PROJECT_INCLUDE_RE.search(raw)
        if m and first_project_include is None:
            first_project_include = (no, m.group(1))

    if not is_header and first_project_include is not None:
        stem = os.path.splitext(os.path.basename(path))[0]
        no, inc = first_project_include
        inc_stem = os.path.splitext(os.path.basename(inc))[0]
        own_header_exists = any(
            os.path.exists(os.path.splitext(path)[0] + ext)
            for ext in HEADER_EXTS
        )
        if own_header_exists and inc_stem != stem:
            report(no, "include-hygiene",
                   f"first project include should be the file's own header "
                   f"({stem}.hpp), found \"{inc}\"")

    # A waiver that suppressed nothing is itself a finding. These bypass
    # report(): waiving a stale-waiver would just create another stale
    # waiver.
    for decl_line, rule in waiver_decls:
        if rule not in RULES or rule == "stale-waiver":
            findings.append(Finding(
                path, decl_line, "stale-waiver",
                f"lint:allow({rule}) names no known rule"))
        elif (decl_line, rule) not in used_waivers:
            findings.append(Finding(
                path, decl_line, "stale-waiver",
                f"lint:allow({rule}) suppresses no finding; remove it"))
    return findings


def load_compile_db(explicit_path):
    """Returns the set of absolute TU paths in the compile database.

    With an explicit path, failure to read it is a hard usage error.
    Otherwise a ``build/compile_commands.json`` next to the repo root is
    picked up opportunistically and None is returned when absent (lint
    falls back to pure globbing, e.g. on a fresh checkout).
    """
    path = explicit_path
    if path is None:
        candidate = os.path.join("build", "compile_commands.json")
        if not os.path.exists(candidate):
            return None
        path = candidate
    try:
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as err:
        print(f"imobif_lint: cannot read compile db {path}: {err}",
              file=sys.stderr)
        sys.exit(2)
    tus = set()
    for entry in entries:
        src = entry.get("file", "")
        if not os.path.isabs(src):
            src = os.path.join(entry.get("directory", ""), src)
        tus.add(os.path.realpath(src))
    return tus


def collect_files(paths, compile_db=None):
    """Walks `paths` for lintable sources.

    When a compile DB is given, translation units (non-headers) that the
    build never compiles are skipped; headers are always kept. Files named
    on the command line directly are linted unconditionally.
    """
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if not name.endswith(SOURCE_EXTS):
                        continue
                    full = os.path.join(root, name)
                    if (compile_db is not None
                            and not name.endswith(HEADER_EXTS)
                            and os.path.realpath(full) not in compile_db):
                        continue
                    files.append(full)
        else:
            print(f"imobif_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--rules", action="store_true",
                        help="list rule names and exit")
    parser.add_argument("--compile-db", metavar="PATH", default=None,
                        help="compile_commands.json restricting which TUs "
                             "are linted (default: auto-discover "
                             "build/compile_commands.json)")
    args = parser.parse_args(argv)

    if args.rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0

    paths = args.paths or ["src"]
    findings = []
    files = collect_files(paths, load_compile_db(args.compile_db))
    for path in files:
        findings.extend(lint_file(path))

    for finding in findings:
        print(finding)
    if findings:
        print(f"imobif_lint: {len(findings)} finding(s) in {len(files)} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"imobif_lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
