#!/usr/bin/env python3
"""imobif determinism linter.

Enforces repo-specific invariants that generic static analyzers cannot
express. The simulator's headline claim — bit-reproducible runs from a
single 64-bit seed, for any worker count — only survives if no code path
consults ambient state, so this linter bans the ambient-state escape
hatches outright in library code (``src/``):

  banned-random    rand()/srand()/std::random_device/...: all randomness
                   must flow through util::rng seed derivation.
  wall-clock       time()/clock()/std::chrono::*_clock::now()/...:
                   simulated time comes from sim::Simulator, wall time is
                   measured only by drivers (bench/, tools/).
  iostream         #include <iostream> or std::cout/cerr/clog: library
                   code reports through return values and callbacks, not
                   by printing (contract failures use check.cpp's stderr).
  pragma-once      every header carries #pragma once.
  float-equality   ==/!= against a floating-point literal: energy and
                   position quantities accumulate rounding error; compare
                   with a tolerance or restructure.
  include-hygiene  no parent-relative ("../") includes, and a .cpp file's
                   first project include is its own header.
  raw-unit-double  a raw ``double`` parameter with a unit-suffixed name
                   (``*_j``, ``*_m``, ``*_s``, ``*_bits``) in a public
                   header of the typed layers (src/energy, src/core,
                   src/net): these must take util::Quantity types
                   (util::Joules, util::Meters, ...) so the dimension is
                   checked at compile time (see src/util/units.hpp).
  socket-timeout   a raw socket syscall (recv/read/accept/connect/select
                   family) in the sweep-service layer (src/svc/): every
                   descriptor there must be non-blocking with readiness
                   from poll_wait()'s bounded timeout, so a hung peer can
                   never wedge a daemon. The blessed call sites live in
                   src/svc/socket.cpp behind explicit waivers.

A finding can be waived by putting ``// lint:allow(<rule>)`` on the same
line or the line directly above it; use sparingly and leave a comment
explaining why the exact construct is safe.

Waivers are themselves audited: a ``lint:allow`` that suppresses nothing —
the offending code was refactored away, or the rule name is misspelled —
is reported as a ``stale-waiver`` error, so dead escape hatches cannot
accumulate and silently blanket future regressions.

When a compile database is available (``--compile-db`` or an auto-found
``build/compile_commands.json``), translation units not listed in it are
skipped instead of globbed blindly — dead files cannot then hide findings
or fail the gate. Headers are always linted (they never appear in the DB).

Usage: imobif_lint.py [--rules] [--compile-db PATH] [PATH ...]
       (default path: src)
Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import os
import re
import sys

from lint_common import (HEADER_EXTS, Finding, WaiverSet, collect_files,
                         load_compile_db, strip_code)

RULES = {
    "banned-random": "ambient randomness is banned; use util::Rng",
    "wall-clock": "wall-clock time is banned in library code",
    "iostream": "iostream/global streams are banned in library code",
    "pragma-once": "header must contain #pragma once",
    "float-equality": "==/!= on floating-point quantities",
    "include-hygiene": "include style violation",
    "raw-unit-double": "raw double parameter with unit-suffixed name in a "
                       "typed-layer public header; use util::Quantity",
    "socket-timeout": "raw socket syscall in src/svc/; sockets must be "
                      "non-blocking with poll_wait() timeouts",
    "stale-waiver": "lint:allow() that suppresses no finding (refactored "
                    "code or misspelled rule); remove it",
}

WAIVER_RE = re.compile(r"//\s*lint:allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

BANNED_RANDOM_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:rand|srand|random|drand48|lrand48|mrand48)\s*\("
    r"|std::random_device"
)
WALL_CLOCK_RE = re.compile(
    r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|(?<![\w:])clock\s*\(\s*\)"
    r"|(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now"
    r"|(?<![\w:])(?:gettimeofday|localtime|gmtime|ctime)\s*\("
)
IOSTREAM_RE = re.compile(
    r"#\s*include\s*<iostream>|std::(?:cout|cerr|clog)\b"
)
# A floating literal: 1.0, .5, 2., 1e-9, 1.5e3, optional f suffix. The
# lookarounds keep 'v1.method()' and version strings out.
FLOAT_LIT = r"(?:\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)[fF]?"
# ==/!= token (not <=, >=, ===, or the = of an assignment).
EQ_TOKEN = r"(?:==|!=)(?!=)"
FLOAT_EQ_RE = re.compile(
    rf"{EQ_TOKEN}\s*[-+]?{FLOAT_LIT}(?![\w.])"
    rf"|(?<![\w.]){FLOAT_LIT}\s*{EQ_TOKEN}"
)
PARENT_INCLUDE_RE = re.compile(r'#\s*include\s*"[^"]*\.\./')
PROJECT_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')
# A function parameter (preceded by '(' or ',') declared as a raw double
# whose name carries a unit suffix. Fields and locals start a declaration
# statement instead and are not matched.
RAW_UNIT_DOUBLE_RE = re.compile(
    r"[(,]\s*(?:const\s+)?double\s+\w+_(?:j|m|s|bits)\b"
)
# Directories whose public headers form the typed (units-bearing) layers.
TYPED_LAYER_DIRS = ("energy", "core", "net", "mob", "traffic", "loc")
# A raw socket syscall that can block forever on a peer: banned in the
# sweep-service layer, where every read must sit behind a poll_wait()
# deadline. `_`-suffixed names (read_available, accept_conn, connect_to —
# the wrapper layer itself) do not match.
SOCKET_CALL_RE = re.compile(
    r"(?<![\w.])(?:::\s*)?"
    r"(?:recv|recvfrom|recvmsg|read|accept|accept4|connect|select)\s*\("
)


def lint_file(path):
    findings = []
    try:
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as err:
        return [Finding(path, 0, "include-hygiene", f"unreadable file: {err}")]

    waivers = WaiverSet(raw_lines, WAIVER_RE)

    def report(no, rule, detail):
        if waivers.try_suppress(no, rule):
            return
        findings.append(Finding(path, no, rule, detail))

    pragma_re = re.compile(r"^\s*#\s*pragma\s+once\b")
    is_header = path.endswith(HEADER_EXTS)
    if is_header and not any(pragma_re.match(l) for l in raw_lines):
        report(1, "pragma-once", RULES["pragma-once"])

    norm = path.replace(os.sep, "/")
    in_typed_layer_header = is_header and any(
        f"src/{d}/" in norm for d in TYPED_LAYER_DIRS
    )
    in_svc_layer = "src/svc/" in norm

    in_block = False
    first_project_include = None
    for no, raw in enumerate(raw_lines, 1):
        line, in_block = strip_code(raw, in_block)
        if not line.strip():
            continue
        if BANNED_RANDOM_RE.search(line):
            report(no, "banned-random", RULES["banned-random"])
        if WALL_CLOCK_RE.search(line):
            report(no, "wall-clock", RULES["wall-clock"])
        if IOSTREAM_RE.search(line):
            report(no, "iostream", RULES["iostream"])
        if FLOAT_EQ_RE.search(line):
            report(no, "float-equality", RULES["float-equality"])
        if in_typed_layer_header and RAW_UNIT_DOUBLE_RE.search(line):
            report(no, "raw-unit-double", RULES["raw-unit-double"])
        if in_svc_layer and SOCKET_CALL_RE.search(line):
            report(no, "socket-timeout", RULES["socket-timeout"])
        # Include directives carry their payload inside string quotes, so
        # match them against the raw line, not the literal-stripped one.
        if PARENT_INCLUDE_RE.search(raw):
            report(no, "include-hygiene",
                   'parent-relative #include "../..." is banned')
        m = PROJECT_INCLUDE_RE.search(raw)
        if m and first_project_include is None:
            first_project_include = (no, m.group(1))

    if not is_header and first_project_include is not None:
        stem = os.path.splitext(os.path.basename(path))[0]
        no, inc = first_project_include
        inc_stem = os.path.splitext(os.path.basename(inc))[0]
        own_header_exists = any(
            os.path.exists(os.path.splitext(path)[0] + ext)
            for ext in HEADER_EXTS
        )
        if own_header_exists and inc_stem != stem:
            report(no, "include-hygiene",
                   f"first project include should be the file's own header "
                   f"({stem}.hpp), found \"{inc}\"")

    # A waiver that suppressed nothing is itself a finding. These bypass
    # report(): waiving a stale-waiver would just create another stale
    # waiver.
    for decl_line, detail in waivers.stale(RULES, "lint:allow"):
        findings.append(Finding(path, decl_line, "stale-waiver", detail))
    return findings


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--rules", action="store_true",
                        help="list rule names and exit")
    parser.add_argument("--compile-db", metavar="PATH", default=None,
                        help="compile_commands.json restricting which TUs "
                             "are linted (default: auto-discover "
                             "build/compile_commands.json)")
    args = parser.parse_args(argv)

    if args.rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0

    paths = args.paths or ["src"]
    findings = []
    files = collect_files(paths, load_compile_db(args.compile_db,
                                                 "imobif_lint"),
                          "imobif_lint")
    for path in files:
        findings.extend(lint_file(path))

    for finding in findings:
        print(finding)
    if findings:
        print(f"imobif_lint: {len(findings)} finding(s) in {len(files)} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"imobif_lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
