#!/usr/bin/env python3
"""Shared helpers for the imobif static analyzers.

Three tools build on this module — imobif_lint.py (token rules),
imobif_astlint.py (scope/type rules), and imobif_snaplint.py
(checkpoint-exhaustiveness + architecture layering). Each tool owns its
rule set and waiver marker; everything below is the common machinery:

  strip_code        comment/string-literal stripping, line by line
  Finding           a (path, line, rule, detail) record
  WaiverSet         per-file waiver parsing with used/stale accounting
  load_compile_db   compile_commands.json discovery (dict path -> entry)
  collect_files     source walking restricted to compiled TUs
  split_top_level / match_angle_block
                    nesting-aware text splitting for C++ declarators
  Scope / iter_statements
                    the brace/semicolon statement scanner that tracks
                    namespace/type/function/block scopes well enough to
                    attribute declarations without a real parser

The scanner is shared verbatim between the AST linter's syntax engine and
snaplint's field-table builder so the two tools can never disagree about
what a class member is.
"""

import json
import os
import re
import sys

HEADER_EXTS = (".hpp", ".h")
SOURCE_EXTS = (".cpp", ".cc", ".cxx") + HEADER_EXTS

# A line that is nothing but an access label; such lines do not start a
# statement for line-accounting purposes (see iter_statements).
ACCESS_LABEL_LINE_RE = re.compile(r"^(?:public|private|protected)\s*:$")

CONTROL_KEYWORDS = ("for", "if", "while", "switch", "catch", "do", "else",
                    "try")
TYPE_NAME_RE = re.compile(r"\b(?:class|struct|union)\s+(\w+)")


def strip_code(line, in_block_comment):
    """Removes comments and string/char literal contents from a line.

    Returns (stripped_line, in_block_comment). Keeps the line's length
    roughly intact where it matters (matching is content-based).
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            break  # rest of line is a comment
        if c == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


def norm_path(path):
    return path.replace(os.sep, "/")


class Finding:
    def __init__(self, path, line_no, rule, detail):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.detail = detail

    def key(self):
        return (self.path, self.line_no, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.detail}"


class WaiverSet:
    """Waiver comments of one file, with used/stale accounting.

    A waiver on line N suppresses a matching finding on line N (same line)
    or N+1 (the line below the comment). Every suppression is recorded so
    stale waivers — ones that suppressed nothing, because the offending
    code was refactored away or the rule name is misspelled — can be
    reported as findings themselves.
    """

    def __init__(self, raw_lines, marker_re):
        self.decls = []  # (comment line, rule) in file order
        self.by_line = {}  # line_no -> {rule -> declaring comment line}
        for no, line in enumerate(raw_lines, 1):
            m = marker_re.search(line)
            if m:
                for rule in (r.strip() for r in m.group(1).split(",")):
                    self.decls.append((no, rule))
                    self.by_line.setdefault(no, {})[rule] = no
                    self.by_line.setdefault(no + 1, {})[rule] = no
        self.used = set()  # (comment line, rule) that suppressed something

    def try_suppress(self, line_no, rule):
        """True (and marks the waiver used) when a waiver covers this."""
        decl_line = self.by_line.get(line_no, {}).get(rule)
        if decl_line is None:
            return False
        self.used.add((decl_line, rule))
        return True

    def stale(self, known_rules, marker):
        """Yields Finding-args tuples for unused/misspelled waivers."""
        for decl_line, rule in self.decls:
            if rule not in known_rules or rule == "stale-waiver":
                yield (decl_line,
                       f"{marker}({rule}) names no known rule")
            elif (decl_line, rule) not in self.used:
                yield (decl_line,
                       f"{marker}({rule}) suppresses no finding; remove it")


def load_compile_db(explicit_path, tool_name):
    """Returns {realpath -> entry} for the compile database, or None.

    With an explicit path, failure to read it is a hard usage error.
    ``--compile-db none`` disables the restriction (fixture/self-test
    runs lint every file found). Otherwise ``build/compile_commands.json``
    is picked up opportunistically and None is returned when absent.
    """
    if explicit_path == "none":
        return None
    path = explicit_path
    if path is None:
        candidate = os.path.join("build", "compile_commands.json")
        if not os.path.exists(candidate):
            return None
        path = candidate
    try:
        with open(path, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as err:
        print(f"{tool_name}: cannot read compile db {path}: {err}",
              file=sys.stderr)
        sys.exit(2)
    db = {}
    for entry in entries:
        src = entry.get("file", "")
        if not os.path.isabs(src):
            src = os.path.join(entry.get("directory", ""), src)
        db[os.path.realpath(src)] = entry
    return db


def collect_files(paths, compile_db, tool_name):
    """Walks `paths` for lintable sources.

    When a compile DB is given, translation units (non-headers) that the
    build never compiles are skipped; headers are always kept. Files named
    on the command line directly are linted unconditionally.
    """
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if not name.endswith(SOURCE_EXTS):
                        continue
                    full = os.path.join(root, name)
                    if (compile_db is not None
                            and not name.endswith(HEADER_EXTS)
                            and os.path.realpath(full) not in compile_db):
                        continue
                    files.append(full)
        else:
            print(f"{tool_name}: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def split_top_level(text, sep=","):
    """Splits `text` at top-level `sep` (ignoring <>, (), [] nesting)."""
    parts, depth, start = [], 0, 0
    i = 0
    while i < len(text):
        c = text[i]
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        elif c == sep and depth == 0:
            parts.append(text[start:i])
            start = i + 1
        i += 1
    parts.append(text[start:])
    return parts


def match_angle_block(text, open_pos):
    """Returns the index one past the '>' matching the '<' at open_pos."""
    depth = 0
    i = open_pos
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


class Scope:
    def __init__(self, kind, name=None, class_name=None):
        self.kind = kind            # 'ns' | 'type' | 'fn' | 'block' | 'expr'
        self.name = name            # type name for 'type' scopes
        self.class_name = class_name  # enclosing class for 'fn' scopes
        self.locals = {}            # name -> metadata ('fn' scopes)


def classify_scope(opener, stack, param_collector=None):
    """Classifies the scope a brace opener introduces.

    `param_collector(scope, param_text)` lets the caller record function
    parameters as locals of the new 'fn' scope (the AST linter registers
    container-typed parameters there).
    """
    text = opener.strip()
    enclosing_class = None
    for s in reversed(stack):
        if s.kind == "type" and s.name:
            enclosing_class = s.name
            break
        if s.kind == "fn" and s.class_name:
            enclosing_class = s.class_name
            break
    first_word = re.match(r"[A-Za-z_]\w*", text)
    first = first_word.group(0) if first_word else ""
    if first in CONTROL_KEYWORDS:
        return Scope("block")
    if re.search(r"\bnamespace\b", text) or text.startswith("extern"):
        return Scope("ns")
    if re.search(r"\benum\b", text):
        return Scope("expr")
    if re.search(r"\)\s*(const|noexcept|override|final|mutable|"
                 r"->\s*[\w:<>,*&\s]+)?\s*$", text) or text.endswith(")"):
        owners = re.findall(r"(\w+)\s*::\s*~?\w+\s*\(", text)
        cls = owners[-1] if owners else enclosing_class
        scope = Scope("fn", class_name=cls)
        paren = text.find("(")
        if paren != -1 and param_collector is not None:
            param_collector(scope, text[paren:])
        return scope
    m = TYPE_NAME_RE.search(text)
    if m:
        return Scope("type", name=m.group(1))
    innermost = stack[-1].kind if stack else "ns"
    if innermost in ("fn", "block"):
        return Scope("expr" if text else "block")
    if "=" in text:
        return Scope("expr")
    return Scope("block")


def iter_statements(raw_lines, param_collector=None):
    """Yields (scope_stack, statement_text, start_line) for every
    semicolon-terminated statement and every brace opener."""
    stack = []
    buf = []
    buf_line = [1]
    in_block = False
    paren_depth = 0
    in_pp = False  # inside a (possibly continued) preprocessor directive

    def flush():
        text = "".join(buf)
        line = buf_line[0]
        buf.clear()
        return text, line

    for no, raw in enumerate(raw_lines, 1):
        line, in_block = strip_code(raw, in_block)
        stripped = line.strip()
        if in_pp:
            in_pp = raw.rstrip().endswith("\\")
            continue
        if stripped.startswith("#"):
            in_pp = raw.rstrip().endswith("\\")
            continue
        if not buf:
            # A statement starts at its first line of real code: blank and
            # comment-only lines (stripped to whitespace above) and bare
            # access labels never open the buffer, so the reported start
            # line is the declaration itself — which is what annotation
            # and waiver binding key on.
            if not stripped or ACCESS_LABEL_LINE_RE.match(stripped):
                continue
            buf_line[0] = no
        for c in line:
            if c == "(":
                paren_depth += 1
            elif c == ")":
                paren_depth = max(0, paren_depth - 1)
            if c == "{" and paren_depth == 0:
                opener, line_no = flush()
                yield list(stack), opener, line_no
                stack.append(classify_scope(opener, stack, param_collector))
                buf_line[0] = no
            elif c == "}" and paren_depth == 0:
                if buf and "".join(buf).strip():
                    stmt, line_no = flush()
                    yield list(stack), stmt, line_no
                else:
                    buf.clear()
                if stack:
                    stack.pop()
                buf_line[0] = no
            elif c == ";" and paren_depth == 0:
                stmt, line_no = flush()
                if stmt.strip():
                    yield list(stack), stmt, line_no
                buf_line[0] = no
            else:
                buf.append(c)
        if buf:
            buf.append("\n")
    if buf and "".join(buf).strip():
        stmt, line_no = flush()
        yield list(stack), stmt, line_no
