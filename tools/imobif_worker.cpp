// Sweep-farm worker: connects to an imobif_sweepd coordinator and
// executes assigned work units through the checkpoint-aware sweep
// runtime. Point --checkpoint-dir of every worker on one host at the same
// directory so a unit reassigned from a dead worker resumes its
// per-instance results instead of recomputing them.
// See DESIGN.md §11 and README.md "Distributed sweeps".
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "svc/frame.hpp"
#include "svc/worker.hpp"
#include "util/args.hpp"

namespace {

void print_usage(const std::string& program) {
  std::cout
      << "usage: " << program
      << " --connect HOST:PORT [--name NAME] [--checkpoint-dir D]\n"
         "       [--checkpoint-every-s T] [--heartbeat-every-ms T]\n"
         "       [--quiet]\n"
         "  --connect    coordinator endpoint, e.g. 127.0.0.1:7477\n"
         "  --name       worker label in coordinator logs (default\n"
         "               \"worker\")\n"
         "  --checkpoint-dir  persist per-instance results/checkpoints\n"
         "               here; shared across workers, it is what makes\n"
         "               unit retry resume instead of recompute\n"
         "  --checkpoint-every-s  checkpoint cadence in simulated seconds\n"
         "               (default 30)\n"
         "  --heartbeat-every-ms  keepalive cadence while a unit executes\n"
         "               (default 5000; keep well under the coordinator's\n"
         "               --heartbeat-timeout-ms)\n"
         "  --crash-after-instances N  TEST HOOK: die (exit 1) after N\n"
         "               instances, before reporting the Nth\n"
         "  --quiet      suppress log lines\n"
         "Runs units until the coordinator shuts down or drops the\n"
         "connection.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace imobif;
  const util::Args args(argc, argv);
  if (args.has("help") || !args.has("connect")) {
    print_usage(args.program());
    return args.has("help") ? 0 : 2;
  }

  try {
    const svc::Endpoint endpoint =
        svc::parse_endpoint(args.get_string("connect", ""));
    svc::WorkerOptions options;
    options.host = endpoint.host;
    options.port = endpoint.port;
    options.name = args.get_string("name", "worker");
    options.checkpoint.dir = args.get_string("checkpoint-dir", "");
    options.checkpoint.every_sim_s = args.get_double(
        "checkpoint-every-s", options.checkpoint.every_sim_s);
    options.crash_after_instances = static_cast<std::uint64_t>(
        args.get_int("crash-after-instances", 0));
    options.heartbeat_interval_ms =
        args.get_int("heartbeat-every-ms", options.heartbeat_interval_ms);
    if (!args.get_bool("quiet", false)) {
      const std::string tag = "[" + options.name + "] ";
      options.log = [tag](const std::string& message) {
        std::cout << tag << message << "\n" << std::flush;
      };
    }
    return svc::run_worker(options);
  } catch (const std::exception& e) {
    std::cerr << "imobif_worker: " << e.what() << "\n";
    return 1;
  }
}
