#!/usr/bin/env python3
"""imobif checkpoint-exhaustiveness + architecture-layering linter.

The repo's bit-identical checkpoint/resume guarantee (snap codec v2, the
sweep farm's crash retry, replay/bisect) rests on one invariant: every
mutable field of every checkpointed class is either persisted by the
snapshot codec or provably rebuilt after restore. Until now that was
enforced by hand audit; a missed field silently corrupts resumed sweeps
instead of failing a gate. This tool machine-checks it, the same way
imobif_lint machine-checks units and imobif_astlint machine-checks lock
discipline:

  unpersisted-field  a mutable data member of a class declared in a
                     checkpointed-layer header (src/{sim,net,core,energy,
                     exp,mob,traffic,snap}) that the snapshot codec
                     (every .cpp under src/snap/) neither encodes nor
                     restores, and that carries no annotation. Either
                     persist it or annotate why not:
                       // snap:derived(<rebuilder>)   rebuilt after
                                      restore by the named member
                                      function (e.g. Node::
                                      sync_flow_aggregate)
                       // snap:transient(<reason>)    does not need to
                                      survive a restore (caches, wiring,
                                      scratch, config rebuilt from
                                      params)
                     An annotation binds to the field declared on its
                     line or the line below; placed on a class/struct
                     opener it covers every otherwise-unannotated field
                     of that class.
  bad-rebuilder      snap:derived() names no known member function. An
                     unqualified name must be a member of the field's own
                     class; a qualified Class::fn must be a member of
                     Class.
  stale-annotation   a snap: annotation that binds to no field or class,
                     sits in a non-header file, or marks a field the
                     codec demonstrably persists through a typed receiver
                     (the annotation lies); remove it.
  layer-violation    an #include that goes against the committed
                     architecture DAG (tools/layers.json): a layer may
                     include itself and its (transitive) dependencies,
                     nothing else. Cycles in layers.json itself are a
                     hard configuration error (exit 2).
  unknown-layer      a file under a src/ directory that layers.json does
                     not name — new layers must be registered in the DAG
                     before code lands there.
  stale-waiver       snaplint:allow() that suppresses no finding
                     (refactored code or misspelled rule); remove it.

How the persisted set is computed: the syntax engine scans every .cpp
under src/snap/ (encode/restore/state-hash walkers and the codec around
them) and records member accesses. A receiver with a known declared type
(function parameter, typed local, range-for head, std::get_if<T>)
yields *typed* evidence (Class, member); every other access yields
*untyped* evidence (member name only). A field ``foo_`` counts as
persisted when the codec touches ``foo_``, ``foo`` (the accessor
convention), or ``set_foo``/``restore_foo`` on its class (typed) or on
any receiver (untyped fallback — deliberate imprecision that keeps the
scanner honest about chained calls like run.network().medium()). The
stale-annotation redundancy check uses typed evidence only, so the
untyped fallback can never call a truthful annotation a lie.

Two engines contribute evidence (same architecture as imobif_astlint):

  syntax  always available: field tables, member-function tables and
          access evidence from the shared statement scanner.
  clang   libclang (python3 clang.cindex) over compile_commands.json
          adds member-access evidence and method names the scanner
          cannot see (templates, auto, aliases). The clang engine only
          ever *widens* the persisted set and the rebuilder table, so a
          clean syntax-only run (the local container) implies a clean
          syntax+clang run (CI) — the engines cannot disagree in the
          failing direction.

A finding can be waived with ``// snaplint:allow(<rule>)`` on the same
line or the line directly above; waivers are audited for staleness like
the other linters'.

Usage: imobif_snaplint.py [--rules] [--frontend auto|syntax|clang|both]
                          [--compile-db PATH] [--layers PATH]
                          [--report PATH] [PATH ...]
       (default path: src; default layers: tools/layers.json)
Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

import argparse
import json
import os
import re
import sys

from lint_common import (HEADER_EXTS, Finding, WaiverSet, collect_files,
                         iter_statements, load_compile_db,
                         match_angle_block, norm_path, split_top_level,
                         strip_code)

RULES = {
    "unpersisted-field": "mutable field of a checkpointed class that "
                         "src/snap neither persists nor annotates",
    "bad-rebuilder": "snap:derived() names no known member function",
    "stale-annotation": "snap: annotation that binds to nothing or marks "
                        "a field the codec persists; remove it",
    "layer-violation": "#include against the architecture DAG "
                       "(tools/layers.json)",
    "unknown-layer": "src/ directory not registered in tools/layers.json",
    "stale-waiver": "snaplint:allow() that suppresses no finding "
                    "(refactored code or misspelled rule); remove it",
}

CHECKPOINT_LAYERS = ("sim", "net", "core", "energy", "exp", "mob",
                     "traffic", "snap")

WAIVER_RE = re.compile(
    r"//\s*snaplint:allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")
DERIVED_RE = re.compile(r"//\s*snap:derived\(\s*([\w:~]+)\s*\)")
TRANSIENT_RE = re.compile(r"//\s*snap:transient\(([^)]*)\)")

PROJECT_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')

# Leading specifiers that may precede a member declaration without
# changing whether it is a field.
SPECIFIER_RE = re.compile(r"^(?:virtual|explicit|inline|mutable)\s+")
ACCESS_LABEL_RE = re.compile(r"^(?:(?:public|private|protected)\s*:\s*)+")
# Statements in a class body that are never field declarations.
MEMBER_EXCLUDE_FIRST = {
    "using", "typedef", "friend", "template", "static_assert", "struct",
    "class", "union", "enum", "namespace", "operator", "return", "public",
    "private", "protected", "if", "else", "for", "while", "switch", "case",
    "default",
}


def layer_of(path):
    """The src/ layer directory a path belongs to, or None."""
    norm = norm_path(path)
    idx = norm.rfind("src/")
    if idx == -1:
        return None
    rest = norm[idx + len("src/"):]
    if "/" not in rest:
        return None  # a file directly under src/ has no layer
    return rest.split("/", 1)[0]


def in_checkpoint_layer(path):
    return layer_of(path) in CHECKPOINT_LAYERS


def is_evidence_file(path):
    norm = norm_path(path)
    return "src/snap/" in norm and not norm.endswith(HEADER_EXTS)


def collapse_templates(text):
    """Replaces every matched <...> block with '<>' so parentheses inside
    template arguments (std::function<void(int)>) cannot masquerade as a
    function declarator."""
    out = []
    i = 0
    while i < len(text):
        c = text[i]
        if c == "<":
            close = match_angle_block(text, i)
            # An unmatched '<' is a comparison, not a template block.
            if close != -1:
                out.append("<>")
                i = close
                continue
        out.append(c)
        i += 1
    return "".join(out)


def base_names(member):
    """The evidence names a member access contributes: the spelling
    itself plus the field it reaches through the accessor/setter/restore
    naming conventions (foo_ <-> foo() / set_foo() / restore_foo())."""
    names = {member}
    for prefix in ("restore_", "set_"):
        if member.startswith(prefix) and len(member) > len(prefix):
            names.add(member[len(prefix):])
    return names


def field_lookup_names(field):
    """The evidence names under which a field counts as persisted."""
    names = {field}
    if field.endswith("_"):
        names.add(field[:-1])
    return names


class Annotation:
    def __init__(self, path, line, kind, arg):
        self.path = path
        self.line = line
        self.kind = kind  # 'derived' | 'transient'
        self.arg = arg
        self.used = False
        self.class_bound = False  # bound to a class opener, not a field


class Tables:
    """Per-class field and member-function tables plus annotations,
    collected from the checkpointed layers by the syntax engine."""

    def __init__(self):
        self.fields = {}       # class -> {field -> (path, line)}
        self.methods = {}      # class -> set(method names)
        self.class_ann = {}    # class -> Annotation (class-level)
        self.field_ann = {}    # (class, field) -> Annotation
        self.annotations = []  # every Annotation, for stale accounting

    # -- annotation scanning ------------------------------------------

    @staticmethod
    def scan_annotations(path, raw_lines):
        anns = {}
        for no, line in enumerate(raw_lines, 1):
            m = DERIVED_RE.search(line)
            if m:
                anns[no] = Annotation(path, no, "derived", m.group(1))
                continue
            m = TRANSIENT_RE.search(line)
            if m:
                anns[no] = Annotation(path, no, "transient",
                                      m.group(1).strip())
        return anns

    def _annotation_for(self, anns, decl_line, field=False):
        """The annotation bound to a declaration starting at decl_line:
        same line (trailing comment) or the line above. An annotation
        already claimed by a class opener never re-binds to the first
        field below it."""
        for line in (decl_line, decl_line - 1):
            ann = anns.get(line)
            if ann is not None and not (field and ann.class_bound):
                return ann
        return None

    # -- collection ---------------------------------------------------

    def collect_header(self, path, raw_lines):
        anns = self.scan_annotations(path, raw_lines)
        self.annotations.extend(anns.values())
        collect_fields = in_checkpoint_layer(path)
        for scope_stack, stmt, line in iter_statements(raw_lines):
            in_fn = any(s.kind in ("fn", "block", "expr")
                        for s in scope_stack)
            type_scope = None
            if not in_fn:
                for s in reversed(scope_stack):
                    if s.kind == "type" and s.name:
                        type_scope = s
                        break
            text = stmt.strip()
            # The opener of a class/struct binds class-level annotations.
            m = re.search(r"\b(?:class|struct)\s+(\w+)", text)
            if m and not in_fn:
                ann = self._annotation_for(anns, line)
                if ann is not None:
                    self.class_ann[m.group(1)] = ann
                    ann.used = True
                    ann.class_bound = True
            if type_scope is None:
                continue
            self._collect_member(path, type_scope.name, text, line, anns,
                                 collect_fields)

    def collect_source_methods(self, path, raw_lines):
        """Out-of-class definitions (void Node::sync_flow_aggregate()
        {...}) widen the member-function table."""
        for _stack, stmt, _line in iter_statements(raw_lines):
            flat = collapse_templates(stmt)
            for m in re.finditer(r"(\w+)\s*::\s*~?(\w+)\s*\(", flat):
                self.methods.setdefault(m.group(1), set()).add(m.group(2))

    def _collect_member(self, path, cls, text, line, anns, collect_fields):
        text = ACCESS_LABEL_RE.sub("", text).strip()
        if not text or text.startswith("#"):
            return
        first = re.match(r"[A-Za-z_]\w*", text)
        if not first or first.group(0) in MEMBER_EXCLUDE_FIRST:
            return
        while SPECIFIER_RE.match(text):
            text = SPECIFIER_RE.sub("", text, count=1)
        is_static = bool(re.match(r"static\b", text))
        flat = collapse_templates(text)
        # Thread-safety attribute macros decorate declarations but are
        # not declarators.
        flat = re.sub(r"\bIMOBIF_\w+\s*\([^()]*\)", "", flat)
        if "(" in flat:
            m = re.search(r"([A-Za-z_]\w*)\s*\(", flat)
            if m:
                self.methods.setdefault(cls, set()).add(m.group(1))
            return
        if is_static or not collect_fields:
            return
        if re.match(r"(?:const|constexpr|constinit)\b", flat):
            return
        parts = split_top_level(flat, ",")
        names = []
        head = parts[0].split("=")[0]
        head = re.sub(r"\[[^\]]*\]", "", head)
        if "&" in head:
            return  # reference members are bound at construction
        idents = re.findall(r"[A-Za-z_]\w*", head)
        if len(idents) < 2:
            return  # a lone type mention, not a declarator
        names.append(idents[-1])
        for part in parts[1:]:
            m = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", part)
            if m:
                names.append(m.group(1))
        ann = self._annotation_for(anns, line, field=True)
        for name in names:
            self.fields.setdefault(cls, {})[name] = (path, line)
            if ann is not None:
                self.field_ann[(cls, name)] = ann
                ann.used = True


# ---------------------------------------------------------------------------
# persisted-set evidence: syntax engine
# ---------------------------------------------------------------------------

TYPED_PARAM_RE = re.compile(
    r"(?:const\s+)?((?:\w+::)*\w+)\s*(?:<[^;{}]*?>)?\s*[&*]*\s+(\w+)\s*$")
TYPED_LOCAL_RE = re.compile(
    r"(?:^|[({;]\s*)(?:const\s+)?((?:\w+::)+\w+|[A-Z]\w*)\s*[&*]*\s+"
    r"(\w+)\s*(?:=|;|$|\))")
GET_IF_RE = re.compile(
    r"[&*]*\s*(\w+)\s*=\s*std\s*::\s*get_if\s*<\s*((?:\w+::)*\w+)\s*>")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?((?:\w+::)*\w+)\s*(?:<[^;:]*?>)?"
    r"\s*[&*]*\s+(\w+)\s*:")
MEMBER_ACCESS_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*([A-Za-z_]\w*)")
ANY_ACCESS_RE = re.compile(r"(?:\.|->)\s*([A-Za-z_]\w*)")


def _last_component(qualified):
    return qualified.rsplit("::", 1)[-1]


def _register_typed_params(scope, params_text):
    for param in split_top_level(params_text.strip().strip("()"), ","):
        m = TYPED_PARAM_RE.search(param.strip())
        if m:
            scope.locals[m.group(2)] = _last_component(m.group(1))


class Evidence:
    def __init__(self):
        self.typed = set()    # (class, evidence name)
        self.untyped = set()  # evidence name

    def add_typed(self, cls, member):
        for name in base_names(member):
            self.typed.add((cls, name))

    def add_untyped(self, member):
        for name in base_names(member):
            self.untyped.add(name)


def collect_evidence_syntax(evidence, path, raw_lines):
    for scope_stack, stmt, _line in iter_statements(
            raw_lines, _register_typed_params):
        fn_scopes = [s for s in scope_stack if s.kind == "fn"]
        innermost_fn = fn_scopes[-1] if fn_scopes else None

        if innermost_fn is not None:
            for m in GET_IF_RE.finditer(stmt):
                innermost_fn.locals[m.group(1)] = \
                    _last_component(m.group(2))
            for m in RANGE_FOR_RE.finditer(stmt):
                innermost_fn.locals[m.group(2)] = \
                    _last_component(m.group(1))
            for m in TYPED_LOCAL_RE.finditer(stmt):
                cls = _last_component(m.group(1))
                if cls not in ("return", "auto", "const"):
                    innermost_fn.locals.setdefault(m.group(2), cls)

        def resolve(name):
            for s in reversed(fn_scopes):
                if name in s.locals:
                    return s.locals[name]
            return None

        for m in MEMBER_ACCESS_RE.finditer(stmt):
            receiver, member = m.group(1), m.group(2)
            cls = resolve(receiver)
            if cls is not None:
                evidence.add_typed(cls, member)
        for m in ANY_ACCESS_RE.finditer(stmt):
            evidence.add_untyped(m.group(1))


# ---------------------------------------------------------------------------
# persisted-set evidence: clang engine (optional, widening only)
# ---------------------------------------------------------------------------

def collect_evidence_clang(cindex, engine_index, path, cargs, evidence,
                           tables, problems):
    """Adds member-access evidence and method names from a parsed TU.
    Strictly widening: it can only mark more fields persisted and accept
    more rebuilders, never introduce a finding the syntax engine missed."""
    ck = cindex.CursorKind
    try:
        tu = engine_index.parse(path, args=cargs)
    except cindex.TranslationUnitLoadError as err:
        problems.append(f"{path}: {err}")
        return
    errors = [d for d in tu.diagnostics if d.severity >= 3]
    if errors:
        problems.append(f"{path}: {len(errors)} parse error(s), first: "
                        f"{errors[0].spelling}")

    def class_of(type_obj):
        spelling = type_obj.get_canonical().spelling or ""
        spelling = spelling.replace("const ", "").strip(" &*")
        spelling = spelling.split("<", 1)[0]
        return _last_component(spelling) if spelling else None

    def walk(cursor):
        for child in cursor.get_children():
            try:
                if child.kind == ck.MEMBER_REF_EXPR and child.spelling:
                    kids = list(child.get_children())
                    cls = class_of(kids[0].type) if kids else None
                    if cls:
                        evidence.add_typed(cls, child.spelling)
                    evidence.add_untyped(child.spelling)
                elif child.kind == ck.CXX_METHOD and child.spelling:
                    parent = child.semantic_parent
                    if parent is not None and parent.spelling:
                        tables.methods.setdefault(
                            parent.spelling, set()).add(child.spelling)
            except Exception:
                pass
            walk(child)

    walk(tu.cursor)


LIBCLANG_CANDIDATE_GLOBS = (
    "/usr/lib/llvm-*/lib/libclang.so*",
    "/usr/lib/llvm-*/lib/libclang-*.so*",
    "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
    "/usr/lib/x86_64-linux-gnu/libclang.so*",
)


def load_cindex():
    """Returns a configured clang.cindex module, or None with a reason."""
    try:
        from clang import cindex
    except ImportError as err:
        return None, f"python clang bindings unavailable ({err})"
    import glob as globmod
    try:
        cindex.Index.create()
        return cindex, None
    except Exception:
        pass
    for pattern in LIBCLANG_CANDIDATE_GLOBS:
        for lib in sorted(globmod.glob(pattern), reverse=True):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(lib)
                cindex.Index.create()
                return cindex, None
            except Exception:
                continue
    return None, "no usable libclang shared library found"


def compile_args_for(entry):
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = entry.get("command", "").split()
    args, skip = [], False
    for token in argv[1:]:
        if skip:
            skip = False
            continue
        if token == "-c":
            continue
        if token == "-o":
            skip = True
            continue
        if token.endswith((".cpp", ".cc", ".cxx") + HEADER_EXTS):
            continue
        args.append(token)
    return args


# ---------------------------------------------------------------------------
# architecture layering
# ---------------------------------------------------------------------------

def load_layers(path):
    """Loads the layer DAG; returns {layer -> transitive dependency set}.
    A malformed file or a cycle is a hard configuration error (exit 2)."""
    try:
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
        direct = payload["layers"]
    except (OSError, ValueError, KeyError) as err:
        print(f"imobif_snaplint: cannot read layer DAG {path}: {err}",
              file=sys.stderr)
        sys.exit(2)
    for layer, deps in direct.items():
        for dep in deps:
            if dep not in direct:
                print(f"imobif_snaplint: layers.json: layer '{layer}' "
                      f"depends on unknown layer '{dep}'", file=sys.stderr)
                sys.exit(2)
    closure = {}

    def visit(layer, trail):
        if layer in closure:
            return closure[layer]
        if layer in trail:
            cycle = " -> ".join(list(trail) + [layer])
            print(f"imobif_snaplint: layers.json: dependency cycle: "
                  f"{cycle}", file=sys.stderr)
            sys.exit(2)
        trail.append(layer)
        deps = set()
        for dep in direct[layer]:
            deps.add(dep)
            deps |= visit(dep, trail)
        trail.pop()
        closure[layer] = deps
        return deps

    for layer in direct:
        visit(layer, [])
    return closure


def check_layering(path, raw_lines, closure, report):
    layer = layer_of(path)
    if layer is None:
        return
    if layer not in closure:
        report(path, 1, "unknown-layer",
               f"src/{layer}/ is not registered in tools/layers.json; "
               "add it to the DAG before code lands there")
        return
    allowed = closure[layer]
    in_block = False
    for no, raw in enumerate(raw_lines, 1):
        _stripped, in_block = strip_code(raw, in_block)
        m = PROJECT_INCLUDE_RE.search(raw)
        if not m or "/" not in m.group(1):
            continue
        target = m.group(1).split("/", 1)[0]
        if target not in closure:
            continue  # not a layer-shaped include (fixtures, externals)
        if target == layer or target in allowed:
            continue
        report(path, no, "layer-violation",
               f"src/{layer}/ must not include \"{m.group(1)}\": "
               f"'{target}' is not among {layer}'s dependencies in "
               "tools/layers.json")


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--rules", action="store_true",
                        help="list rule names and exit")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "syntax", "clang", "both"),
                        help="evidence engine(s); auto = both when "
                             "libclang is available, else syntax")
    parser.add_argument("--compile-db", metavar="PATH", default=None,
                        help="compile_commands.json (default: "
                             "auto-discover build/compile_commands.json; "
                             "'none' lints every file found)")
    parser.add_argument("--layers", metavar="PATH", default=None,
                        help="layer DAG JSON (default: layers.json next "
                             "to this script)")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="also write a JSON report (CI artifact)")
    args = parser.parse_args(argv)

    if args.rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0

    layers_path = args.layers or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "layers.json")
    closure = load_layers(layers_path)

    paths = args.paths or ["src"]
    compile_db = load_compile_db(args.compile_db, "imobif_snaplint")
    files = collect_files(paths, compile_db, "imobif_snaplint")

    want_clang = args.frontend in ("auto", "clang", "both")
    cindex = None
    clang_note = None
    if want_clang:
        cindex, clang_note = load_cindex()
        if cindex is None:
            if args.frontend == "clang":
                print(f"imobif_snaplint: --frontend clang requested but "
                      f"{clang_note}", file=sys.stderr)
                return 2
            note = ("warning" if args.frontend == "both" else "note")
            print(f"imobif_snaplint: {note}: {clang_note}; using the "
                  "syntax engine only", file=sys.stderr)

    file_lines = {}
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                file_lines[path] = f.read().splitlines()
        except (OSError, UnicodeDecodeError) as err:
            print(f"imobif_snaplint: unreadable {path}: {err}",
                  file=sys.stderr)
            return 2

    waivers = {}
    suppressed = []
    findings = {}

    def waiver_set(rel):
        if rel not in waivers:
            try:
                with open(rel, encoding="utf-8") as f:
                    raw = f.read().splitlines()
            except OSError:
                raw = []
            waivers[rel] = WaiverSet(raw, WAIVER_RE)
        return waivers[rel]

    def report(path, line, rule, detail):
        rel = os.path.relpath(path) if os.path.isabs(path) else path
        if waiver_set(rel).try_suppress(line, rule):
            suppressed.append((rel, line, rule))
            return
        f = Finding(rel, line, rule, detail)
        findings[f.key()] = f

    # ---- tables + evidence (syntax engine: always) ----
    tables = Tables()
    evidence = Evidence()
    evidence_files = [p for p in files if is_evidence_file(p)]
    for path in files:
        if path.endswith(HEADER_EXTS):
            tables.collect_header(path, file_lines[path])
        elif in_checkpoint_layer(path):
            tables.collect_source_methods(path, file_lines[path])
            # snap: annotations belong on header field declarations;
            # flag any that drifted into a .cpp via the stale audit.
            tables.annotations.extend(
                Tables.scan_annotations(path, file_lines[path]).values())
    for path in evidence_files:
        collect_evidence_syntax(evidence, path, file_lines[path])

    # ---- evidence (clang engine: optional, widening only) ----
    clang_problems = []
    if cindex is not None:
        engine_index = cindex.Index.create()
        for path in evidence_files:
            entry = (compile_db or {}).get(os.path.realpath(path))
            if entry is not None:
                cargs = compile_args_for(entry)
            else:
                cargs = ["-std=c++20", "-I" + os.path.join(os.path.dirname(
                    os.path.dirname(os.path.abspath(__file__))), "src")]
            collect_evidence_clang(cindex, engine_index, path, cargs,
                                   evidence, tables, clang_problems)
        for problem in clang_problems:
            print(f"imobif_snaplint: warning: clang engine: {problem}",
                  file=sys.stderr)

    # ---- the exhaustiveness check ----
    def typed_persisted(cls, field):
        return any((cls, name) in evidence.typed
                   for name in field_lookup_names(field))

    def persisted(cls, field):
        return typed_persisted(cls, field) or any(
            name in evidence.untyped for name in field_lookup_names(field))

    have_evidence = bool(evidence_files)
    for cls in sorted(tables.fields):
        for field, (path, line) in sorted(tables.fields[cls].items()):
            ann = tables.field_ann.get((cls, field))
            own_ann = ann is not None
            if ann is None:
                ann = tables.class_ann.get(cls)
            if ann is not None:
                ann.used = True
                if ann.kind == "derived":
                    rebuilder = ann.arg
                    if "::" in rebuilder:
                        owner, fn = rebuilder.rsplit("::", 1)
                    else:
                        owner, fn = cls, rebuilder
                    if fn not in tables.methods.get(owner, set()):
                        report(ann.path, ann.line, "bad-rebuilder",
                               f"snap:derived({rebuilder}) on "
                               f"{cls}::{field}: '{owner}' has no member "
                               f"function '{fn}'")
                elif not ann.arg:
                    report(ann.path, ann.line, "stale-annotation",
                           f"snap:transient on {cls}::{field} needs a "
                           "non-empty reason")
                # An annotation on a field the codec demonstrably touches
                # through a typed receiver is a lie. Typed evidence only:
                # the untyped fallback may hit a same-named member of a
                # different class.
                if own_ann and have_evidence and typed_persisted(cls,
                                                                 field):
                    report(ann.path, ann.line, "stale-annotation",
                           f"{cls}::{field} is persisted by src/snap; "
                           f"drop the snap:{ann.kind} annotation")
                continue
            if have_evidence and not persisted(cls, field):
                report(path, line, "unpersisted-field",
                       f"mutable field {cls}::{field} is neither "
                       "persisted by src/snap nor annotated "
                       "snap:derived()/snap:transient()")

    for ann in tables.annotations:
        if not ann.used:
            report(ann.path, ann.line, "stale-annotation",
                   f"snap:{ann.kind}({ann.arg}) binds to no field or "
                   "class declaration")

    # ---- architecture layering ----
    for path in files:
        check_layering(path, file_lines[path], closure, report)

    # ---- stale-waiver audit ----
    for path in files:
        rel = os.path.relpath(path) if os.path.isabs(path) else path
        for decl_line, detail in waiver_set(rel).stale(RULES,
                                                       "snaplint:allow"):
            f = Finding(rel, decl_line, "stale-waiver", detail)
            findings[f.key()] = f

    ordered = sorted(findings.values(), key=lambda f: f.key())
    for finding in ordered:
        print(finding)

    if args.report:
        payload = {
            "tool": "imobif_snaplint",
            "frontend": {
                "syntax": True,
                "clang": cindex is not None,
                "clang_note": clang_note,
                "clang_parse_problems": clang_problems,
            },
            "files": len(files),
            "classes": len(tables.fields),
            "fields": sum(len(v) for v in tables.fields.values()),
            "evidence": {
                "typed": len(evidence.typed),
                "untyped": len(evidence.untyped),
                "sources": [norm_path(os.path.relpath(p))
                            for p in evidence_files],
            },
            "findings": [
                {"path": f.path, "line": f.line_no, "rule": f.rule,
                 "detail": f.detail} for f in ordered
            ],
            "suppressed_by_waiver": [
                {"path": p, "line": l, "rule": r} for p, l, r in suppressed
            ],
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")

    if ordered:
        print(f"imobif_snaplint: {len(ordered)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    engines = ["syntax"] + (["clang"] if cindex is not None else [])
    print(f"imobif_snaplint: {len(files)} file(s) clean, "
          f"{sum(len(v) for v in tables.fields.values())} field(s) in "
          f"{len(tables.fields)} class(es) checked "
          f"(engines: {', '.join(engines)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
