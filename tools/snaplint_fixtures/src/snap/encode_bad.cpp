// Fixture evidence for bad_state.hpp: persists LeakyState::sent_ through
// a typed receiver (making the snap:transient on it a provable lie) and
// deliberately never touches dropped_.
#include "net/bad_state.hpp"

namespace fixture {

void encode_leaky(const LeakyState& state, Sink& sink) {
  sink.u64(state.sent());
}

}  // namespace fixture
