// Fixture evidence: the snapshot codec for the clean/waived cases.
// Persists RelayState (accessor, raw member, restore_ setter),
// WavedState::seen and TidyState::count through typed receivers.
#include "net/good_state.hpp"

namespace fixture {

void encode_relay(const RelayState& state, Sink& sink) {
  sink.u64(state.packets_sent());
  sink.f64(state.residual_j_);
}

void restore_relay(RelayState& state, Source& source) {
  state.restore_queue_depth(source.u64());
}

void encode_waived(const WaivedState& state, Sink& sink) {
  sink.u64(state.seen());
}

void encode_tidy(const TidyState& state, Sink& sink) {
  sink.u64(state.count());
}

}  // namespace fixture
