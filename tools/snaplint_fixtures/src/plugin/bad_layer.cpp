// Fixture: MUST fire unknown-layer 1x — src/plugin/ is not registered in
// the fixture layer DAG, and new layers must be added to the DAG before
// code lands in them.
namespace fixture {

int orphan() { return 1; }

}  // namespace fixture
