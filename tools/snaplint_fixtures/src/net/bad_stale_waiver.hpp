// Fixture: linted together with ../snap/encode.cpp it MUST fire
// stale-waiver twice — an allow() whose field the codec now persists
// (so it suppresses nothing) and an allow() naming a misspelled rule.
#pragma once

#include <cstdint>

namespace fixture {

class TidyState {
 public:
  std::uint64_t count() const { return count_; }

 private:
  // snaplint:allow(unpersisted-field): finding: the codec persists this
  std::uint64_t count_ = 0;
  // snaplint:allow(unpersisted-fields): finding: misspelled rule name
  // snap:transient(scratch recomputed per tick)
  double scratch_ = 0.0;
};

}  // namespace fixture
