// Fixture: linted together with ../snap/encode_bad.cpp it MUST fire
//   unpersisted-field 1x  (dropped_ is neither encoded nor annotated)
//   bad-rebuilder    1x  (rebuild_totals is not a member of LeakyState)
//   stale-annotation 2x  (a snap:transient lie on a field the codec
//                         demonstrably persists, and a dangling
//                         annotation that binds to nothing)
// Linted WITHOUT any src/snap evidence file, unpersisted-field must NOT
// fire (the persisted set is unknowable) while the other findings stay.
#pragma once

#include <cstdint>

namespace fixture {

class LeakyState {
 public:
  std::uint64_t sent() const { return sent_; }
  void clear();

 private:
  // snap:transient(claims scratch, but the codec persists this field)
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  // snap:derived(rebuild_totals)
  double totals_ = 0.0;
  // snap:derived(clear)
};

}  // namespace fixture
