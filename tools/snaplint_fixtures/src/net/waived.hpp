// Fixture: MUST be clean when linted together with ../snap/encode.cpp —
// the unpersisted legacy_ field is covered by a justified waiver, and a
// waiver that suppresses a live finding must NOT be reported stale.
#pragma once

#include <cstdint>

namespace fixture {

class WaivedState {
 public:
  std::uint64_t seen() const { return seen_; }

 private:
  std::uint64_t seen_ = 0;
  // snaplint:allow(unpersisted-field): migration shim until codec v3
  std::uint64_t legacy_ = 0;
};

}  // namespace fixture
