// Fixture: MUST be clean when linted together with ../snap/encode.cpp.
// Exercises every way a field can satisfy the exhaustiveness check:
// typed-persisted (accessor and raw-member encode), restore_-prefixed
// setter, a valid snap:derived rebuilder, a per-field snap:transient,
// and a class-level snap:transient covering a config struct.
#pragma once

#include <cstdint>

#include "util/sink.hpp"

namespace fixture {

// snap:transient(config value type, rebuilt from scenario text)
struct RelayConfig {
  double gain = 1.0;
  int retries = 3;
};

class RelayState {
 public:
  std::uint64_t packets_sent() const { return packets_sent_; }
  void restore_queue_depth(std::uint64_t depth) { queue_depth_ = depth; }
  void rebuild_cache();

 private:
  std::uint64_t packets_sent_ = 0;
  double residual_j_ = 0.0;
  std::uint64_t queue_depth_ = 0;
  // snap:derived(rebuild_cache)
  double cache_ = 0.0;
  // snap:transient(scratch, never outlives one tick)
  double scratch_ = 0.0;
};

}  // namespace fixture
