// Fixture: MUST fire layer-violation 1x under the fixture DAG — net
// depends only on util, so the traffic include goes against the layering.
// The non-layer-shaped include must be skipped, not reported.
#include "net/good_state.hpp"
#include "traffic/shaper.hpp"
#include "util/sink.hpp"
#include "vendor/external.hpp"

namespace fixture {

int unused() { return 0; }

}  // namespace fixture
