#!/usr/bin/env python3
"""Self-test for imobif_lint.py.

Runs the linter against the known-bad fixtures in tools/lint_fixtures and
asserts that each rule fires where expected, that waivers suppress, that
clean code passes, and finally that the real src/ tree is clean (the same
gate CI enforces).
"""

import json
import os
import subprocess
import sys
import tempfile

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
LINTER = os.path.join(TOOLS_DIR, "imobif_lint.py")
FIXTURES = os.path.join(TOOLS_DIR, "lint_fixtures")

failures = []


def run_linter(*paths):
    proc = subprocess.run(
        [sys.executable, LINTER, *paths],
        capture_output=True, text=True, cwd=REPO_ROOT, check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


def expect(label, condition, context=""):
    status = "ok" if condition else "FAIL"
    print(f"[{status}] {label}")
    if not condition:
        failures.append(label)
        if context:
            print(context)


def check_fires(fixture, rule, expected_count=None):
    path = os.path.join(FIXTURES, fixture)
    code, out = run_linter(path)
    expect(f"{fixture}: exits non-zero", code == 1, out)
    hits = out.count(f"[{rule}]")
    if expected_count is None:
        expect(f"{fixture}: [{rule}] fires", hits >= 1, out)
    else:
        expect(f"{fixture}: [{rule}] fires {expected_count}x",
               hits == expected_count, out)


def check_clean(fixture):
    path = os.path.join(FIXTURES, fixture)
    code, out = run_linter(path)
    expect(f"{fixture}: clean", code == 0, out)


def check_compile_db():
    """TUs absent from a compile DB are skipped; headers never are."""
    with tempfile.TemporaryDirectory() as tmp:
        for name in ("linted.cpp", "dead.cpp"):
            with open(os.path.join(tmp, name), "w", encoding="utf-8") as f:
                f.write("int noise() { return std::random_device{}(); }\n")
        with open(os.path.join(tmp, "hdr.hpp"), "w", encoding="utf-8") as f:
            f.write("// deliberately missing pragma once\n")
        db = os.path.join(tmp, "compile_commands.json")
        with open(db, "w", encoding="utf-8") as f:
            json.dump([{"directory": tmp, "file": "linted.cpp",
                        "command": "c++ -c linted.cpp"}], f)
        code, out = run_linter("--compile-db", db, tmp)
        expect("compile-db: lints listed TU",
               code == 1 and "linted.cpp" in out, out)
        expect("compile-db: skips unlisted TU", "dead.cpp" not in out, out)
        expect("compile-db: still lints headers", "hdr.hpp" in out, out)


def main():
    check_fires("bad_rand.cpp", "banned-random", expected_count=2)
    check_fires("bad_wallclock.cpp", "wall-clock", expected_count=2)
    check_fires("bad_iostream.cpp", "iostream", expected_count=2)
    check_fires("bad_float_eq.cpp", "float-equality", expected_count=2)
    check_fires("bad_missing_pragma.hpp", "pragma-once", expected_count=1)
    check_fires("bad_include.cpp", "include-hygiene", expected_count=1)
    check_fires(os.path.join("src", "energy", "bad_raw_unit_double.hpp"),
                "raw-unit-double", expected_count=2)
    # The model-zoo layer is typed too: the same rule must gate src/mob/.
    check_fires(os.path.join("src", "mob", "bad_raw_unit_double.hpp"),
                "raw-unit-double", expected_count=2)
    # The localization layer joined TYPED_LAYER_DIRS in PR 10.
    check_fires(os.path.join("src", "loc", "bad_raw_unit_double.hpp"),
                "raw-unit-double", expected_count=2)
    check_fires(os.path.join("src", "svc", "bad_socket.cpp"),
                "socket-timeout", expected_count=2)
    check_fires("stale_waiver.cpp", "stale-waiver", expected_count=2)
    # waived_ok.cpp doubles as the stale-waiver negative: every waiver in
    # it suppresses a live finding, so none may be reported stale.
    check_clean("waived_ok.cpp")
    check_clean("clean_ok.cpp")
    check_clean(os.path.join("src", "energy", "waived_raw_unit_double.hpp"))
    check_clean(os.path.join("src", "util", "clean_raw_double.hpp"))
    check_clean(os.path.join("src", "svc", "waived_socket.cpp"))
    check_compile_db()

    # --rules lists every rule the fixtures exercise.
    code, out = run_linter("--rules")
    expect("--rules exits zero", code == 0, out)
    for rule in ("banned-random", "wall-clock", "iostream", "pragma-once",
                 "float-equality", "include-hygiene", "raw-unit-double",
                 "socket-timeout", "stale-waiver"):
        expect(f"--rules lists {rule}", rule in out, out)

    # The production gate: the real library tree is lint-clean.
    code, out = run_linter("src")
    expect("src/ is lint-clean", code == 0, out)

    if failures:
        print(f"\n{len(failures)} self-test failure(s)")
        return 1
    print("\nall lint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
