// Sweep-farm coordinator daemon: listens on loopback TCP, shards
// submitted sweeps into work units, schedules them across connected
// workers, and merges unit results into the canonical SweepReport.
// See DESIGN.md §11 and README.md "Distributed sweeps".
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "svc/serve.hpp"
#include "util/args.hpp"

namespace {

void print_usage(const std::string& program) {
  std::cout
      << "usage: " << program
      << " [--port P] [--port-file PATH] [--unit-size N]\n"
         "       [--heartbeat-timeout-ms T] [--max-unit-attempts N]\n"
         "       [--quiet]\n"
         "  --port       TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
         "  --port-file  write the bound port here once listening\n"
         "               (how scripts discover an ephemeral port)\n"
         "  --unit-size  instances per work unit when the submission\n"
         "               does not choose (default 4)\n"
         "  --heartbeat-timeout-ms  reassign a busy worker's unit after\n"
         "               this much silence (default 30000)\n"
         "  --max-unit-attempts  fail a sweep after one of its units\n"
         "               lost this many workers (default 5, 0 = no cap)\n"
         "  --quiet      suppress per-event log lines\n"
         "Runs until a client sends a shutdown request\n"
         "(imobif_submit --shutdown).\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace imobif;
  const util::Args args(argc, argv);
  if (args.has("help")) {
    print_usage(args.program());
    return 0;
  }

  svc::ServeOptions options;
  options.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  options.port_file = args.get_string("port-file", "");
  options.coordinator.default_unit_size =
      static_cast<std::uint64_t>(args.get_int("unit-size", 4));
  options.coordinator.heartbeat_timeout_ms =
      args.get_int("heartbeat-timeout-ms", 30'000);
  options.coordinator.max_unit_attempts = args.get_int(
      "max-unit-attempts", options.coordinator.max_unit_attempts);
  if (!args.get_bool("quiet", false)) {
    options.log = [](const std::string& message) {
      std::cout << "[sweepd] " << message << "\n" << std::flush;
    };
  }

  try {
    return svc::serve(options);
  } catch (const std::exception& e) {
    std::cerr << "imobif_sweepd: " << e.what() << "\n";
    return 1;
  }
}
