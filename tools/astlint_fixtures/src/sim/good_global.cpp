// Fixture: MUST stay clean for mutable-global — constants, enums, static
// member functions, and ordinary locals are all fine.
#include <cstdint>

namespace fixture {

constexpr double kSpeedOfLight = 2.998e8;
const int kRetries = 3;

enum class Phase { kIdle, kActive, kDone };

class GoodGlobal {
 public:
  static int make() { return 7; }  // static member *function*

 private:
  int member_ = 0;  // per-instance state is the whole point
};

int twice(int x) {
  int local = x;  // ordinary local
  return local * 2;
}

}  // namespace fixture
