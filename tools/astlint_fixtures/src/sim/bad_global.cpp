// Fixture: MUST fire mutable-global three times — a namespace-scope
// variable, a function-local static, and a static data member.
#include <cstdint>

namespace fixture {

std::uint64_t g_event_counter = 0;  // finding: namespace-scope mutable

namespace {
int g_hidden_state;  // finding: anonymous namespace is still per-process
}  // namespace

class BadGlobal {
 public:
  static int instances;  // finding: static data member
};

int next_id() {
  static int counter = 0;  // finding: function-local static
  return ++counter;
}

}  // namespace fixture
