// Fixture: MUST fire unordered-iteration in the localization layer — a
// range-for over an unordered member. Proves the DET_LAYERS gate widened
// to src/loc/ (PR 10): iterative multilateration sweeps must visit nodes
// in a deterministic order or the refinement rounds diverge across runs.
#include <cstdint>
#include <unordered_map>

namespace fixture {

class BadLocIter {
 public:
  double residual_sum() const {
    double total = 0.0;
    for (const auto& [node, rms] : residuals_) {  // finding: member
      total += rms;
    }
    return total;
  }

 private:
  std::unordered_map<std::uint32_t, double> residuals_;
};

}  // namespace fixture
