// Fixture: MUST fire unordered-iteration twice in the mobility layer — a
// range-for over an unordered local and a begin() handed to an algorithm.
// Proves the DET_LAYERS gate covers src/mob/.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

double drift_sum() {
  std::unordered_map<std::uint32_t, double> drift;
  double total = 0.0;
  for (const auto& [node, metres] : drift) {  // finding: local declaration
    total += metres;
  }
  return total;
}

std::size_t parked_count() {
  std::unordered_set<std::uint32_t> parked;
  return static_cast<std::size_t>(
      std::count_if(parked.begin(), parked.end(),  // finding: algorithm
                    [](std::uint32_t v) { return v > 0; }));
}

}  // namespace fixture
