// Fixture: MUST fire unordered-iteration in the geometry layer — an
// explicit-iterator loop over an unordered local. Proves the DET_LAYERS
// gate widened to src/geom/ (PR 10): the grid index underpins neighbor
// discovery, so hash-order traversal there breaks bit-reproducibility.
#include <cstdint>
#include <unordered_set>

namespace fixture {

std::uint64_t occupied_cells_key() {
  std::unordered_set<std::uint64_t> cells;
  std::uint64_t key = 0;
  for (auto it = cells.begin(); it != cells.end(); ++it) {  // finding
    key = key * 31 + *it;
  }
  return key;
}

}  // namespace fixture
