// Fixture: MUST fire unguarded-capability — a util::Mutex member that no
// annotation in the file ever names guards nothing.
#include "util/thread_annotations.hpp"

namespace fixture {

class BadCapability {
 public:
  void bump() {
    imobif::util::MutexLock lock(mu_);
    ++count_;  // mutated under the lock, but the linter can't know that
  }

 private:
  imobif::util::Mutex mu_;  // finding: nothing is IMOBIF_GUARDED_BY(mu_)
  int count_ = 0;
};

}  // namespace fixture
