// Fixture: MUST fire raw-mutex twice — src/svc is not a deterministic
// layer, but raw primitives are banned everywhere under src/ because clang
// Thread Safety Analysis cannot see through them.
#include <condition_variable>
#include <mutex>

namespace fixture {

class BadMutex {
 private:
  std::mutex mu_;               // finding
  std::condition_variable cv_;  // finding
};

}  // namespace fixture
