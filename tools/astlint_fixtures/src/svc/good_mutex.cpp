// Fixture: MUST stay clean for raw-mutex and unguarded-capability — the
// annotated wrapper guards a member via IMOBIF_GUARDED_BY.
#include "util/thread_annotations.hpp"

namespace fixture {

class GoodMutex {
 public:
  void bump() {
    imobif::util::MutexLock lock(mu_);
    ++count_;
  }

 private:
  imobif::util::Mutex mu_;
  int count_ IMOBIF_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
