// Fixture: MUST stay clean for unordered-iteration — vector traversal,
// the find()/end() lookup idiom, and a waived hash-order fold.
#include <unordered_map>
#include <vector>

namespace fixture {

class GoodIter {
 public:
  double sum() const {
    double total = 0.0;
    for (double v : values_) total += v;  // ordered container: fine
    return total;
  }

  bool has(int key) const {
    // Lookup idiom: .end() without iteration must not fire.
    return index_.find(key) != index_.end();
  }

  int count() const {
    int n = 0;
    // astlint:allow(unordered-iteration): commutative integer fold
    for (const auto& kv : index_) n += kv.second;
    return n;
  }

 private:
  std::vector<double> values_;
  std::unordered_map<int, int> index_;
};

}  // namespace fixture
