// Fixture: declares the unordered member; the iteration lives in the .cpp.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

class BadIter {
 public:
  double sum() const;
  void touch_all();

 private:
  std::unordered_map<std::uint32_t, double> table_;
  std::unordered_set<std::uint32_t> seen_;
};

}  // namespace fixture
