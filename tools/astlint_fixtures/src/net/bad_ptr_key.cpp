// Fixture: MUST fire pointer-key-ordered twice — std::map and std::set
// keyed by a pointer order by allocation address.
#include <map>
#include <set>

namespace fixture {

struct Obj {
  int value = 0;
};

class BadPtrKey {
 private:
  std::map<Obj*, int> by_object_;          // finding
  std::set<const Obj*> marked_;            // finding
};

}  // namespace fixture
