// Fixture: MUST fire stale-waiver twice — an allow() whose offending
// code was refactored away, and an allow() naming a misspelled rule.
// good_iter.cpp is the negative: its waiver suppresses a real finding
// and must NOT be reported stale.
#include <vector>

namespace fixture {

class StaleWaivers {
 public:
  double sum() const {
    double total = 0.0;
    // astlint:allow(unordered-iteration): finding: container is a vector
    // now, so this waiver suppresses nothing
    for (double v : values_) total += v;
    return total;
  }

  std::size_t size() const {
    // astlint:allow(unordered-iterations): finding: misspelled rule name
    return values_.size();
  }

 private:
  std::vector<double> values_;
};

}  // namespace fixture
