// Fixture: MUST fire unordered-iteration three times — a range-for over a
// member declared in the header (cross-file resolution), a range-for over
// a local, and a begin() handed to an algorithm.
#include "bad_iter.hpp"

#include <algorithm>
#include <unordered_map>

namespace fixture {

double BadIter::sum() const {
  double total = 0.0;
  for (const auto& [key, value] : table_) {  // finding: member, cross-file
    total += value;
  }
  return total;
}

void BadIter::touch_all() {
  std::unordered_map<int, int> local;
  for (auto& kv : local) {  // finding: local declaration
    kv.second += 1;
  }
  (void)std::count_if(seen_.begin(), seen_.end(),  // finding: algorithm
                      [](std::uint32_t v) { return v > 0; });
}

}  // namespace fixture
