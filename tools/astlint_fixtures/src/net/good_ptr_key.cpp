// Fixture: MUST stay clean for pointer-key-ordered — value keys, pointer
// mapped-to values, and a pointer-keyed hash map (not address-*ordered*).
#include <cstdint>
#include <map>
#include <unordered_map>

namespace fixture {

struct Obj {
  int value = 0;
};

class GoodPtrKey {
 private:
  std::map<std::uint32_t, Obj*> by_id_;        // pointer is the value
  std::map<int, int> plain_;
  std::unordered_map<Obj*, int> scratch_;      // hash lookup, never iterated
};

}  // namespace fixture
