// Fixture: MUST fire unordered-iteration twice in the traffic layer — a
// range-for over an unordered local and a begin() handed to an algorithm.
// Proves the DET_LAYERS gate covers src/traffic/.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

double interval_sum() {
  std::unordered_map<std::uint64_t, double> intervals;
  double total = 0.0;
  for (const auto& [flow, gap] : intervals) {  // finding: local declaration
    total += gap;
  }
  return total;
}

std::size_t bursty_count() {
  std::unordered_set<std::uint64_t> bursty;
  return static_cast<std::size_t>(
      std::count_if(bursty.begin(), bursty.end(),  // finding: algorithm
                    [](std::uint64_t v) { return v > 0; }));
}

}  // namespace fixture
