// Fixture: MUST stay clean — this file is outside src/, so the
// determinism and raw-mutex rules do not apply (tools, tests, and bench
// code may iterate hash maps and use raw primitives freely).
#include <mutex>
#include <unordered_map>

namespace fixture {

inline int sum(const std::unordered_map<int, int>& m) {
  std::mutex mu;  // fine outside src/
  int total = 0;
  for (const auto& kv : m) total += kv.second;  // fine outside src/
  return total;
}

}  // namespace fixture
