#!/usr/bin/env python3
"""Perf gate: fail CI when a hot path regresses against the baseline.

Compares a freshly produced micro_hotpaths report against the committed
``bench/baselines/BENCH_micro.json`` and exits non-zero when any
benchmark's ``real_ns`` mean is more than ``--threshold`` (default 5%)
slower than the committed mean.

Only ``<bench>:real_ns`` series are gated — ``cpu_ns`` tracks real_ns and
would double-report every finding, and the committed numbers are means
over the bench's own repetitions, which is the stablest signal the
artifact carries. ``--current`` accepts several reports and gates on the
per-benchmark *minimum*: scheduler noise and frequency scaling only ever
inflate a timing, so the best of N runs is the honest estimate of the
code's speed (run the bench 2-3 times in CI). A benchmark present in the
baseline but missing from the current run fails the gate (lost coverage
looks like a speedup to a naive diff); benchmarks new in the current run
are listed but not gated until they are committed.

Usage:
    python3 tools/perf_gate.py \
        --baseline bench/baselines/BENCH_micro.json \
        --current  bench/out/BENCH_micro.*.json [--threshold 0.05]
"""

from __future__ import annotations

import argparse
import json
import sys

SUFFIX = ":real_ns"


def load_means(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    series = report.get("series", {})
    means = {}
    for name, block in series.items():
        if name.endswith(SUFFIX):
            means[name[: -len(SUFFIX)]] = float(block["mean"])
    if not means:
        raise SystemExit(f"perf_gate: no {SUFFIX} series in {path}")
    return means


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_micro.json")
    parser.add_argument("--current", required=True, nargs="+",
                        help="freshly produced BENCH_micro.json report(s); "
                             "with several, each benchmark is gated on its "
                             "fastest run")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="allowed fractional slowdown (default 0.05)")
    args = parser.parse_args()

    baseline = load_means(args.baseline)
    current: dict[str, float] = {}
    for path in args.current:
        for name, mean in load_means(path).items():
            current[name] = min(mean, current.get(name, mean))

    failures = []
    width = max(len(n) for n in baseline)
    for name in sorted(baseline):
        base = baseline[name]
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        cur = current[name]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSED"
            failures.append(
                f"{name}: {base:.1f} ns -> {cur:.1f} ns "
                f"(+{(ratio - 1.0) * 100.0:.1f}%)")
        print(f"  {name:<{width}}  {base:>12.1f} ns  {cur:>12.1f} ns  "
              f"{(ratio - 1.0) * 100.0:+6.1f}%  {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<{width}}  (new, not gated)")

    if failures:
        print(f"\nperf_gate: {len(failures)} failure(s) "
              f"(threshold +{args.threshold * 100.0:.0f}%):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nperf_gate: all {len(baseline)} benchmarks within "
          f"+{args.threshold * 100.0:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
