#!/usr/bin/env python3
"""Perf gate: fail CI when a hot path regresses against the baseline.

Compares a freshly produced micro_hotpaths report against the committed
``bench/baselines/BENCH_micro.json`` and exits non-zero when any
benchmark's ``real_ns`` mean is more than ``--threshold`` (default 5%)
slower than the committed mean.

Only ``<bench>:real_ns`` series are gated — ``cpu_ns`` tracks real_ns and
would double-report every finding, and the committed numbers are means
over the bench's own repetitions, which is the stablest signal the
artifact carries. ``--current`` accepts several reports and gates on the
per-benchmark *minimum*: scheduler noise and frequency scaling only ever
inflate a timing, so the best of N runs is the honest estimate of the
code's speed (run the bench 2-3 times in CI). A benchmark present in the
baseline but missing from the current run fails the gate (lost coverage
looks like a speedup to a naive diff); benchmarks new in the current run
are listed but not gated until they are committed.

The scale gate works the same way for macro throughput: it compares a
fresh ``scale_sweep`` report against the committed
``bench/baselines/BENCH_scale.json`` and fails when ``events_per_sec`` at
any gated node count (default: 1e4 and 1e5) drops more than
``--scale-threshold`` (default 10%) below the baseline. Throughput is
higher-is-better, so the best of N runs is the *maximum*. The 1e2/1e3
points are dominated by setup noise and the 1e6 point by memory-bandwidth
variance between CI hosts, so only the middle of the curve is gated.

The mobility gate tracks *results*, not timings: it compares a fresh
``mobility_sweep`` report against the committed
``bench/baselines/BENCH_mobility.json``. The sweep is deterministic for a
fixed seed, so deviations are behavior changes, not noise — the
comparison is two-sided (drift in either direction fails). Energy-ratio
series gate at ``--mobility-threshold`` (default 5%); the coarser
movement/notification series at ``--mobility-loose-threshold`` (default
10%), since a legitimate model tweak shifts those counters more per unit
of meaning. A series present in the baseline but missing from the current
report fails the gate; new series are listed but not gated until
committed. With several current reports, every one must be within
threshold (a deterministic sweep has no best-of-N).

Any combination of gates can run in one invocation; pass the
corresponding ``--baseline``/``--current``,
``--scale-baseline``/``--scale-current``, or
``--mobility-baseline``/``--mobility-current`` pair.

Usage:
    python3 tools/perf_gate.py \
        --baseline bench/baselines/BENCH_micro.json \
        --current  bench/out/BENCH_micro.*.json [--threshold 0.05] \
        --scale-baseline bench/baselines/BENCH_scale.json \
        --scale-current  bench/out/BENCH_scale.*.json \
        [--scale-threshold 0.10] [--scale-points 10000 100000] \
        --mobility-baseline bench/baselines/BENCH_mobility.json \
        --mobility-current  bench/out/BENCH_mobility.json \
        [--mobility-threshold 0.05] [--mobility-loose-threshold 0.10]
"""

from __future__ import annotations

import argparse
import json
import sys

SUFFIX = ":real_ns"


def load_means(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    series = report.get("series", {})
    means = {}
    for name, block in series.items():
        if name.endswith(SUFFIX):
            means[name[: -len(SUFFIX)]] = float(block["mean"])
    if not means:
        raise SystemExit(f"perf_gate: no {SUFFIX} series in {path}")
    return means


def load_scale_throughput(path: str, points: list[float]) -> dict[float, float]:
    """Returns {node count -> events_per_sec} at the gated points."""
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    series = report.get("series", {})
    try:
        nodes = [float(v) for v in series["nodes"]["values"]]
        eps = [float(v) for v in series["events_per_sec"]["values"]]
    except KeyError as err:
        raise SystemExit(
            f"perf_gate: {path} lacks a {err} series; not a scale_sweep "
            "report?")
    if len(nodes) != len(eps):
        raise SystemExit(
            f"perf_gate: {path}: nodes/events_per_sec length mismatch")
    by_nodes = dict(zip(nodes, eps))
    out = {}
    for point in points:
        if point not in by_nodes:
            raise SystemExit(
                f"perf_gate: {path} has no nodes={point:g} point "
                f"(has {sorted(by_nodes)})")
        out[point] = by_nodes[point]
    return out


def gate_scale(args) -> list[str]:
    points = [float(p) for p in args.scale_points]
    baseline = load_scale_throughput(args.scale_baseline, points)
    current: dict[float, float] = {}
    for path in args.scale_current:
        for point, eps in load_scale_throughput(path, points).items():
            current[point] = max(eps, current.get(point, eps))

    failures = []
    print("scale_sweep events/sec (best of "
          f"{len(args.scale_current)} run(s)):")
    for point in points:
        base = baseline[point]
        cur = current[point]
        ratio = cur / base if base > 0 else 0.0
        verdict = "ok"
        if ratio < 1.0 - args.scale_threshold:
            verdict = "REGRESSED"
            failures.append(
                f"nodes={point:g}: {base:,.0f} ev/s -> {cur:,.0f} ev/s "
                f"({(ratio - 1.0) * 100.0:+.1f}%)")
        print(f"  nodes={point:<10g}  {base:>14,.0f}  {cur:>14,.0f}  "
              f"{(ratio - 1.0) * 100.0:+6.1f}%  {verdict}")
    return failures


def load_all_series_means(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    series = report.get("series", {})
    if not series:
        raise SystemExit(f"perf_gate: no series in {path}")
    return {name: float(block["mean"]) for name, block in series.items()}


def gate_mobility(args) -> list[str]:
    baseline = load_all_series_means(args.mobility_baseline)
    failures = []
    width = max(len(n) for n in baseline)
    for path in args.mobility_current:
        current = load_all_series_means(path)
        print(f"mobility_sweep series vs baseline ({path}):")
        for name in sorted(baseline):
            base = baseline[name]
            if name not in current:
                failures.append(f"{name}: missing from {path}")
                continue
            cur = current[name]
            # The ratio series are the paper's headline result; the
            # movement/notification counters get the looser bound.
            threshold = (args.mobility_threshold if "ratio" in name
                         else args.mobility_loose_threshold)
            if base == 0.0:
                drift = 0.0 if cur == 0.0 else float("inf")
            else:
                drift = abs(cur / base - 1.0)
            verdict = "ok"
            if drift > threshold:
                verdict = "DRIFTED"
                failures.append(
                    f"{name}: {base:.6g} -> {cur:.6g} "
                    f"({drift * 100.0:.1f}% > {threshold * 100.0:.0f}%)")
            print(f"  {name:<{width}}  {base:>12.6g}  {cur:>12.6g}  "
                  f"{drift * 100.0:>6.1f}%  {verdict}")
        for name in sorted(set(current) - set(baseline)):
            print(f"  {name:<{width}}  (new, not gated)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        help="committed BENCH_micro.json")
    parser.add_argument("--current", nargs="+",
                        help="freshly produced BENCH_micro.json report(s); "
                             "with several, each benchmark is gated on its "
                             "fastest run")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="allowed fractional slowdown (default 0.05)")
    parser.add_argument("--scale-baseline",
                        help="committed BENCH_scale.json")
    parser.add_argument("--scale-current", nargs="+",
                        help="freshly produced BENCH_scale.json report(s); "
                             "each point is gated on its fastest run")
    parser.add_argument("--scale-threshold", type=float, default=0.10,
                        help="allowed fractional throughput drop "
                             "(default 0.10)")
    parser.add_argument("--scale-points", nargs="+", type=float,
                        default=[10000.0, 100000.0],
                        help="node counts to gate (default: 1e4 1e5)")
    parser.add_argument("--mobility-baseline",
                        help="committed BENCH_mobility.json")
    parser.add_argument("--mobility-current", nargs="+",
                        help="freshly produced BENCH_mobility.json "
                             "report(s); each is gated independently (the "
                             "sweep is deterministic)")
    parser.add_argument("--mobility-threshold", type=float, default=0.05,
                        help="allowed two-sided drift of energy-ratio "
                             "series (default 0.05)")
    parser.add_argument("--mobility-loose-threshold", type=float,
                        default=0.10,
                        help="allowed two-sided drift of the movement/"
                             "notification series (default 0.10)")
    args = parser.parse_args()

    micro = bool(args.baseline or args.current)
    scale = bool(args.scale_baseline or args.scale_current)
    mobility = bool(args.mobility_baseline or args.mobility_current)
    if micro and not (args.baseline and args.current):
        parser.error("--baseline and --current must be given together")
    if scale and not (args.scale_baseline and args.scale_current):
        parser.error("--scale-baseline and --scale-current must be given "
                     "together")
    if mobility and not (args.mobility_baseline and args.mobility_current):
        parser.error("--mobility-baseline and --mobility-current must be "
                     "given together")
    if not micro and not scale and not mobility:
        parser.error("nothing to gate: give --baseline/--current, "
                     "--scale-baseline/--scale-current, and/or "
                     "--mobility-baseline/--mobility-current")

    scale_failures = gate_scale(args) if scale else []
    mobility_failures = gate_mobility(args) if mobility else []
    if not micro:
        failures = scale_failures + mobility_failures
        if failures:
            print(f"\nperf_gate: {len(failures)} failure(s):",
                  file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        gated = []
        if scale:
            gated.append(f"scale throughput within "
                         f"-{args.scale_threshold * 100.0:.0f}% at all "
                         f"{len(args.scale_points)} gated point(s)")
        if mobility:
            gated.append("mobility grid within drift thresholds")
        print(f"\nperf_gate: {'; '.join(gated)}")
        return 0

    baseline = load_means(args.baseline)
    current: dict[str, float] = {}
    for path in args.current:
        for name, mean in load_means(path).items():
            current[name] = min(mean, current.get(name, mean))

    failures = []
    width = max(len(n) for n in baseline)
    for name in sorted(baseline):
        base = baseline[name]
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        cur = current[name]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSED"
            failures.append(
                f"{name}: {base:.1f} ns -> {cur:.1f} ns "
                f"(+{(ratio - 1.0) * 100.0:.1f}%)")
        print(f"  {name:<{width}}  {base:>12.1f} ns  {cur:>12.1f} ns  "
              f"{(ratio - 1.0) * 100.0:+6.1f}%  {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<{width}}  (new, not gated)")

    failures.extend(scale_failures)
    failures.extend(mobility_failures)
    if failures:
        print(f"\nperf_gate: {len(failures)} failure(s) "
              f"(threshold +{args.threshold * 100.0:.0f}% micro, "
              f"-{args.scale_threshold * 100.0:.0f}% scale, "
              f"±{args.mobility_threshold * 100.0:.0f}% mobility):",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    gated = f"all {len(baseline)} benchmarks"
    if scale:
        gated += f" and {len(args.scale_points)} scale point(s)"
    if mobility:
        gated += " and the mobility grid"
    print(f"\nperf_gate: {gated} within threshold of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
