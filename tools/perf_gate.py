#!/usr/bin/env python3
"""Perf gate: fail CI when a hot path regresses against the baseline.

Compares a freshly produced micro_hotpaths report against the committed
``bench/baselines/BENCH_micro.json`` and exits non-zero when any
benchmark's ``real_ns`` mean is more than ``--threshold`` (default 5%)
slower than the committed mean.

Only ``<bench>:real_ns`` series are gated — ``cpu_ns`` tracks real_ns and
would double-report every finding, and the committed numbers are means
over the bench's own repetitions, which is the stablest signal the
artifact carries. ``--current`` accepts several reports and gates on the
per-benchmark *minimum*: scheduler noise and frequency scaling only ever
inflate a timing, so the best of N runs is the honest estimate of the
code's speed (run the bench 2-3 times in CI). A benchmark present in the
baseline but missing from the current run fails the gate (lost coverage
looks like a speedup to a naive diff); benchmarks new in the current run
are listed but not gated until they are committed.

The scale gate works the same way for macro throughput: it compares a
fresh ``scale_sweep`` report against the committed
``bench/baselines/BENCH_scale.json`` and fails when ``events_per_sec`` at
any gated node count (default: 1e4 and 1e5) drops more than
``--scale-threshold`` (default 10%) below the baseline. Throughput is
higher-is-better, so the best of N runs is the *maximum*. The 1e2/1e3
points are dominated by setup noise and the 1e6 point by memory-bandwidth
variance between CI hosts, so only the middle of the curve is gated.

Either gate (or both) can run in one invocation; pass the corresponding
``--baseline``/``--current`` or ``--scale-baseline``/``--scale-current``
pair.

Usage:
    python3 tools/perf_gate.py \
        --baseline bench/baselines/BENCH_micro.json \
        --current  bench/out/BENCH_micro.*.json [--threshold 0.05] \
        --scale-baseline bench/baselines/BENCH_scale.json \
        --scale-current  bench/out/BENCH_scale.*.json \
        [--scale-threshold 0.10] [--scale-points 10000 100000]
"""

from __future__ import annotations

import argparse
import json
import sys

SUFFIX = ":real_ns"


def load_means(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    series = report.get("series", {})
    means = {}
    for name, block in series.items():
        if name.endswith(SUFFIX):
            means[name[: -len(SUFFIX)]] = float(block["mean"])
    if not means:
        raise SystemExit(f"perf_gate: no {SUFFIX} series in {path}")
    return means


def load_scale_throughput(path: str, points: list[float]) -> dict[float, float]:
    """Returns {node count -> events_per_sec} at the gated points."""
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    series = report.get("series", {})
    try:
        nodes = [float(v) for v in series["nodes"]["values"]]
        eps = [float(v) for v in series["events_per_sec"]["values"]]
    except KeyError as err:
        raise SystemExit(
            f"perf_gate: {path} lacks a {err} series; not a scale_sweep "
            "report?")
    if len(nodes) != len(eps):
        raise SystemExit(
            f"perf_gate: {path}: nodes/events_per_sec length mismatch")
    by_nodes = dict(zip(nodes, eps))
    out = {}
    for point in points:
        if point not in by_nodes:
            raise SystemExit(
                f"perf_gate: {path} has no nodes={point:g} point "
                f"(has {sorted(by_nodes)})")
        out[point] = by_nodes[point]
    return out


def gate_scale(args) -> list[str]:
    points = [float(p) for p in args.scale_points]
    baseline = load_scale_throughput(args.scale_baseline, points)
    current: dict[float, float] = {}
    for path in args.scale_current:
        for point, eps in load_scale_throughput(path, points).items():
            current[point] = max(eps, current.get(point, eps))

    failures = []
    print("scale_sweep events/sec (best of "
          f"{len(args.scale_current)} run(s)):")
    for point in points:
        base = baseline[point]
        cur = current[point]
        ratio = cur / base if base > 0 else 0.0
        verdict = "ok"
        if ratio < 1.0 - args.scale_threshold:
            verdict = "REGRESSED"
            failures.append(
                f"nodes={point:g}: {base:,.0f} ev/s -> {cur:,.0f} ev/s "
                f"({(ratio - 1.0) * 100.0:+.1f}%)")
        print(f"  nodes={point:<10g}  {base:>14,.0f}  {cur:>14,.0f}  "
              f"{(ratio - 1.0) * 100.0:+6.1f}%  {verdict}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        help="committed BENCH_micro.json")
    parser.add_argument("--current", nargs="+",
                        help="freshly produced BENCH_micro.json report(s); "
                             "with several, each benchmark is gated on its "
                             "fastest run")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="allowed fractional slowdown (default 0.05)")
    parser.add_argument("--scale-baseline",
                        help="committed BENCH_scale.json")
    parser.add_argument("--scale-current", nargs="+",
                        help="freshly produced BENCH_scale.json report(s); "
                             "each point is gated on its fastest run")
    parser.add_argument("--scale-threshold", type=float, default=0.10,
                        help="allowed fractional throughput drop "
                             "(default 0.10)")
    parser.add_argument("--scale-points", nargs="+", type=float,
                        default=[10000.0, 100000.0],
                        help="node counts to gate (default: 1e4 1e5)")
    args = parser.parse_args()

    micro = bool(args.baseline or args.current)
    scale = bool(args.scale_baseline or args.scale_current)
    if micro and not (args.baseline and args.current):
        parser.error("--baseline and --current must be given together")
    if scale and not (args.scale_baseline and args.scale_current):
        parser.error("--scale-baseline and --scale-current must be given "
                     "together")
    if not micro and not scale:
        parser.error("nothing to gate: give --baseline/--current and/or "
                     "--scale-baseline/--scale-current")

    scale_failures = gate_scale(args) if scale else []
    if not micro:
        if scale_failures:
            print(f"\nperf_gate: {len(scale_failures)} scale failure(s) "
                  f"(threshold -{args.scale_threshold * 100.0:.0f}%):",
                  file=sys.stderr)
            for line in scale_failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nperf_gate: scale throughput within "
              f"-{args.scale_threshold * 100.0:.0f}% of baseline at all "
              f"{len(args.scale_points)} gated point(s)")
        return 0

    baseline = load_means(args.baseline)
    current: dict[str, float] = {}
    for path in args.current:
        for name, mean in load_means(path).items():
            current[name] = min(mean, current.get(name, mean))

    failures = []
    width = max(len(n) for n in baseline)
    for name in sorted(baseline):
        base = baseline[name]
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        cur = current[name]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSED"
            failures.append(
                f"{name}: {base:.1f} ns -> {cur:.1f} ns "
                f"(+{(ratio - 1.0) * 100.0:.1f}%)")
        print(f"  {name:<{width}}  {base:>12.1f} ns  {cur:>12.1f} ns  "
              f"{(ratio - 1.0) * 100.0:+6.1f}%  {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:<{width}}  (new, not gated)")

    failures.extend(scale_failures)
    if failures:
        print(f"\nperf_gate: {len(failures)} failure(s) "
              f"(threshold +{args.threshold * 100.0:.0f}% micro, "
              f"-{args.scale_threshold * 100.0:.0f}% scale):",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    gated = f"all {len(baseline)} benchmarks"
    if scale:
        gated += f" and {len(args.scale_points)} scale point(s)"
    print(f"\nperf_gate: {gated} within threshold of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
