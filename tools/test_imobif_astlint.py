#!/usr/bin/env python3
"""Self-test for imobif_astlint.py.

Runs the AST determinism linter against the fixtures in
tools/astlint_fixtures and asserts that each rule fires where expected
(including cross-file member resolution), that negatives and waivers stay
clean, that path scoping holds outside src/, that the JSON report carries
the findings, and finally that the real src/ tree is clean — the same gate
CI enforces.
"""

import json
import os
import subprocess
import sys
import tempfile

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
LINTER = os.path.join(TOOLS_DIR, "imobif_astlint.py")
FIXTURES = os.path.join(TOOLS_DIR, "astlint_fixtures")

failures = []


def run_linter(*args):
    proc = subprocess.run(
        [sys.executable, LINTER, "--compile-db", "none", *args],
        capture_output=True, text=True, cwd=REPO_ROOT, check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


def expect(label, condition, context=""):
    status = "ok" if condition else "FAIL"
    print(f"[{status}] {label}")
    if not condition:
        failures.append(label)
        if context:
            print(context)


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


def check_fires(paths, rule, expected_count, label=None):
    if isinstance(paths, str):
        paths = [paths]
    code, out = run_linter(*paths)
    name = label or os.path.basename(paths[-1])
    expect(f"{name}: exits non-zero", code == 1, out)
    hits = out.count(f"[{rule}]")
    expect(f"{name}: [{rule}] fires {expected_count}x",
           hits == expected_count, out)


def check_clean(path):
    code, out = run_linter(path)
    expect(f"{os.path.basename(path)}: clean", code == 0, out)


def check_report():
    """--report mirrors findings and waiver suppressions as JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        report = os.path.join(tmp, "astlint.json")
        code, _ = run_linter("--report", report,
                             fixture("src", "net", "bad_iter.hpp"),
                             fixture("src", "net", "bad_iter.cpp"),
                             fixture("src", "net", "good_iter.cpp"))
        expect("report: run exits non-zero", code == 1)
        with open(report, encoding="utf-8") as f:
            payload = json.load(f)
        rules = [f["rule"] for f in payload["findings"]]
        expect("report: three unordered-iteration findings",
               rules == ["unordered-iteration"] * 3, str(payload))
        expect("report: waiver suppression recorded",
               len(payload["suppressed_by_waiver"]) == 1, str(payload))
        expect("report: frontend block present",
               "syntax" in payload.get("frontend", {}), str(payload))


def main():
    # Cross-file: the container member is declared in the header, iterated
    # in the .cpp — both files must be in the run for resolution.
    check_fires([fixture("src", "net", "bad_iter.hpp"),
                 fixture("src", "net", "bad_iter.cpp")],
                "unordered-iteration", expected_count=3,
                label="bad_iter.{hpp,cpp}")
    check_fires(fixture("src", "net", "bad_ptr_key.cpp"),
                "pointer-key-ordered", expected_count=2)
    # The model-zoo layers are deterministic too: the DET_LAYERS gate must
    # cover src/mob/ and src/traffic/.
    check_fires(fixture("src", "mob", "bad_iter.cpp"),
                "unordered-iteration", expected_count=2)
    check_fires(fixture("src", "traffic", "bad_iter.cpp"),
                "unordered-iteration", expected_count=2)
    # PR 10 widened DET_LAYERS to the geometry and localization layers.
    check_fires(fixture("src", "geom", "bad_iter.cpp"),
                "unordered-iteration", expected_count=1)
    check_fires(fixture("src", "loc", "bad_iter.cpp"),
                "unordered-iteration", expected_count=1)
    # Waiver audit: an allow() that suppresses nothing (or misspells the
    # rule) is itself a finding; good_iter.cpp below is the negative.
    check_fires(fixture("src", "net", "bad_stale_waiver.cpp"),
                "stale-waiver", expected_count=2)
    check_fires(fixture("src", "sim", "bad_global.cpp"),
                "mutable-global", expected_count=4)
    check_fires(fixture("src", "svc", "bad_mutex.cpp"),
                "raw-mutex", expected_count=2)
    check_fires(fixture("src", "svc", "bad_capability.cpp"),
                "unguarded-capability", expected_count=1)

    check_clean(fixture("src", "net", "good_iter.cpp"))
    check_clean(fixture("src", "net", "good_ptr_key.cpp"))
    check_clean(fixture("src", "sim", "good_global.cpp"))
    check_clean(fixture("src", "svc", "good_mutex.cpp"))
    # Path scoping: identical constructs outside src/ are not findings.
    check_clean(fixture("outside", "free_iter.cpp"))

    check_report()

    code, out = run_linter("--rules")
    expect("--rules exits zero", code == 0, out)
    for rule in ("unordered-iteration", "pointer-key-ordered",
                 "mutable-global", "raw-mutex", "unguarded-capability",
                 "stale-waiver"):
        expect(f"--rules lists {rule}", rule in out, out)

    # The production gate: the real library tree is clean (waivers at the
    # justified extract-then-sort sites included).
    code, out = run_linter("src")
    expect("src/ is astlint-clean", code == 0, out)

    if failures:
        print(f"\n{len(failures)} self-test failure(s)")
        return 1
    print("\nall astlint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
