// imobif_replay: divergence bisection and fresh-process continuation for
// snap checkpoints (DESIGN.md §9).
//
// Modes:
//   imobif_replay --bisect A.ckpt B.ckpt   lockstep-advance both runs and
//       report the first event index where their state hashes diverge.
//       A and B must stand at the same executed-event count (e.g. the same
//       checkpoint taken under two fault seeds, or an original + perturbed
//       copy). Exit 0 = no divergence, 2 = diverged.
//   imobif_replay --replay A.ckpt          "checkpoint + seed" check: build
//       a fresh twin from A's embedded scenario (same seed, re-executed
//       from t=0), advance it to A's event count, then bisect twin vs A to
//       the end. Any divergence pinpoints nondeterminism or a behaviour
//       change since the checkpoint was written.
//   imobif_replay --continue A.ckpt [--out R.json]   finish the run in
//       *this* process and write its canonical RunResult JSON (stdout by
//       default) — the cross-process half of resume-equivalence tests.
//   imobif_replay --dump A.ckpt            print the snapshot's debug JSON.
//
// Common flags: --max-events N caps a bisection scan (0 = unlimited).
#include <cstddef>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "exp/instance_run.hpp"
#include "net/network.hpp"
#include "snap/codec.hpp"
#include "snap/replay.hpp"
#include "snap/result_io.hpp"
#include "snap/snapshot.hpp"
#include "util/args.hpp"

namespace {

using namespace imobif;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitDiverged = 2;

void print_usage(const std::string& program) {
  std::cout
      << "usage: " << program << " MODE [flags]\n"
      << "  --bisect A.ckpt B.ckpt   first diverging event between two runs\n"
      << "  --replay A.ckpt          bisect A against a fresh replay of its\n"
      << "                           embedded scenario (checkpoint + seed)\n"
      << "  --continue A.ckpt        finish the run here; --out R.json\n"
      << "                           writes the canonical result JSON\n"
      << "  --dump A.ckpt            print the snapshot debug JSON\n"
      << "  --max-events N           cap a bisection scan (0 = unlimited)\n";
}

int report(const snap::Divergence& divergence) {
  std::cout << divergence.describe() << "\n";
  return divergence.diverged ? kExitDiverged : kExitOk;
}

int bisect(const std::string& path_a, const std::string& path_b,
           std::size_t max_events) {
  auto a = snap::restore_file(path_a);
  auto b = snap::restore_file(path_b);
  return report(snap::find_divergence(*a, *b, max_events));
}

int replay_against_fresh(const std::string& path, std::size_t max_events) {
  const std::string data = snap::read_file(path);
  auto original = snap::restore(data);
  auto twin = snap::restore_fresh(data);
  const std::size_t target =
      original->network().simulator().executed_events();
  while (twin->network().simulator().executed_events() < target &&
         !twin->done()) {
    twin->advance(1);
  }
  if (twin->network().simulator().executed_events() != target) {
    std::cout << "diverged before the checkpoint: fresh replay finished at "
              << "event " << twin->network().simulator().executed_events()
              << " but the checkpoint stands at event " << target << "\n";
    return kExitDiverged;
  }
  return report(snap::find_divergence(*original, *twin, max_events));
}

int continue_run(const std::string& path, const std::string& out) {
  auto run = snap::restore_file(path);
  run->advance();
  const std::string json = snap::result_to_json(run->result()).dump(2) + "\n";
  if (out.empty()) {
    std::cout << json;
  } else {
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    if (!file) {
      std::cerr << "error: cannot write " << out << "\n";
      return kExitUsage;
    }
    file << json;
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  if (args.has("help")) {
    print_usage(args.program());
    return kExitOk;
  }
  try {
    const auto max_events =
        static_cast<std::size_t>(args.get_int("max-events", 0));
    if (args.has("bisect")) {
      const std::string a = args.get_string("bisect");
      if (a.empty() || args.positional().empty()) {
        std::cerr << "error: --bisect needs two checkpoint paths\n";
        return kExitUsage;
      }
      return bisect(a, args.positional().front(), max_events);
    }
    if (args.has("replay")) {
      return replay_against_fresh(args.get_string("replay"), max_events);
    }
    if (args.has("continue")) {
      return continue_run(args.get_string("continue"),
                          args.get_string("out"));
    }
    if (args.has("dump")) {
      std::cout << snap::debug_dump(snap::read_file(args.get_string("dump")))
                << "\n";
      return kExitOk;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitUsage;
  }
  print_usage(args.program());
  return kExitUsage;
}
