#!/usr/bin/env python3
"""Self-test for imobif_snaplint.py.

Runs the checkpoint-exhaustiveness + layering linter against the fixtures
in tools/snaplint_fixtures and asserts that each rule fires where expected
(including the evidence-gated unpersisted-field rule), that negatives and
waivers stay clean, that a broken layer DAG is a hard configuration error,
that the JSON report carries the findings, and finally that the real src/
tree is clean — the same gate CI enforces.
"""

import json
import os
import subprocess
import sys
import tempfile

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
LINTER = os.path.join(TOOLS_DIR, "imobif_snaplint.py")
FIXTURES = os.path.join(TOOLS_DIR, "snaplint_fixtures")
FIXTURE_LAYERS = os.path.join(FIXTURES, "layers.json")

failures = []


def run_linter(*args, layers=FIXTURE_LAYERS):
    cmd = [sys.executable, LINTER, "--compile-db", "none"]
    if layers is not None:
        cmd += ["--layers", layers]
    proc = subprocess.run(cmd + list(args), capture_output=True, text=True,
                          cwd=REPO_ROOT, check=False)
    return proc.returncode, proc.stdout + proc.stderr


def expect(label, condition, context=""):
    status = "ok" if condition else "FAIL"
    print(f"[{status}] {label}")
    if not condition:
        failures.append(label)
        if context:
            print(context)


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


def check_fires(paths, expected, label):
    """expected = {rule: count}; every other rule must stay at zero."""
    code, out = run_linter(*paths)
    expect(f"{label}: exits non-zero", code == 1, out)
    for rule, count in expected.items():
        hits = out.count(f"[{rule}]")
        expect(f"{label}: [{rule}] fires {count}x", hits == count, out)


def check_clean(paths, label):
    code, out = run_linter(*paths)
    expect(f"{label}: clean", code == 0, out)


def main():
    evidence = fixture("src", "snap", "encode.cpp")
    evidence_bad = fixture("src", "snap", "encode_bad.cpp")

    # The full positive case: one header, four distinct defects.
    check_fires([fixture("src", "net", "bad_state.hpp"), evidence_bad],
                {"unpersisted-field": 1, "bad-rebuilder": 1,
                 "stale-annotation": 2},
                label="bad_state + evidence")

    # Evidence gating: without any src/snap file in the run the persisted
    # set is unknowable, so unpersisted-field must NOT fire — but the
    # annotation-integrity rules still do.
    code, out = run_linter(fixture("src", "net", "bad_state.hpp"))
    expect("bad_state w/o evidence: exits non-zero", code == 1, out)
    expect("bad_state w/o evidence: unpersisted-field gated off",
           out.count("[unpersisted-field]") == 0, out)
    expect("bad_state w/o evidence: bad-rebuilder still fires",
           out.count("[bad-rebuilder]") == 1, out)

    # Negatives: every persistence pathway plus annotations, and a live
    # waiver that must not be reported stale.
    check_clean([fixture("src", "net", "good_state.hpp"), evidence],
                label="good_state + evidence")
    check_clean([fixture("src", "net", "waived.hpp"), evidence],
                label="waived + evidence")

    check_fires([fixture("src", "net", "bad_stale_waiver.hpp"), evidence],
                {"stale-waiver": 2}, label="bad_stale_waiver")

    # Architecture layering against the fixture DAG.
    check_fires([fixture("src", "net", "bad_include.cpp")],
                {"layer-violation": 1}, label="bad_include")
    check_fires([fixture("src", "plugin", "bad_layer.cpp")],
                {"unknown-layer": 1}, label="bad_layer")

    # A broken DAG is a configuration error, not a finding.
    for broken in ("layers_cycle.json", "layers_unknown_dep.json"):
        code, out = run_linter(fixture("src", "net", "good_state.hpp"),
                               layers=fixture(broken))
        expect(f"{broken}: exits 2", code == 2, out)

    # --report mirrors findings, evidence sources and waiver suppressions.
    with tempfile.TemporaryDirectory() as tmp:
        report = os.path.join(tmp, "snaplint.json")
        code, _ = run_linter("--report", report,
                             fixture("src", "net", "bad_state.hpp"),
                             fixture("src", "net", "waived.hpp"),
                             evidence, evidence_bad)
        expect("report: run exits non-zero", code == 1)
        with open(report, encoding="utf-8") as f:
            payload = json.load(f)
        rules = sorted(f["rule"] for f in payload["findings"])
        expect("report: findings recorded",
               rules == ["bad-rebuilder", "stale-annotation",
                         "stale-annotation", "unpersisted-field"],
               str(payload))
        expect("report: waiver suppression recorded",
               len(payload["suppressed_by_waiver"]) == 1, str(payload))
        expect("report: both evidence sources listed",
               len(payload["evidence"]["sources"]) == 2, str(payload))
        expect("report: frontend block present",
               "syntax" in payload.get("frontend", {}), str(payload))

    code, out = run_linter("--rules")
    expect("--rules exits zero", code == 0, out)
    for rule in ("unpersisted-field", "bad-rebuilder", "stale-annotation",
                 "layer-violation", "unknown-layer", "stale-waiver"):
        expect(f"--rules lists {rule}", rule in out, out)

    # The production gates, exactly as CI runs them: the real tree is
    # clean under the committed tools/layers.json, and the acceptance
    # canary — removing the derived-aggregate annotation in
    # src/net/node_store.hpp — re-fires unpersisted-field.
    code, out = run_linter("src", layers=None)
    expect("src/ is snaplint-clean", code == 0, out)

    store = os.path.join(REPO_ROOT, "src", "net", "node_store.hpp")
    with open(store, encoding="utf-8") as f:
        original = f.read()
    canary = "// snap:derived(Node::sync_flow_aggregate)\n"
    expect("canary annotation present in node_store.hpp", canary in original)
    try:
        with open(store, "w", encoding="utf-8") as f:
            f.write(original.replace(canary, ""))
        code, out = run_linter("src", layers=None)
        expect("canary: dropping the derived-aggregate annotation fires",
               code == 1 and "FlowAggregate::active_flows" in out, out)
    finally:
        with open(store, "w", encoding="utf-8") as f:
            f.write(original)
    code, _ = run_linter("src", layers=None)
    expect("canary: annotation restored, src/ clean again", code == 0)

    if failures:
        print(f"\n{len(failures)} self-test failure(s)")
        return 1
    print("\nall snaplint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
