#!/usr/bin/env python3
"""imobif AST determinism linter.

Enforces structural determinism rules that the token-level linter
(imobif_lint.py) cannot express — they need declared *types* and *scopes*,
not just tokens on a line:

  unordered-iteration   iterating a std::unordered_map/std::unordered_set
                        (range-for, or .begin()/.end() handed to an
                        algorithm) in a deterministic layer (src/{sim,net,
                        core,exp,energy,snap}): hash-map iteration order
                        is layout-dependent, so any fold over it can break
                        bit-reproducibility. Extract-and-sort instead, or
                        waive a provably order-insensitive fold.
  pointer-key-ordered   std::map/std::set keyed by a pointer in a
                        deterministic layer: comparison order is the
                        allocation address, which varies run to run.
                        Key by id instead.
  mutable-global        mutable static/namespace-scope state in a
                        deterministic layer (globals, function-local
                        statics, non-const static members): shared state
                        that outlives a run breaks instance independence
                        and worker-count invariance.
  raw-mutex             a raw std::mutex/std::condition_variable (and
                        friends) anywhere in src/: raw primitives are
                        invisible to clang Thread Safety Analysis. Use
                        imobif::util::Mutex/CondVar/MutexLock from
                        src/util/thread_annotations.hpp (the one file
                        exempt from this rule).
  unguarded-capability  a util::Mutex class member that nothing in the
                        file references via IMOBIF_GUARDED_BY/REQUIRES/
                        ACQUIRE/...: a capability that guards nothing is
                        a lock nobody checks.

Two analysis engines produce findings (deduplicated by file:line:rule):

  syntax  always available: a scope-tracking token scanner that resolves
          container declarations (class members across files, locals,
          function parameters) well enough for the rules above.
  clang   full AST via libclang (python3 clang.cindex) over the exported
          compile_commands.json; catches what the scanner cannot (auto,
          type aliases, templates). Engaged automatically when the
          bindings and a libclang shared library are present — CI
          installs them; a bare container silently degrades to syntax
          (a note is printed to stderr).

A finding can be waived with ``// astlint:allow(<rule>)`` on the same
line or the line directly above. The marker is distinct from
imobif_lint's ``lint:allow`` so each linter's stale-waiver accounting
only ever sees its own waivers.

Waivers are themselves audited (same contract as imobif_lint): an
``astlint:allow`` that suppresses nothing across every engine that ran —
the offending code was refactored away, or the rule name is misspelled —
is reported as a ``stale-waiver`` error, so dead escape hatches cannot
accumulate and silently blanket future regressions.

Usage: imobif_astlint.py [--rules] [--frontend auto|syntax|clang|both]
                         [--compile-db PATH] [--report PATH] [PATH ...]
       (default path: src)
Exit status: 0 clean, 1 findings, 2 usage/engine error.
"""

import argparse
import json
import os
import re
import sys

from lint_common import (HEADER_EXTS, SOURCE_EXTS, Finding, WaiverSet,
                         collect_files, iter_statements, load_compile_db,
                         match_angle_block, norm_path, split_top_level,
                         strip_code)

RULES = {
    "unordered-iteration": "iteration over unordered container in a "
                           "deterministic layer (hash-order dependent)",
    "pointer-key-ordered": "std::map/std::set keyed by pointer in a "
                           "deterministic layer (address-ordered)",
    "mutable-global": "mutable static/global state in a deterministic "
                      "layer",
    "raw-mutex": "raw std::mutex/std::condition_variable in src/; use the "
                 "annotated wrappers in util/thread_annotations.hpp",
    "unguarded-capability": "util::Mutex member with no IMOBIF_GUARDED_BY/"
                            "REQUIRES reference in the file",
    "stale-waiver": "astlint:allow() that suppresses no finding in any "
                    "engine that ran (refactored code or misspelled rule); "
                    "remove it",
}

DET_LAYERS = ("sim", "net", "core", "exp", "energy", "snap", "mob",
              "traffic", "geom", "loc")
EXEMPT_SUFFIX = "util/thread_annotations.hpp"

WAIVER_RE = re.compile(r"//\s*astlint:allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

CONTAINER_RE = re.compile(
    r"\bstd\s*::\s*"
    r"(unordered_map|unordered_multimap|unordered_set|unordered_multiset|"
    r"map|multimap|set|multiset)\s*<"
)
UNORDERED_KINDS = {"unordered_map", "unordered_multimap",
                   "unordered_set", "unordered_multiset"}
RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
    r"condition_variable|condition_variable_any)\b"
)
# `Mutex&`/`Mutex*` never match (`\s+` demands whitespace after the type),
# so references and parameters are excluded by construction.
CAPABILITY_MEMBER_RE = re.compile(
    r"\b(?:imobif\s*::\s*)?util\s*::\s*Mutex\s+(\w+)\b"
)
# Only begin(): an `.end()` on its own is the `find() == end()` lookup
# idiom, not iteration, and every real traversal (range-for lowering,
# algorithm call) names begin() too.
BEGIN_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*\.\s*c?r?begin\s*\("
)
NS_DECL_EXCLUDE = ("using", "typedef", "friend", "template", "extern",
                   "static_assert", "struct", "class", "union", "enum",
                   "namespace", "public", "private", "protected", "case",
                   "default", "return", "goto", "operator")


def in_det_layer(path):
    norm = norm_path(path)
    return any(f"src/{d}/" in norm for d in DET_LAYERS)


def in_src(path):
    return "src/" in norm_path(path)


def container_decls(text):
    """Yields (kind, template_args, name) for container declarations in a
    statement/opener fragment. `name` is the declared identifier (or None
    when the fragment is a bare type mention)."""
    for m in CONTAINER_RE.finditer(text):
        kind = m.group(1)
        open_pos = m.end() - 1
        close = match_angle_block(text, open_pos)
        if close == -1:
            continue
        args = text[open_pos + 1:close - 1]
        rest = text[close:]
        name_m = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", rest)
        name = name_m.group(1) if name_m else None
        if name in ("const",):
            name = None
        yield kind, args, name


def first_arg_is_pointer(args):
    first = split_top_level(args)[0].strip()
    # `T*`, `const T*`, `T* const` — a top-level pointer either way.
    return first.endswith("*") or first.endswith("* const") \
        or re.search(r"\*\s*(const)?$", first) is not None


def _register_container_params(scope, params_text):
    """Records container-typed function parameters as locals of `scope`."""
    for kind, _args, name in container_decls(params_text):
        if name:
            scope.locals[name] = (
                "unordered" if kind in UNORDERED_KINDS else "ordered")


class SyntaxEngine:
    """Scope-tracking scanner over comment/string-stripped source."""

    def __init__(self):
        # class name -> {member name -> container kind}
        self.class_members = {}

    # ---- pass A: collect class member declarations across all files ----

    def collect(self, path, raw_lines):
        for scope_stack, stmt, _line in self._statements(raw_lines):
            type_scopes = [s for s in scope_stack if s.kind == "type"]
            if not type_scopes:
                continue
            cls = type_scopes[-1].name
            if not cls:
                continue
            members = self.class_members.setdefault(cls, {})
            for kind, args, name in container_decls(stmt):
                if name:
                    members[name] = (
                        "unordered" if kind in UNORDERED_KINDS else "ordered")

    # ---- pass B: lint one file ----

    def lint(self, path, raw_lines, report):
        det = in_det_layer(path)
        src = in_src(path)
        exempt = norm_path(path).endswith(EXEMPT_SUFFIX)
        file_vars = {}  # namespace-scope container vars in this file
        # Comment-stripped view: annotation references inside comments must
        # not satisfy (or trigger) the capability check.
        stripped_lines = []
        in_block = False
        for raw in raw_lines:
            stripped, in_block = strip_code(raw, in_block)
            stripped_lines.append(stripped)
        stripped_text = "\n".join(stripped_lines)

        capability_members = []  # (member name, class name, line)

        for scope_stack, stmt, line in self._statements(raw_lines):
            inner = scope_stack[-1] if scope_stack else None
            kind_here = inner.kind if inner else "ns"
            in_fn = any(s.kind in ("fn", "block") for s in scope_stack)
            in_type = (not in_fn) and any(
                s.kind == "type" for s in scope_stack)

            if in_type:
                cls = next((s.name for s in reversed(scope_stack)
                            if s.kind == "type" and s.name), "?")
                for m in CAPABILITY_MEMBER_RE.finditer(stmt):
                    capability_members.append(
                        (m.group(1), cls,
                         self._line_of(stmt, line, m.group(0))))

            # Record declarations for later use resolution.
            decls = list(container_decls(stmt))
            for c_kind, args, name in decls:
                target = None
                if in_fn:
                    fn_scope = next(
                        (s for s in reversed(scope_stack) if s.kind == "fn"),
                        None)
                    target = fn_scope.locals if fn_scope else file_vars
                elif not in_type:
                    target = file_vars
                if target is not None and name:
                    target[name] = ("unordered" if c_kind in UNORDERED_KINDS
                                    else "ordered")
                # pointer-key-ordered fires at the declaration site.
                if det and c_kind not in UNORDERED_KINDS \
                        and first_arg_is_pointer(args):
                    report(path, self._line_of(stmt, line, f"std"),
                           "pointer-key-ordered",
                           f"std::{c_kind}<{args.strip()}> is ordered by "
                           "pointer value (allocation address)")

            # raw-mutex: anywhere in src/, modulo the wrapper header.
            if src and not exempt:
                m = RAW_MUTEX_RE.search(stmt)
                if m:
                    report(path, self._line_of(stmt, line, m.group(0)),
                           "raw-mutex", RULES["raw-mutex"])

            # mutable-global: namespace scope, local statics, static
            # members — deterministic layers only.
            if det:
                self._check_mutable_global(path, stmt, line, kind_here,
                                           in_fn, in_type, report)

            # unordered-iteration uses.
            if det:
                for name, use_line in self._iteration_uses(stmt, line):
                    resolved = self._resolve(name, scope_stack, file_vars)
                    if resolved == "unordered":
                        report(path, use_line, "unordered-iteration",
                               f"iteration over unordered container "
                               f"'{name}' (hash-layout order)")

        # unguarded-capability: every util::Mutex member declared in this
        # file must be referenced by at least one annotation in the file.
        if src and not exempt:
            for cap, cls, decl_line in capability_members:
                guard_re = re.compile(
                    r"IMOBIF_(?:PT_)?GUARDED_BY\(\s*" + re.escape(cap)
                    + r"\s*\)|IMOBIF_(?:REQUIRES|ACQUIRE|RELEASE|"
                    r"TRY_ACQUIRE|EXCLUDES)\([^)]*\b" + re.escape(cap)
                    + r"\b")
                if not guard_re.search(stripped_text):
                    report(path, decl_line, "unguarded-capability",
                           f"util::Mutex '{cap}' in class '{cls}' guards "
                           "nothing here — annotate the guarded state "
                           f"with IMOBIF_GUARDED_BY({cap})")

    # ---- helpers ----

    @staticmethod
    def _line_of(stmt, start_line, needle):
        pos = stmt.find(needle)
        if pos == -1:
            return start_line
        return start_line + stmt.count("\n", 0, pos)

    def _check_mutable_global(self, path, stmt, line, kind_here, in_fn,
                              in_type, report):
        if kind_here == "expr":
            return  # enum bodies, braced initializers
        text = stmt.strip()
        # Access-specifier labels share the statement with the declaration
        # that follows them.
        text = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "",
                      text)
        if not text or text.startswith("#"):
            return
        first_word = re.match(r"[A-Za-z_]\w*", text)
        first = first_word.group(0) if first_word else ""
        if first in NS_DECL_EXCLUDE:
            return
        if re.search(r"\b(const|constexpr|constinit)\b", text):
            return
        is_static = first == "static" or text.startswith("inline static") \
            or text.startswith("static")
        if in_fn:
            if not is_static:
                return
            head = text.split("=")[0]
            if "(" in head:  # static local with function-call initializer is
                return       # still caught by the clang engine; keep the
                             # scanner conservative.
            report(path, line, "mutable-global",
                   "mutable function-local static in a deterministic layer")
            return
        if in_type:
            if not is_static:
                return
            head = text.split("=")[0]
            if "(" in head:  # static member function declaration
                return
            report(path, line, "mutable-global",
                   "mutable static data member in a deterministic layer")
            return
        # Namespace scope: a variable declaration — no parens before the
        # initializer (functions/prototypes have them), ends as a statement.
        head = text.split("=")[0]
        if "(" in head or "{" in head:
            return
        if not re.match(r"(?:inline\s+|static\s+)*[A-Za-z_][\w:<>,\s*&]*\s"
                        r"[A-Za-z_]\w*(\s*\[[^\]]*\])?\s*(=.*)?$", text):
            return
        report(path, line, "mutable-global",
               "mutable namespace-scope variable in a deterministic layer")

    def _iteration_uses(self, stmt, line):
        """Yields (root identifier, line) for range-fors and .begin()/.end()
        calls inside a statement fragment."""
        uses = []
        # Range-for: bracket-match each `for (`; split head at top-level ':'.
        for m in re.finditer(r"\bfor\s*\(", stmt):
            open_pos = m.end() - 1
            depth, i = 0, open_pos
            while i < len(stmt):
                if stmt[i] == "(":
                    depth += 1
                elif stmt[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            if i >= len(stmt):
                continue
            head = stmt[open_pos + 1:i]
            # top-level ':' that is not part of '::'
            depth = 0
            colon = -1
            for j, c in enumerate(head):
                if c in "<([":
                    depth += 1
                elif c in ">)]":
                    depth -= 1
                elif c == ":" and depth == 0:
                    before = head[j - 1] if j > 0 else ""
                    after = head[j + 1] if j + 1 < len(head) else ""
                    if before != ":" and after != ":":
                        colon = j
                        break
            if colon == -1:
                continue
            expr = head[colon + 1:].strip()
            expr = re.sub(r"^this\s*->\s*", "", expr)
            root = re.match(r"([A-Za-z_]\w*)\s*$", expr)
            if root:
                uses.append((root.group(1),
                             self._line_of(stmt, line, head)))
        for m in BEGIN_RE.finditer(stmt):
            uses.append((m.group(1), self._line_of(stmt, line, m.group(0))))
        return uses

    def _resolve(self, name, scope_stack, file_vars):
        for s in reversed(scope_stack):
            if s.kind == "fn" and name in s.locals:
                return s.locals[name]
        cls = None
        for s in reversed(scope_stack):
            if s.kind == "type" and s.name:
                cls = s.name
                break
            if s.kind == "fn" and s.class_name:
                cls = s.class_name
                break
        if cls and name in self.class_members.get(cls, {}):
            return self.class_members[cls][name]
        return file_vars.get(name)

    def _statements(self, raw_lines):
        """Yields (scope_stack, statement_text, start_line); container-typed
        function parameters are registered as locals of each 'fn' scope."""
        return iter_statements(raw_lines, _register_container_params)


# ---------------------------------------------------------------------------
# clang engine (optional: needs python clang bindings + libclang)
# ---------------------------------------------------------------------------

LIBCLANG_CANDIDATE_GLOBS = (
    "/usr/lib/llvm-*/lib/libclang.so*",
    "/usr/lib/llvm-*/lib/libclang-*.so*",
    "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
    "/usr/lib/x86_64-linux-gnu/libclang.so*",
)


def load_cindex():
    """Returns a configured clang.cindex module, or None with a reason."""
    try:
        from clang import cindex
    except ImportError as err:
        return None, f"python clang bindings unavailable ({err})"
    import glob as globmod
    try:
        cindex.Index.create()
        return cindex, None
    except Exception:  # library not found at default name; probe paths
        pass
    for pattern in LIBCLANG_CANDIDATE_GLOBS:
        for lib in sorted(globmod.glob(pattern), reverse=True):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(lib)
                cindex.Index.create()
                return cindex, None
            except Exception:
                continue
    return None, "no usable libclang shared library found"


def compile_args_for(entry):
    """Extracts clang-parseable arguments from a compile DB entry."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = entry.get("command", "").split()
    args = []
    skip = False
    for token in argv[1:]:  # drop the compiler
        if skip:
            skip = False
            continue
        if token in ("-c",):
            continue
        if token in ("-o",):
            skip = True
            continue
        if token.endswith(SOURCE_EXTS):
            continue
        args.append(token)
    return args


class ClangEngine:
    """libclang-based checks over whole translation units."""

    UNORDERED_TYPE_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)<")
    ORDERED_TYPE_RE = re.compile(r"\bstd::(?:map|multimap|set|multiset)<")

    def __init__(self, cindex, roots):
        self.cindex = cindex
        self.index = cindex.Index.create()
        self.roots = [os.path.realpath(r) for r in roots]
        self.parse_problems = []

    def _in_roots(self, path):
        real = os.path.realpath(path)
        return any(real.startswith(r + os.sep) or real == r
                   for r in self.roots)

    def lint_tu(self, path, args, report):
        ck = self.cindex.CursorKind
        try:
            tu = self.index.parse(path, args=args)
        except self.cindex.TranslationUnitLoadError as err:
            self.parse_problems.append(f"{path}: {err}")
            return
        errors = [d for d in tu.diagnostics if d.severity >= 3]
        if errors:
            self.parse_problems.append(
                f"{path}: {len(errors)} parse error(s), first: "
                f"{errors[0].spelling}")
        self._walk(tu.cursor, report)

    def _walk(self, cursor, report):
        ck = self.cindex.CursorKind
        for child in cursor.get_children():
            loc = child.location
            fname = loc.file.name if loc.file else None
            if fname is not None and not self._in_roots(fname):
                continue  # skip system/out-of-scope subtrees entirely
            if fname is not None:
                self._check(child, fname, loc.line, report)
            self._walk(child, report)

    def _canonical(self, node):
        try:
            return node.type.get_canonical().spelling or ""
        except Exception:
            return ""

    def _check(self, c, fname, line, report):
        ck = self.cindex.CursorKind
        det = in_det_layer(fname)
        exempt = norm_path(fname).endswith(EXEMPT_SUFFIX)

        if det and c.kind == ck.CXX_FOR_RANGE_STMT:
            kids = list(c.get_children())
            for kid in kids[:-1]:  # last child is the loop body
                spelling = self._canonical(kid)
                if self.UNORDERED_TYPE_RE.search(spelling):
                    report(fname, line, "unordered-iteration",
                           f"range-for over '{spelling[:80]}'")
                    break

        if det and c.kind == ck.CALL_EXPR and c.spelling in (
                "begin", "end", "cbegin", "cend", "rbegin", "rend"):
            kids = list(c.get_children())
            if kids:
                base = list(kids[0].get_children())
                target = base[0] if base else kids[0]
                spelling = self._canonical(target)
                if self.UNORDERED_TYPE_RE.search(spelling):
                    report(fname, line, "unordered-iteration",
                           f".{c.spelling}() on '{spelling[:80]}'")

        if c.kind in (ck.FIELD_DECL, ck.VAR_DECL):
            spelling = self._canonical(c)
            if det and self.ORDERED_TYPE_RE.search(spelling):
                try:
                    canon = c.type.get_canonical()
                    if canon.get_num_template_arguments() > 0:
                        arg0 = canon.get_template_argument_type(0)
                        if arg0.kind == self.cindex.TypeKind.POINTER:
                            report(fname, line, "pointer-key-ordered",
                                   f"'{c.spelling}' is '{spelling[:80]}'")
                except Exception:
                    pass
            if not exempt and in_src(fname) and RAW_MUTEX_RE.search(
                    "std::" + spelling if "std::" not in spelling
                    else spelling):
                report(fname, line, "raw-mutex",
                       f"'{c.spelling}' has type '{spelling[:60]}'")

        if det and c.kind == ck.VAR_DECL:
            parent = c.semantic_parent
            pk = parent.kind if parent is not None else None
            sc = c.storage_class
            is_const = c.type.get_canonical().is_const_qualified()
            at_ns = pk in (ck.NAMESPACE, ck.TRANSLATION_UNIT)
            at_class = pk in (ck.CLASS_DECL, ck.STRUCT_DECL,
                              ck.CLASS_TEMPLATE)
            local_static = (sc == self.cindex.StorageClass.STATIC
                            and not at_ns and not at_class)
            if not is_const and (at_ns or at_class or local_static):
                where = ("namespace-scope variable" if at_ns
                         else "static data member" if at_class
                         else "function-local static")
                report(fname, line, "mutable-global",
                       f"mutable {where} '{c.spelling}'")


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--rules", action="store_true",
                        help="list rule names and exit")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "syntax", "clang", "both"),
                        help="analysis engine(s); auto = both when "
                             "libclang is available, else syntax")
    parser.add_argument("--compile-db", metavar="PATH", default=None,
                        help="compile_commands.json (default: auto-discover "
                             "build/compile_commands.json; 'none' lints "
                             "every file found)")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="also write a JSON report (CI artifact)")
    args = parser.parse_args(argv)

    if args.rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0

    paths = args.paths or ["src"]
    compile_db = load_compile_db(args.compile_db, "imobif_astlint")
    files = collect_files(paths, compile_db, "imobif_astlint")

    want_clang = args.frontend in ("auto", "clang", "both")
    want_syntax = args.frontend in ("auto", "syntax", "both")
    cindex = None
    clang_note = None
    if want_clang:
        cindex, clang_note = load_cindex()
        if cindex is None:
            if args.frontend == "clang":
                print(f"imobif_astlint: --frontend clang requested but "
                      f"{clang_note}", file=sys.stderr)
                return 2
            if args.frontend == "both":
                print(f"imobif_astlint: warning: {clang_note}; "
                      "continuing with the syntax engine only",
                      file=sys.stderr)
            else:
                print(f"imobif_astlint: note: {clang_note}; "
                      "using the syntax engine only", file=sys.stderr)
            want_syntax = True
    if args.frontend == "clang" and cindex is not None:
        want_syntax = False

    file_lines = {}
    waivers = {}  # relpath -> WaiverSet
    suppressed = []
    findings = {}

    def waiver_set(rel):
        if rel not in waivers:
            try:
                with open(rel, encoding="utf-8") as f:
                    raw = f.read().splitlines()
            except OSError:
                raw = []
            waivers[rel] = WaiverSet(raw, WAIVER_RE)
        return waivers[rel]

    def report(path, line, rule, detail):
        rel = os.path.relpath(path) if os.path.isabs(path) else path
        if waiver_set(rel).try_suppress(line, rule):
            suppressed.append((rel, line, rule))
            return
        f = Finding(rel, line, rule, detail)
        findings[f.key()] = f

    if want_syntax:
        engine = SyntaxEngine()
        for path in files:
            try:
                with open(path, encoding="utf-8") as f:
                    lines = f.read().splitlines()
            except (OSError, UnicodeDecodeError) as err:
                print(f"imobif_astlint: unreadable {path}: {err}",
                      file=sys.stderr)
                return 2
            file_lines[path] = lines
        for path in files:
            engine.collect(path, file_lines[path])
        for path in files:
            engine.lint(path, file_lines[path], report)

    clang_problems = []
    if cindex is not None:
        roots = [p for p in paths if os.path.isdir(p)] or ["src"]
        clang_engine = ClangEngine(cindex, roots)
        tus = [p for p in files if not p.endswith(HEADER_EXTS)]
        for path in tus:
            entry = (compile_db or {}).get(os.path.realpath(path))
            if entry is not None:
                cargs = compile_args_for(entry)
            else:
                cargs = ["-std=c++20", "-Isrc",
                         "-I" + os.path.dirname(os.path.dirname(
                             os.path.abspath(__file__))) + "/src"]
            clang_engine.lint_tu(path, cargs, report)
        clang_problems = clang_engine.parse_problems
        for problem in clang_problems:
            print(f"imobif_astlint: warning: clang engine: {problem}",
                  file=sys.stderr)

    # Stale-waiver audit (ported from imobif_lint): every astlint:allow in
    # a linted file must have suppressed at least one finding in at least
    # one engine that ran. These bypass report() — waiving a stale-waiver
    # would just create another stale waiver.
    for path in files:
        rel = os.path.relpath(path) if os.path.isabs(path) else path
        for decl_line, detail in waiver_set(rel).stale(RULES,
                                                       "astlint:allow"):
            f = Finding(rel, decl_line, "stale-waiver", detail)
            findings[f.key()] = f

    ordered = sorted(findings.values(), key=lambda f: f.key())
    for finding in ordered:
        print(finding)

    if args.report:
        payload = {
            "tool": "imobif_astlint",
            "frontend": {
                "syntax": want_syntax,
                "clang": cindex is not None,
                "clang_note": clang_note,
                "clang_parse_problems": clang_problems,
            },
            "files": len(files),
            "findings": [
                {"path": f.path, "line": f.line_no, "rule": f.rule,
                 "detail": f.detail} for f in ordered
            ],
            "suppressed_by_waiver": [
                {"path": p, "line": l, "rule": r} for p, l, r in suppressed
            ],
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")

    if ordered:
        print(f"imobif_astlint: {len(ordered)} finding(s) in {len(files)} "
              f"file(s)", file=sys.stderr)
        return 1
    engines = [e for e, on in (("syntax", want_syntax),
                               ("clang", cindex is not None)) if on]
    print(f"imobif_astlint: {len(files)} file(s) clean "
          f"(engines: {', '.join(engines)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
