// Sweep-submission client for the imobif sweep farm: sends a scenario to
// an imobif_sweepd coordinator, streams progress, and writes the final
// SweepReport JSON. --local runs the identical sweep in-process through
// the same sharded runtime and report builder — the reference a farm run
// must match byte-for-byte.
// See DESIGN.md §11 and README.md "Distributed sweeps".
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exp/scenario_io.hpp"
#include "runtime/comparison_report.hpp"
#include "runtime/sweep.hpp"
#include "snap/codec.hpp"
#include "svc/client.hpp"
#include "svc/frame.hpp"
#include "util/args.hpp"
#include "util/config.hpp"

namespace {

void print_usage(const std::string& program) {
  std::cout
      << "usage: " << program
      << " --connect HOST:PORT --instances N [--json PATH]\n"
         "       [--config FILE] [--seed S] [--bench-name NAME]\n"
         "       [--unit-size N] [--quiet]\n"
         "   or: " << program
      << " --local --instances N [--json PATH] [--config FILE] [...]\n"
         "   or: " << program << " --connect HOST:PORT --shutdown\n"
         "  --connect    coordinator endpoint, e.g. 127.0.0.1:7477\n"
         "  --local      run the sweep in-process instead (the reference\n"
         "               a farm run must reproduce byte-for-byte)\n"
         "  --instances  flow instances to sweep\n"
         "  --config     scenario config file (default: scenario defaults)\n"
         "  --seed       override the scenario seed\n"
         "  --bench-name report's \"bench\" field (default remote_sweep)\n"
         "  --unit-size  instances per work unit (default: server picks)\n"
         "  --json       write the final report here (default: stdout)\n"
         "  --shutdown   ask the coordinator to exit, then return\n"
         "  --quiet      suppress progress lines\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace imobif;
  const util::Args args(argc, argv);
  const bool local = args.get_bool("local", false);
  if (args.has("help") || (!local && !args.has("connect"))) {
    print_usage(args.program());
    return args.has("help") ? 0 : 2;
  }

  try {
    svc::Endpoint endpoint;
    if (!local) endpoint = svc::parse_endpoint(args.get_string("connect", ""));
    if (args.get_bool("shutdown", false)) {
      svc::request_shutdown(endpoint.host, endpoint.port);
      std::cout << "coordinator shut down\n";
      return 0;
    }

    exp::ScenarioParams params;
    const std::string config_path = args.get_string("config", "");
    if (!config_path.empty()) {
      exp::apply_config(util::Config::from_file(config_path), params);
    }
    if (args.has("seed")) {
      params.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
    }
    const auto instances =
        static_cast<std::uint64_t>(args.get_int("instances", 0));
    const std::string bench_name =
        args.get_string("bench-name", "remote_sweep");
    const std::string json_path = args.get_string("json", "");
    const bool quiet = args.get_bool("quiet", false);

    std::string report_json;
    if (local) {
      const std::vector<exp::ComparisonPoint> points =
          runtime::run_comparison_shard(params, 0,
                                        static_cast<std::size_t>(instances));
      report_json =
          runtime::make_comparison_report(bench_name, params, points)
              .to_string();
    } else {
      svc::SubmitOptions options;
      options.host = endpoint.host;
      options.port = endpoint.port;
      options.bench_name = bench_name;
      options.params = params;
      options.instances = instances;
      options.unit_size =
          static_cast<std::uint64_t>(args.get_int("unit-size", 0));
      if (!quiet) {
        options.on_progress = [](const svc::ProgressMsg& progress) {
          std::cout << "progress: " << progress.instances_done << "/"
                    << progress.instances_total << " instances, "
                    << progress.units_done << "/" << progress.units_total
                    << " units\n"
                    << std::flush;
        };
        options.log = [](const std::string& message) {
          std::cout << message << "\n" << std::flush;
        };
      }
      report_json = svc::submit_sweep(options).report_json;
    }

    if (json_path.empty()) {
      std::cout << report_json;
    } else {
      snap::write_file_atomic(json_path, report_json);
      if (!quiet) std::cout << "wrote " << json_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "imobif_submit: " << e.what() << "\n";
    return 1;
  }
}
