// Snapshot: serialize a live InstanceRun and reconstruct it mid-flight
// (DESIGN.md §9).
//
// encode() walks the full run through the canonical codec: the scenario
// parameters / options / sampled instance (the "meta" section, everything
// needed to rebuild the object graph), then the dynamic state — simulator
// clock, per-flow progress, medium counters and channel-loss state, every
// node's position/battery/neighbor-table/flow-table, policy counters, and
// the pending event queue re-expressed as EventTags. restore() inverts it:
// InstanceRun::create_shell() rebuilds the wiring, the restore accessors
// on each layer re-seat the state, and the tagged events are re-scheduled
// in their original (time, sequence) order — so a restored run executes
// the exact event stream the original would have, bit for bit, even in a
// fresh process.
//
// state_hash() digests only the dynamic sections (not "meta"): it answers
// "are these two runs in the same state?", which is exactly what replay
// bisection compares across runs that intentionally differ in a meta
// parameter (e.g. the fault seed).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "exp/instance_run.hpp"

namespace imobif::snap {

/// Serializes the run (meta + dynamic state + pending events) as a codec
/// byte string. Throws std::invalid_argument when the run holds state a
/// snapshot cannot reconstruct (an untagged pending event).
std::string encode(exp::InstanceRun& run);

/// encode() + atomic file write (see StateWriter::write_file).
void save(exp::InstanceRun& run, const std::string& path);

/// Rebuilds a run from encode() output in any process. The returned run
/// continues exactly where the original stood; advance()ing both yields
/// identical results. Throws std::runtime_error on codec errors (bad
/// magic, unsupported version, layout mismatch).
std::unique_ptr<exp::InstanceRun> restore(const std::string& data);

/// StateReader::from_file + restore().
std::unique_ptr<exp::InstanceRun> restore_file(const std::string& path);

/// Builds a *fresh* run from a snapshot's meta section alone: same params,
/// options, mode, and sampled instance, but freshly constructed (warmup
/// re-executed, flow restarted at t=0) with the dynamic sections ignored.
/// This is the "checkpoint + seed" replay path: advance the twin to the
/// checkpoint's executed-event count and any hash mismatch pinpoints
/// nondeterminism or a behaviour change since the snapshot was taken.
std::unique_ptr<exp::InstanceRun> restore_fresh(const std::string& data);

/// 64-bit digest of the run's dynamic state (everything but "meta").
/// Equal hashes after equal event counts mean the runs have not diverged.
std::uint64_t state_hash(exp::InstanceRun& run);

/// Human-readable JSON rendering of encode() (codec debug-dump mode).
std::string debug_json(exp::InstanceRun& run);

}  // namespace imobif::snap
