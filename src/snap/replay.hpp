// Replay bisection: find the first event at which two runs diverge.
//
// Steps both runs forward one simulator event at a time, comparing their
// dynamic state hashes after every event. Because snapshots restore runs
// bit-exactly, two runs restored from the same checkpoint stay hash-equal
// forever; the first unequal hash pinpoints the earliest event whose
// effect differed — the debugging entry point when a restore, a code
// change, or an intentionally perturbed parameter (e.g. a different fault
// seed) makes two runs drift apart.
#pragma once

#include <cstdint>
#include <string>

#include "exp/instance_run.hpp"

namespace imobif::snap {

struct Divergence {
  bool diverged = false;
  /// Executed-event count at the first differing hash: the runs matched
  /// after `event_index - 1` events and differ after `event_index` (0 =
  /// they differed before either executed anything).
  std::uint64_t event_index = 0;
  std::uint64_t hash_a = 0;
  std::uint64_t hash_b = 0;
  bool finished_a = false;
  bool finished_b = false;
  /// True when the scan gave up at `max_events` without a verdict.
  bool truncated = false;

  /// One-line human-readable summary.
  std::string describe() const;
};

/// Lock-step scan. Requires both runs to stand at the same executed-event
/// count (e.g. both restored from the same checkpoint, or two fresh runs);
/// throws std::invalid_argument otherwise. `max_events` bounds the scan
/// (0 = until both runs finish).
Divergence find_divergence(exp::InstanceRun& a, exp::InstanceRun& b,
                           std::size_t max_events = 0);

}  // namespace imobif::snap
