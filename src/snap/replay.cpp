#include "snap/replay.hpp"

#include <sstream>
#include <stdexcept>

#include "net/network.hpp"
#include "snap/snapshot.hpp"

namespace imobif::snap {

std::string Divergence::describe() const {
  std::ostringstream os;
  if (diverged) {
    os << "diverged at event " << event_index << ": hash 0x" << std::hex
       << hash_a << " vs 0x" << hash_b << std::dec;
    if (finished_a != finished_b) {
      os << " (run " << (finished_a ? "A" : "B") << " finished first)";
    }
  } else if (truncated) {
    os << "no divergence within the scanned window (gave up at event "
       << event_index << ")";
  } else {
    os << "no divergence: both runs finished identically after "
       << event_index << " events";
  }
  return os.str();
}

Divergence find_divergence(exp::InstanceRun& a, exp::InstanceRun& b,
                           std::size_t max_events) {
  if (a.network().simulator().executed_events() !=
      b.network().simulator().executed_events()) {
    throw std::invalid_argument(
        "find_divergence: runs must start at the same executed-event count");
  }
  Divergence d;
  std::size_t stepped = 0;
  for (;;) {
    d.hash_a = state_hash(a);
    d.hash_b = state_hash(b);
    // at_completion(), not done(): an event-capped advance that stopped
    // exactly at the finish line has not flipped done() yet, but its state
    // is identical to a run that did — the two must not read as diverged.
    d.finished_a = a.at_completion();
    d.finished_b = b.at_completion();
    d.event_index = a.network().simulator().executed_events();
    if (d.hash_a != d.hash_b) {
      d.diverged = true;
      return d;
    }
    if (d.finished_a && d.finished_b) return d;
    if (d.finished_a != d.finished_b) {
      // Same dynamic state but one run's loop declared completion (e.g. a
      // horizon difference from perturbed meta parameters).
      d.diverged = true;
      return d;
    }
    if (max_events != 0 && stepped >= max_events) {
      d.truncated = true;
      return d;
    }
    a.advance(1);
    b.advance(1);
    ++stepped;
  }
}

}  // namespace imobif::snap
