#include "snap/codec.hpp"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace imobif::snap {

namespace {
constexpr char kMagic[4] = {'I', 'M', 'S', 'N'};
constexpr std::size_t kHeaderBytes = 8;  // magic + u32 version
}  // namespace

const char* to_string(Tag tag) {
  switch (tag) {
    case Tag::kU8:
      return "u8";
    case Tag::kU32:
      return "u32";
    case Tag::kU64:
      return "u64";
    case Tag::kI64:
      return "i64";
    case Tag::kF64:
      return "f64";
    case Tag::kBool:
      return "bool";
    case Tag::kString:
      return "string";
    case Tag::kSectionBegin:
      return "section-begin";
    case Tag::kSectionEnd:
      return "section-end";
  }
  return "?";
}

// --- StateWriter ---

StateWriter::StateWriter() {
  out_.append(kMagic, sizeof(kMagic));
  raw_u32(kCodecVersion);
}

void StateWriter::tag(Tag t) { out_.push_back(static_cast<char>(t)); }

void StateWriter::raw_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void StateWriter::raw_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void StateWriter::u8(std::uint8_t v) {
  tag(Tag::kU8);
  out_.push_back(static_cast<char>(v));
}

void StateWriter::u32(std::uint32_t v) {
  tag(Tag::kU32);
  raw_u32(v);
}

void StateWriter::u64(std::uint64_t v) {
  tag(Tag::kU64);
  raw_u64(v);
}

void StateWriter::i64(std::int64_t v) {
  tag(Tag::kI64);
  raw_u64(static_cast<std::uint64_t>(v));
}

void StateWriter::f64(double v) {
  tag(Tag::kF64);
  raw_u64(std::bit_cast<std::uint64_t>(v));
}

void StateWriter::boolean(bool v) {
  tag(Tag::kBool);
  out_.push_back(v ? '\x01' : '\x00');
}

void StateWriter::str(std::string_view v) {
  tag(Tag::kString);
  raw_u32(static_cast<std::uint32_t>(v.size()));
  out_.append(v.data(), v.size());
}

void StateWriter::begin_section(std::string_view name) {
  tag(Tag::kSectionBegin);
  raw_u32(static_cast<std::uint32_t>(name.size()));
  out_.append(name.data(), name.size());
  ++open_sections_;
}

void StateWriter::end_section() {
  if (open_sections_ <= 0) {
    throw std::logic_error("StateWriter: end_section without a begin");
  }
  tag(Tag::kSectionEnd);
  --open_sections_;
}

void StateWriter::write_file(const std::string& path) const {
  if (open_sections_ != 0) {
    throw std::logic_error("StateWriter: writing with an unclosed section");
  }
  write_file_atomic(path, out_);
}

void write_file_atomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("snapshot: cannot open '" + tmp +
                               "' for writing");
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("snapshot: short write to '" + tmp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("snapshot: rename '" + tmp + "' -> '" + path +
                             "' failed: " + ec.message());
  }
}

// --- StateReader ---

StateReader::StateReader(std::string data) : data_(std::move(data)) {
  if (data_.size() < kHeaderBytes ||
      data_.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error(
        "snapshot: bad magic — not an IMSN snapshot stream");
  }
  pos_ = sizeof(kMagic);
  version_ = raw_u32();
  if (version_ != kCodecVersion) {
    throw std::runtime_error(
        "snapshot: unsupported codec version " + std::to_string(version_) +
        " (this build reads version " + std::to_string(kCodecVersion) +
        "); the snapshot was written by a different build");
  }
}

StateReader StateReader::from_file(const std::string& path) {
  return StateReader(read_file(path));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("snapshot: cannot open '" + path + "'");
  }
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void StateReader::fail(const std::string& what) const {
  throw std::runtime_error("snapshot: " + what + " at byte offset " +
                           std::to_string(pos_));
}

Tag StateReader::take_tag(Tag expected) {
  if (pos_ >= data_.size()) {
    fail(std::string("truncated stream, expected ") + to_string(expected));
  }
  const Tag got = static_cast<Tag>(static_cast<std::uint8_t>(data_[pos_]));
  if (got != expected) {
    fail(std::string("expected ") + to_string(expected) + ", found " +
         to_string(got));
  }
  ++pos_;
  return got;
}

std::uint32_t StateReader::raw_u32() {
  if (pos_ + 4 > data_.size()) fail("truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t StateReader::raw_u64() {
  if (pos_ + 8 > data_.size()) fail("truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::uint8_t StateReader::u8() {
  take_tag(Tag::kU8);
  if (pos_ >= data_.size()) fail("truncated u8");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t StateReader::u32() {
  take_tag(Tag::kU32);
  return raw_u32();
}

std::uint64_t StateReader::u64() {
  take_tag(Tag::kU64);
  return raw_u64();
}

std::int64_t StateReader::i64() {
  take_tag(Tag::kI64);
  return static_cast<std::int64_t>(raw_u64());
}

double StateReader::f64() {
  take_tag(Tag::kF64);
  return std::bit_cast<double>(raw_u64());
}

bool StateReader::boolean() {
  take_tag(Tag::kBool);
  if (pos_ >= data_.size()) fail("truncated bool");
  return data_[pos_++] != '\x00';
}

std::string StateReader::str() {
  take_tag(Tag::kString);
  const std::uint32_t len = raw_u32();
  if (pos_ + len > data_.size()) fail("truncated string body");
  std::string out = data_.substr(pos_, len);
  pos_ += len;
  return out;
}

void StateReader::begin_section(std::string_view expected) {
  take_tag(Tag::kSectionBegin);
  const std::uint32_t len = raw_u32();
  if (pos_ + len > data_.size()) fail("truncated section name");
  const std::string_view name(data_.data() + pos_, len);
  if (name != expected) {
    fail("expected section '" + std::string(expected) + "', found '" +
         std::string(name) + "'");
  }
  pos_ += len;
}

void StateReader::end_section() { take_tag(Tag::kSectionEnd); }

// --- debug_dump ---

std::string debug_dump(const std::string& data) {
  StateReader probe(data);  // validates magic + version
  // Re-walk the raw stream with a private cursor: the typed StateReader
  // API intentionally has no "peek next tag", so the dump decodes by hand.
  std::size_t pos = kHeaderBytes;
  const auto need = [&](std::size_t n) {
    if (pos + n > data.size()) {
      throw std::runtime_error("snapshot: truncated stream at byte offset " +
                               std::to_string(pos));
    }
  };
  const auto read_u32 = [&] {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos + i]))
           << (8 * i);
    }
    pos += 4;
    return v;
  };
  const auto read_u64 = [&] {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  };

  util::Json root = util::Json::object();
  root.set("codec_version", util::Json(static_cast<std::uint64_t>(
                                probe.version())));
  // Stack of open item lists; sections push a child list.
  std::vector<util::Json> stack;
  std::vector<std::string> names;
  stack.push_back(util::Json::array());
  while (pos < data.size()) {
    const Tag tag = static_cast<Tag>(static_cast<std::uint8_t>(data[pos++]));
    switch (tag) {
      case Tag::kU8:
        need(1);
        stack.back().push_back(util::Json(
            static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[pos]))));
        ++pos;
        break;
      case Tag::kU32:
        stack.back().push_back(
            util::Json(static_cast<std::uint64_t>(read_u32())));
        break;
      case Tag::kU64:
        stack.back().push_back(util::Json(read_u64()));
        break;
      case Tag::kI64:
        stack.back().push_back(
            util::Json(static_cast<std::int64_t>(read_u64())));
        break;
      case Tag::kF64:
        stack.back().push_back(util::Json(std::bit_cast<double>(read_u64())));
        break;
      case Tag::kBool:
        need(1);
        stack.back().push_back(util::Json(data[pos] != '\x00'));
        ++pos;
        break;
      case Tag::kString: {
        const std::uint32_t len = read_u32();
        need(len);
        stack.back().push_back(util::Json(data.substr(pos, len)));
        pos += len;
        break;
      }
      case Tag::kSectionBegin: {
        const std::uint32_t len = read_u32();
        need(len);
        names.push_back(data.substr(pos, len));
        pos += len;
        stack.push_back(util::Json::array());
        break;
      }
      case Tag::kSectionEnd: {
        if (stack.size() < 2) {
          throw std::runtime_error(
              "snapshot: section-end without a matching begin at byte "
              "offset " +
              std::to_string(pos - 1));
        }
        util::Json section = util::Json::object();
        section.set("section", util::Json(names.back()));
        section.set("items", std::move(stack.back()));
        names.pop_back();
        stack.pop_back();
        stack.back().push_back(std::move(section));
        break;
      }
      default:
        throw std::runtime_error("snapshot: unknown tag byte " +
                                 std::to_string(static_cast<int>(tag)) +
                                 " at byte offset " + std::to_string(pos - 1));
    }
  }
  if (stack.size() != 1) {
    throw std::runtime_error("snapshot: unterminated section '" +
                             names.back() + "'");
  }
  root.set("items", std::move(stack.back()));
  return root.dump(2) + "\n";
}

}  // namespace imobif::snap
