#include "snap/snapshot.hpp"

#include <any>
#include <array>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <variant>
#include <vector>

#include "exp/scenario_io.hpp"
#include "mob/driver.hpp"
#include "net/fault.hpp"
#include "net/flow_table.hpp"
#include "net/neighbor_table.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/event_tag.hpp"
#include "snap/codec.hpp"
#include "traffic/generator.hpp"
#include "snap/state_hash.hpp"
#include "util/config.hpp"
#include "util/units.hpp"

namespace imobif::snap {

namespace {

// --- shared encode templates (Sink = StateWriter or StateHash) ---

template <class Sink>
void encode_agg(Sink& s, const net::MobilityAggregate& agg) {
  s.f64(agg.bits_mob.value());
  s.f64(agg.resi_mob.value());
  s.f64(agg.bits_nomob.value());
  s.f64(agg.resi_nomob.value());
}

net::MobilityAggregate decode_agg(StateReader& r) {
  net::MobilityAggregate agg;
  agg.bits_mob = util::Bits{r.f64()};
  agg.resi_mob = util::Joules{r.f64()};
  agg.bits_nomob = util::Bits{r.f64()};
  agg.resi_nomob = util::Joules{r.f64()};
  return agg;
}

template <class Sink>
void encode_flow_spec(Sink& s, const net::FlowSpec& spec) {
  s.u64(spec.id);
  s.u64(spec.source);
  s.u64(spec.destination);
  s.f64(spec.length_bits.value());
  s.f64(spec.packet_bits.value());
  s.f64(spec.rate_bps.value());
  s.u8(static_cast<std::uint8_t>(spec.strategy));
  s.boolean(spec.initially_enabled);
  s.f64(spec.length_estimate_factor);
}

net::StrategyId decode_strategy(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(net::StrategyId::kMaxLifetime)) {
    throw std::runtime_error("snapshot: invalid strategy id " +
                             std::to_string(raw));
  }
  return static_cast<net::StrategyId>(raw);
}

net::FlowSpec decode_flow_spec(StateReader& r) {
  net::FlowSpec spec;
  spec.id = static_cast<net::FlowId>(r.u64());
  spec.source = static_cast<net::NodeId>(r.u64());
  spec.destination = static_cast<net::NodeId>(r.u64());
  spec.length_bits = util::Bits{r.f64()};
  spec.packet_bits = util::Bits{r.f64()};
  spec.rate_bps = util::BitsPerSecond{r.f64()};
  spec.strategy = decode_strategy(r.u8());
  spec.initially_enabled = r.boolean();
  spec.length_estimate_factor = r.f64();
  return spec;
}

template <class Sink>
void encode_packet(Sink& s, const net::Packet& pkt) {
  s.u8(static_cast<std::uint8_t>(pkt.type));
  s.u64(pkt.sender.id);
  s.f64(pkt.sender.position.x);
  s.f64(pkt.sender.position.y);
  s.f64(pkt.sender.residual_energy.value());
  s.u64(pkt.link_dest);
  s.f64(pkt.size_bits.value());
  s.u8(static_cast<std::uint8_t>(pkt.body.index()));
  if (const auto* data = std::get_if<net::DataBody>(&pkt.body)) {
    s.u64(data->flow_id);
    s.u64(data->source);
    s.u64(data->destination);
    s.u32(data->seq);
    s.f64(data->payload_bits.value());
    s.f64(data->residual_flow_bits.value());
    s.u8(static_cast<std::uint8_t>(data->strategy));
    s.boolean(data->mobility_enabled);
    encode_agg(s, data->agg);
    s.u32(data->hop_count);
    s.boolean(data->sender_has_plan);
    s.f64(data->sender_target.x);
    s.f64(data->sender_target.y);
    s.f64(data->sender_move_cost.value());
  } else if (const auto* notify =
                 std::get_if<net::NotificationBody>(&pkt.body)) {
    s.u64(notify->flow_id);
    s.u64(notify->flow_source);
    s.boolean(notify->enable);
    encode_agg(s, notify->agg);
    s.u32(notify->decision_seq);
    s.u8(notify->attempt);
  } else if (const auto* rreq =
                 std::get_if<net::RouteRequestBody>(&pkt.body)) {
    s.u64(rreq->origin);
    s.u64(rreq->target);
    s.u32(rreq->request_id);
    s.u32(rreq->origin_seq);
    s.u32(rreq->hop_count);
  } else if (const auto* rrep = std::get_if<net::RouteReplyBody>(&pkt.body)) {
    s.u64(rrep->origin);
    s.u64(rrep->target);
    s.u32(rrep->target_seq);
    s.u32(rrep->hop_count);
  } else if (const auto* recruit = std::get_if<net::RecruitBody>(&pkt.body)) {
    s.u64(recruit->flow_id);
    s.u64(recruit->flow_source);
    s.u64(recruit->flow_destination);
    s.u64(recruit->upstream);
    s.u64(recruit->downstream);
    s.u8(static_cast<std::uint8_t>(recruit->strategy));
    s.f64(recruit->residual_flow_bits.value());
    s.boolean(recruit->mobility_enabled);
  }
  // HelloBody carries no fields.
}

net::Packet decode_packet(StateReader& r) {
  net::Packet pkt;
  pkt.type = static_cast<net::PacketType>(r.u8());
  pkt.sender.id = static_cast<net::NodeId>(r.u64());
  pkt.sender.position.x = r.f64();
  pkt.sender.position.y = r.f64();
  pkt.sender.residual_energy = util::Joules{r.f64()};
  pkt.link_dest = static_cast<net::NodeId>(r.u64());
  pkt.size_bits = util::Bits{r.f64()};
  const std::uint8_t body_index = r.u8();
  switch (body_index) {
    case 0:
      pkt.body = net::HelloBody{};
      break;
    case 1: {
      net::DataBody data;
      data.flow_id = static_cast<net::FlowId>(r.u64());
      data.source = static_cast<net::NodeId>(r.u64());
      data.destination = static_cast<net::NodeId>(r.u64());
      data.seq = r.u32();
      data.payload_bits = util::Bits{r.f64()};
      data.residual_flow_bits = util::Bits{r.f64()};
      data.strategy = decode_strategy(r.u8());
      data.mobility_enabled = r.boolean();
      data.agg = decode_agg(r);
      data.hop_count = static_cast<std::uint16_t>(r.u32());
      data.sender_has_plan = r.boolean();
      data.sender_target.x = r.f64();
      data.sender_target.y = r.f64();
      data.sender_move_cost = util::Joules{r.f64()};
      pkt.body = data;
      break;
    }
    case 2: {
      net::NotificationBody notify;
      notify.flow_id = static_cast<net::FlowId>(r.u64());
      notify.flow_source = static_cast<net::NodeId>(r.u64());
      notify.enable = r.boolean();
      notify.agg = decode_agg(r);
      notify.decision_seq = r.u32();
      notify.attempt = r.u8();
      pkt.body = notify;
      break;
    }
    case 3: {
      net::RouteRequestBody rreq;
      rreq.origin = static_cast<net::NodeId>(r.u64());
      rreq.target = static_cast<net::NodeId>(r.u64());
      rreq.request_id = r.u32();
      rreq.origin_seq = r.u32();
      rreq.hop_count = static_cast<std::uint16_t>(r.u32());
      pkt.body = rreq;
      break;
    }
    case 4: {
      net::RouteReplyBody rrep;
      rrep.origin = static_cast<net::NodeId>(r.u64());
      rrep.target = static_cast<net::NodeId>(r.u64());
      rrep.target_seq = r.u32();
      rrep.hop_count = static_cast<std::uint16_t>(r.u32());
      pkt.body = rrep;
      break;
    }
    case 5: {
      net::RecruitBody recruit;
      recruit.flow_id = static_cast<net::FlowId>(r.u64());
      recruit.flow_source = static_cast<net::NodeId>(r.u64());
      recruit.flow_destination = static_cast<net::NodeId>(r.u64());
      recruit.upstream = static_cast<net::NodeId>(r.u64());
      recruit.downstream = static_cast<net::NodeId>(r.u64());
      recruit.strategy = decode_strategy(r.u8());
      recruit.residual_flow_bits = util::Bits{r.f64()};
      recruit.mobility_enabled = r.boolean();
      pkt.body = recruit;
      break;
    }
    default:
      throw std::runtime_error("snapshot: unknown packet body index " +
                               std::to_string(body_index));
  }
  return pkt;
}

template <class Sink>
void encode_meta(Sink& s, const exp::InstanceRun& run) {
  s.begin_section("meta");
  s.str(exp::to_config_string(run.params()));
  s.u8(static_cast<std::uint8_t>(run.mode()));

  const exp::RunOptions& options = run.options();
  s.boolean(options.stop_on_first_death);
  s.f64(options.horizon_factor);
  s.f64(options.horizon_slack_s.value());
  s.boolean(options.multi_flow_blending);
  s.u64(options.extra_flows.size());
  for (const net::FlowSpec& spec : options.extra_flows) {
    encode_flow_spec(s, spec);
  }

  const exp::FlowInstance& instance = run.instance();
  s.u64(instance.positions.size());
  for (const geom::Vec2& p : instance.positions) {
    s.f64(p.x);
    s.f64(p.y);
  }
  s.u64(instance.energies.size());
  for (const util::Joules e : instance.energies) s.f64(e.value());
  s.u64(instance.source);
  s.u64(instance.destination);
  s.f64(instance.flow_bits.value());
  s.u64(instance.initial_path.size());
  for (const net::NodeId id : instance.initial_path) s.u64(id);
  s.u64(instance.mobility_seed);
  s.u64(instance.traffic_seed);

  const auto& sampler = run.sampler_rng_state();
  s.boolean(sampler.has_value());
  if (sampler.has_value()) {
    for (const std::uint64_t word : *sampler) s.u64(word);
  }

  s.f64(run.warmup_consumed_j().value());
  s.i64(run.flow_start().ticks());
  s.boolean(run.in_chunk());
  s.i64(run.chunk_end().ticks());
  s.boolean(run.done());
  s.end_section();
}

template <class Sink>
void encode_dynamic(Sink& s, exp::InstanceRun& run) {
  net::Network& network = run.network();
  sim::Simulator& sim = network.simulator();

  s.begin_section("sim");
  s.i64(sim.now().ticks());
  s.u64(sim.executed_events());
  s.end_section();

  s.begin_section("network");
  s.i64(network.last_progress().ticks());
  const std::optional<sim::Time> first_death = network.first_death_time();
  s.boolean(first_death.has_value());
  if (first_death.has_value()) s.i64(first_death->ticks());
  s.u64(network.dead_node_count());
  s.u64(network.total_data_drops());
  const std::vector<const net::FlowProgress*> progress =
      network.all_progress();
  s.u64(progress.size());
  for (const net::FlowProgress* prog : progress) {
    encode_flow_spec(s, prog->spec);
    s.f64(prog->emitted_bits.value());
    s.f64(prog->delivered_bits.value());
    s.u64(prog->packets_emitted);
    s.u64(prog->packets_delivered);
    s.u64(prog->notifications_from_dest);
    s.u64(prog->notification_retries);
    s.u64(prog->notifications_at_source);
    s.u64(prog->recruits);
    s.u64(prog->drops);
    s.boolean(prog->emission_done);
    s.boolean(prog->completed);
    s.boolean(prog->completion_time.has_value());
    if (prog->completion_time.has_value()) {
      s.i64(prog->completion_time->ticks());
    }
    s.boolean(prog->last_delivery_time.has_value());
    if (prog->last_delivery_time.has_value()) {
      s.i64(prog->last_delivery_time->ticks());
    }
  }
  s.end_section();

  s.begin_section("medium");
  const net::Medium::Counters& counters = network.medium().counters();
  s.u64(counters.broadcasts);
  s.u64(counters.unicasts);
  s.u64(counters.delivered);
  s.u64(counters.dropped_out_of_range);
  s.u64(counters.dropped_dead);
  s.u64(counters.dropped_unknown);
  s.u64(counters.dropped_injected);
  s.u64(counters.dropped_faulted);
  const net::FaultInjector* injector = network.medium().fault_injector();
  s.boolean(injector != nullptr);
  if (injector != nullptr) {
    const std::vector<net::FaultInjector::LinkSnapshot> links =
        injector->link_states();
    s.u64(links.size());
    for (const net::FaultInjector::LinkSnapshot& link : links) {
      s.u64(link.key);
      s.u64(link.packets);
      s.boolean(link.bad);
    }
    s.u64(injector->decisions());
    s.u64(injector->drops());
  }
  s.end_section();

  s.begin_section("nodes");
  s.u64(network.node_count());
  for (std::size_t i = 0; i < network.node_count(); ++i) {
    const net::Node& node = network.node(static_cast<net::NodeId>(i));
    s.f64(node.position().x);
    s.f64(node.position().y);
    s.boolean(node.faulted());
    s.f64(node.total_moved().value());

    const energy::Battery& battery = node.battery();
    s.f64(battery.initial().value());
    s.f64(battery.residual().value());
    s.f64(battery.consumed_transmit().value());
    s.f64(battery.consumed_move().value());
    s.f64(battery.consumed_other().value());

    const std::vector<net::NeighborInfo> neighbors =
        node.neighbors().all_entries();
    s.u64(neighbors.size());
    for (const net::NeighborInfo& info : neighbors) {
      s.u64(info.id);
      s.f64(info.position.x);
      s.f64(info.position.y);
      s.f64(info.residual_energy.value());
      s.i64(info.last_heard.ticks());
    }

    const std::vector<const net::FlowEntry*> entries = node.flows().all();
    s.u64(entries.size());
    for (const net::FlowEntry* entry : entries) {
      s.u64(entry->id);
      s.u64(entry->source);
      s.u64(entry->destination);
      s.u64(entry->prev);
      s.u64(entry->next);
      s.f64(entry->residual_bits.value());
      s.u8(static_cast<std::uint8_t>(entry->strategy));
      s.boolean(entry->mobility_enabled);
      s.boolean(entry->target.has_value());
      if (entry->target.has_value()) {
        s.f64(entry->target->x);
        s.f64(entry->target->y);
      }
      s.u64(entry->packets_relayed);
      s.f64(entry->moved_distance.value());
      s.boolean(entry->last_notify_seq.has_value());
      if (entry->last_notify_seq.has_value()) s.u32(*entry->last_notify_seq);
      s.boolean(entry->pending_status.has_value());
      if (entry->pending_status.has_value()) {
        s.boolean(*entry->pending_status);
      }
      encode_agg(s, entry->notify_agg);
      s.u32(entry->notify_decision_seq);
      s.u32(entry->notify_attempts);
      s.u32(entry->notify_applied_seq);
      s.u32(entry->recruits_initiated);
    }
  }
  s.end_section();

  s.begin_section("policy");
  s.u64(run.policy().movements_applied());
  s.f64(run.policy().total_distance_moved().value());
  s.u64(run.policy().recruits_initiated());
  s.end_section();

  // Background motion: (rng, model state); the pending tick itself rides
  // in the events section like every other tagged event.
  s.begin_section("mob");
  const mob::MotionDriver* motion = run.motion();
  s.boolean(motion != nullptr);
  if (motion != nullptr) {
    for (const std::uint64_t word : motion->model().rng().state()) {
      s.u64(word);
    }
    const std::vector<double> model_state = motion->model().state();
    s.u64(model_state.size());
    for (const double v : model_state) s.f64(v);
  }
  s.end_section();

  // Traffic generators, in flow-id (map) order.
  s.begin_section("traffic");
  const auto& generators = network.traffic_generators();
  s.u64(generators.size());
  for (const auto& [flow_id, generator] : generators) {
    s.u64(flow_id);
    for (const std::uint64_t word : generator->rng().state()) s.u64(word);
    const std::vector<double> gen_state = generator->state();
    s.u64(gen_state.size());
    for (const double v : gen_state) s.f64(v);
  }
  s.end_section();

  s.begin_section("events");
  const std::vector<sim::EventQueue::PendingEvent> pending =
      sim.pending_tagged();
  s.u64(pending.size());
  for (const sim::EventQueue::PendingEvent& event : pending) {
    if (!event.tag->tagged()) {
      throw std::invalid_argument(
          "snapshot: pending event at t=" +
          std::to_string(event.when.seconds()) +
          "s has no EventTag; only tagged events can be checkpointed");
    }
    s.i64(event.when.ticks());
    s.u8(static_cast<std::uint8_t>(event.tag->kind));
    s.u64(event.tag->a);
    s.u64(event.tag->b);
    if (event.tag->kind == sim::EventTag::Kind::kDeliver) {
      const auto& pkt =
          std::any_cast<const std::shared_ptr<const net::Packet>&>(
              event.tag->payload);
      encode_packet(s, *pkt);
    }
  }
  s.end_section();
}

}  // namespace

std::string encode(exp::InstanceRun& run) {
  StateWriter writer;
  encode_meta(writer, run);
  encode_dynamic(writer, run);
  return writer.data();
}

void save(exp::InstanceRun& run, const std::string& path) {
  write_file_atomic(path, encode(run));
}

std::uint64_t state_hash(exp::InstanceRun& run) {
  StateHash hash;
  encode_dynamic(hash, run);
  return hash.digest();
}

std::string debug_json(exp::InstanceRun& run) {
  return debug_dump(encode(run));
}

namespace {

/// Everything the "meta" section carries; shared by restore() and
/// restore_fresh().
struct DecodedMeta {
  exp::ScenarioParams params;
  core::MobilityMode mode = core::MobilityMode::kInformed;
  exp::RunOptions options;
  exp::FlowInstance instance;
  bool has_sampler = false;
  std::array<std::uint64_t, 4> sampler_state{};
  util::Joules warmup_consumed{0.0};
  sim::Time flow_start = sim::Time::zero();
  bool in_chunk = false;
  sim::Time chunk_end = sim::Time::zero();
  bool done = false;
};

DecodedMeta decode_meta(StateReader& r) {
  DecodedMeta meta;
  r.begin_section("meta");
  {
    const std::string config_text = r.str();
    exp::apply_config(util::Config::from_string(config_text), meta.params);
  }
  const std::uint8_t mode_raw = r.u8();
  if (mode_raw > static_cast<std::uint8_t>(core::MobilityMode::kInformed)) {
    throw std::runtime_error("snapshot: invalid mobility mode " +
                             std::to_string(mode_raw));
  }
  meta.mode = static_cast<core::MobilityMode>(mode_raw);

  meta.options.stop_on_first_death = r.boolean();
  meta.options.horizon_factor = r.f64();
  meta.options.horizon_slack_s = util::Seconds{r.f64()};
  meta.options.multi_flow_blending = r.boolean();
  const std::uint64_t extra_count = r.u64();
  meta.options.extra_flows.reserve(extra_count);
  for (std::uint64_t i = 0; i < extra_count; ++i) {
    meta.options.extra_flows.push_back(decode_flow_spec(r));
  }

  const std::uint64_t position_count = r.u64();
  meta.instance.positions.reserve(position_count);
  for (std::uint64_t i = 0; i < position_count; ++i) {
    geom::Vec2 p;
    p.x = r.f64();
    p.y = r.f64();
    meta.instance.positions.push_back(p);
  }
  const std::uint64_t energy_count = r.u64();
  meta.instance.energies.reserve(energy_count);
  for (std::uint64_t i = 0; i < energy_count; ++i) {
    meta.instance.energies.push_back(util::Joules{r.f64()});
  }
  meta.instance.source = static_cast<net::NodeId>(r.u64());
  meta.instance.destination = static_cast<net::NodeId>(r.u64());
  meta.instance.flow_bits = util::Bits{r.f64()};
  const std::uint64_t path_count = r.u64();
  meta.instance.initial_path.reserve(path_count);
  for (std::uint64_t i = 0; i < path_count; ++i) {
    meta.instance.initial_path.push_back(static_cast<net::NodeId>(r.u64()));
  }
  meta.instance.mobility_seed = r.u64();
  meta.instance.traffic_seed = r.u64();

  meta.has_sampler = r.boolean();
  if (meta.has_sampler) {
    for (std::uint64_t& word : meta.sampler_state) word = r.u64();
  }

  meta.warmup_consumed = util::Joules{r.f64()};
  meta.flow_start = sim::Time::from_ticks(r.i64());
  meta.in_chunk = r.boolean();
  meta.chunk_end = sim::Time::from_ticks(r.i64());
  meta.done = r.boolean();
  r.end_section();
  return meta;
}

}  // namespace

std::unique_ptr<exp::InstanceRun> restore_fresh(const std::string& data) {
  StateReader r(data);
  const DecodedMeta meta = decode_meta(r);
  std::unique_ptr<exp::InstanceRun> run = exp::InstanceRun::create(
      meta.instance, meta.params, meta.mode, meta.options);
  if (meta.has_sampler) run->set_sampler_rng_state(meta.sampler_state);
  return run;
}

std::unique_ptr<exp::InstanceRun> restore(const std::string& data) {
  StateReader r(data);
  const DecodedMeta meta = decode_meta(r);
  const exp::ScenarioParams& params = meta.params;

  std::unique_ptr<exp::InstanceRun> run = exp::InstanceRun::create_shell(
      meta.instance, params, meta.mode, meta.options);
  if (meta.has_sampler) run->set_sampler_rng_state(meta.sampler_state);
  run->restore_run_state(meta.warmup_consumed, meta.flow_start, meta.in_chunk,
                         meta.chunk_end, meta.done);

  net::Network& network = run->network();
  sim::Simulator& sim = network.simulator();

  // Clock first: at() rejects scheduling in the past, so every restored
  // event below needs `now` already seated.
  r.begin_section("sim");
  const sim::Time now = sim::Time::from_ticks(r.i64());
  const std::uint64_t executed = r.u64();
  sim.restore_clock(now, static_cast<std::size_t>(executed));
  r.end_section();

  r.begin_section("network");
  network.restore_last_progress(sim::Time::from_ticks(r.i64()));
  const bool has_first_death = r.boolean();
  if (has_first_death) {
    network.restore_first_death(sim::Time::from_ticks(r.i64()));
  } else {
    network.restore_first_death(std::nullopt);
  }
  network.restore_dead_nodes(static_cast<std::size_t>(r.u64()));
  network.restore_total_data_drops(r.u64());
  const std::uint64_t flow_count = r.u64();
  for (std::uint64_t i = 0; i < flow_count; ++i) {
    net::FlowProgress prog;
    prog.spec = decode_flow_spec(r);
    prog.emitted_bits = util::Bits{r.f64()};
    prog.delivered_bits = util::Bits{r.f64()};
    prog.packets_emitted = r.u64();
    prog.packets_delivered = r.u64();
    prog.notifications_from_dest = r.u64();
    prog.notification_retries = r.u64();
    prog.notifications_at_source = r.u64();
    prog.recruits = r.u64();
    prog.drops = r.u64();
    prog.emission_done = r.boolean();
    prog.completed = r.boolean();
    const bool has_completion = r.boolean();
    if (has_completion) {
      prog.completion_time = sim::Time::from_ticks(r.i64());
    }
    const bool has_last_delivery = r.boolean();
    if (has_last_delivery) {
      prog.last_delivery_time = sim::Time::from_ticks(r.i64());
    }
    network.restore_flow_progress(prog);
  }
  r.end_section();

  r.begin_section("medium");
  net::Medium::Counters counters;
  counters.broadcasts = r.u64();
  counters.unicasts = r.u64();
  counters.delivered = r.u64();
  counters.dropped_out_of_range = r.u64();
  counters.dropped_dead = r.u64();
  counters.dropped_unknown = r.u64();
  counters.dropped_injected = r.u64();
  counters.dropped_faulted = r.u64();
  network.medium().restore_counters(counters);
  const bool has_injector = r.boolean();
  if (has_injector) {
    net::FaultInjector& injector =
        network.medium().restore_fault_injector(params.fault);
    const std::uint64_t link_count = r.u64();
    for (std::uint64_t i = 0; i < link_count; ++i) {
      const std::uint64_t key = r.u64();
      const std::uint64_t packets = r.u64();
      const bool bad = r.boolean();
      injector.restore_link(key, packets, bad);
    }
    const std::uint64_t decisions = r.u64();
    const std::uint64_t drops = r.u64();
    injector.restore_counts(decisions, drops);
  }
  r.end_section();

  r.begin_section("nodes");
  const std::uint64_t node_count = r.u64();
  if (node_count != network.node_count()) {
    throw std::runtime_error(
        "snapshot: node count mismatch (snapshot " +
        std::to_string(node_count) + ", rebuilt network " +
        std::to_string(network.node_count()) + ")");
  }
  for (std::uint64_t i = 0; i < node_count; ++i) {
    net::Node& node = network.node(static_cast<net::NodeId>(i));
    geom::Vec2 position;
    position.x = r.f64();
    position.y = r.f64();
    node.set_position(position);
    node.restore_faulted(r.boolean());
    node.restore_total_moved(util::Meters{r.f64()});

    const util::Joules battery_initial{r.f64()};
    const util::Joules battery_residual{r.f64()};
    const util::Joules battery_tx{r.f64()};
    const util::Joules battery_move{r.f64()};
    const util::Joules battery_other{r.f64()};
    node.battery().restore(battery_initial, battery_residual, battery_tx,
                           battery_move, battery_other);

    const std::uint64_t neighbor_count = r.u64();
    for (std::uint64_t n = 0; n < neighbor_count; ++n) {
      const net::NodeId id = static_cast<net::NodeId>(r.u64());
      geom::Vec2 neighbor_position;
      neighbor_position.x = r.f64();
      neighbor_position.y = r.f64();
      const util::Joules residual_energy{r.f64()};
      const sim::Time last_heard = sim::Time::from_ticks(r.i64());
      node.neighbors().upsert(id, neighbor_position, residual_energy,
                              last_heard);
    }

    const std::uint64_t entry_count = r.u64();
    for (std::uint64_t n = 0; n < entry_count; ++n) {
      const net::FlowId flow_id = static_cast<net::FlowId>(r.u64());
      net::FlowEntry& entry = node.flows().ensure(flow_id);
      entry.source = static_cast<net::NodeId>(r.u64());
      entry.destination = static_cast<net::NodeId>(r.u64());
      entry.prev = static_cast<net::NodeId>(r.u64());
      entry.next = static_cast<net::NodeId>(r.u64());
      entry.residual_bits = util::Bits{r.f64()};
      entry.strategy = decode_strategy(r.u8());
      entry.mobility_enabled = r.boolean();
      const bool has_target = r.boolean();
      if (has_target) {
        geom::Vec2 target;
        target.x = r.f64();
        target.y = r.f64();
        entry.target = target;
      }
      entry.packets_relayed = r.u64();
      entry.moved_distance = util::Meters{r.f64()};
      const bool has_last_notify = r.boolean();
      if (has_last_notify) entry.last_notify_seq = r.u32();
      const bool has_pending_status = r.boolean();
      if (has_pending_status) entry.pending_status = r.boolean();
      entry.notify_agg = decode_agg(r);
      entry.notify_decision_seq = r.u32();
      entry.notify_attempts = r.u32();
      entry.notify_applied_seq = r.u32();
      entry.recruits_initiated = r.u32();
    }
    // Flow tables were rebuilt through the raw accessor; refresh the
    // node's derived NodeStore roll-up.
    node.sync_flow_aggregate();
  }
  r.end_section();

  r.begin_section("policy");
  const std::uint64_t movements = r.u64();
  const util::Meters distance_moved{r.f64()};
  const std::uint64_t recruits = r.u64();
  run->policy().restore_counters(movements, distance_moved, recruits);
  r.end_section();

  r.begin_section("mob");
  const bool has_motion = r.boolean();
  if (has_motion) {
    mob::MotionDriver* motion = run->motion();
    if (motion == nullptr) {
      throw std::runtime_error(
          "snapshot: motion state but the scenario has no mobility model");
    }
    std::array<std::uint64_t, 4> rng_state{};
    for (std::uint64_t& word : rng_state) word = r.u64();
    motion->model().rng().set_state(rng_state);
    std::vector<double> model_state(r.u64());
    for (double& v : model_state) v = r.f64();
    motion->model().restore_state(model_state);
  }
  r.end_section();

  r.begin_section("traffic");
  const std::uint64_t generator_count = r.u64();
  for (std::uint64_t i = 0; i < generator_count; ++i) {
    const net::FlowId flow_id = static_cast<net::FlowId>(r.u64());
    std::array<std::uint64_t, 4> rng_state{};
    for (std::uint64_t& word : rng_state) word = r.u64();
    std::vector<double> gen_state(r.u64());
    for (double& v : gen_state) v = r.f64();
    network.restore_traffic_state(flow_id, rng_state, gen_state);
  }
  r.end_section();

  // Events last, in encoded (time, sequence) order: the queue hands out
  // fresh sequence numbers in insertion order, so same-tick events keep
  // their exact relative ordering.
  r.begin_section("events");
  const std::uint64_t event_count = r.u64();
  for (std::uint64_t i = 0; i < event_count; ++i) {
    const sim::Time when = sim::Time::from_ticks(r.i64());
    const std::uint8_t kind_raw = r.u8();
    const std::uint64_t a = r.u64();
    const std::uint64_t b = r.u64();
    switch (static_cast<sim::EventTag::Kind>(kind_raw)) {
      case sim::EventTag::Kind::kHelloTick:
        network.node(static_cast<net::NodeId>(a)).restore_hello_at(when);
        break;
      case sim::EventTag::Kind::kEmitPacket:
        network.restore_emission_at(static_cast<net::FlowId>(a), when);
        break;
      case sim::EventTag::Kind::kDeliver: {
        auto pkt = std::make_shared<const net::Packet>(decode_packet(r));
        network.medium().restore_delivery_at(static_cast<net::NodeId>(a),
                                             std::move(pkt), when);
        break;
      }
      case sim::EventTag::Kind::kNotifyRetry:
        network.node(static_cast<net::NodeId>(a))
            .restore_notify_retry_at(static_cast<net::FlowId>(b), when);
        break;
      case sim::EventTag::Kind::kFaultSet:
        network.medium().restore_fault_event_at(static_cast<net::NodeId>(a),
                                                b != 0, when);
        break;
      case sim::EventTag::Kind::kMobTick:
        if (run->motion() == nullptr) {
          throw std::runtime_error(
              "snapshot: mob tick but the scenario has no mobility model");
        }
        run->motion()->restore_tick_at(when);
        break;
      default:
        throw std::runtime_error("snapshot: unknown event kind " +
                                 std::to_string(kind_raw));
    }
  }
  r.end_section();

  if (!r.at_end()) {
    throw std::runtime_error("snapshot: trailing bytes after event section");
  }
  return run;
}

std::unique_ptr<exp::InstanceRun> restore_file(const std::string& path) {
  return restore(read_file(path));
}

}  // namespace imobif::snap
