// Checkpointer: periodic snapshot writer for a running InstanceRun.
//
// Hooks into InstanceRun's chunk-boundary callback (the only points where
// a run can be suspended with no loop bookkeeping in flight) and saves a
// snapshot whenever enough simulated time has passed or enough packets
// have been delivered since the last write. Writes are atomic
// (tmp + rename), so a process killed mid-checkpoint leaves the previous
// snapshot intact — the crash-resume contract of the sweep engine.
#pragma once

#include <cstdint>
#include <string>

#include "exp/instance_run.hpp"
#include "sim/time.hpp"

namespace imobif::snap {

struct CheckpointPolicy {
  /// Snapshot when this much simulated time elapsed since the last write
  /// (0 disables the time trigger).
  double every_sim_s = 0.0;
  /// Snapshot when this many packets were delivered (medium counter)
  /// since the last write (0 disables the packet trigger).
  std::uint64_t every_delivered_packets = 0;

  bool enabled() const {
    return every_sim_s > 0.0 || every_delivered_packets > 0;
  }
};

// snap:transient(checkpoint driver machinery, not simulated run state)
class Checkpointer {
 public:
  Checkpointer(std::string path, CheckpointPolicy policy);

  /// Installs the chunk-boundary hook on `run`. The first hook call only
  /// baselines the triggers; writes start once a trigger fires relative
  /// to that baseline. A disabled policy installs nothing.
  void install(exp::InstanceRun& run);

  /// Snapshot `run` to the configured path right now, triggers aside.
  void write_now(exp::InstanceRun& run);

  std::uint64_t checkpoints_written() const { return written_; }
  const std::string& path() const { return path_; }

 private:
  void on_chunk_boundary(exp::InstanceRun& run);

  std::string path_;
  CheckpointPolicy policy_;
  bool armed_ = false;
  sim::Time last_time_ = sim::Time::zero();
  std::uint64_t last_delivered_ = 0;
  std::uint64_t written_ = 0;
};

}  // namespace imobif::snap
