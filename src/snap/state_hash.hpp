// StateHash: a 64-bit incremental digest over the snapshot encoding.
//
// Implements the same Sink method set as snap::StateWriter, so the
// templated encode functions in snapshot.cpp can feed either one: hashing
// a run is exactly "encode it and hash the bytes" without materializing
// the bytes. FNV-1a over the tagged byte stream — the tags (and section
// framing) are hashed too, so two different field sequences can never
// collide by concatenation.
//
// This is a divergence detector for replay bisection, not a cryptographic
// commitment; 64 bits is ample for comparing two runs event-by-event.
#pragma once

#include <cstdint>
#include <string_view>

namespace imobif::snap {

// snap:transient(hash accumulator, not simulated run state)
class StateHash {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  void str(std::string_view v);
  void begin_section(std::string_view name);
  void end_section();

  std::uint64_t digest() const { return hash_; }

 private:
  void byte(std::uint8_t b) { hash_ = (hash_ ^ b) * kPrime; }
  void bytes_le(std::uint64_t v, int n);

  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  std::uint64_t hash_ = kOffsetBasis;
};

}  // namespace imobif::snap
