#include "snap/state_hash.hpp"

#include <bit>

#include "snap/codec.hpp"

namespace imobif::snap {

void StateHash::bytes_le(std::uint64_t v, int n) {
  for (int i = 0; i < n; ++i) {
    byte(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
  }
}

void StateHash::u8(std::uint8_t v) {
  byte(static_cast<std::uint8_t>(Tag::kU8));
  byte(v);
}

void StateHash::u32(std::uint32_t v) {
  byte(static_cast<std::uint8_t>(Tag::kU32));
  bytes_le(v, 4);
}

void StateHash::u64(std::uint64_t v) {
  byte(static_cast<std::uint8_t>(Tag::kU64));
  bytes_le(v, 8);
}

void StateHash::i64(std::int64_t v) {
  byte(static_cast<std::uint8_t>(Tag::kI64));
  bytes_le(static_cast<std::uint64_t>(v), 8);
}

void StateHash::f64(double v) {
  byte(static_cast<std::uint8_t>(Tag::kF64));
  bytes_le(std::bit_cast<std::uint64_t>(v), 8);
}

void StateHash::boolean(bool v) {
  byte(static_cast<std::uint8_t>(Tag::kBool));
  byte(v ? 1 : 0);
}

void StateHash::str(std::string_view v) {
  byte(static_cast<std::uint8_t>(Tag::kString));
  bytes_le(static_cast<std::uint32_t>(v.size()), 4);
  for (const char c : v) byte(static_cast<std::uint8_t>(c));
}

void StateHash::begin_section(std::string_view name) {
  byte(static_cast<std::uint8_t>(Tag::kSectionBegin));
  bytes_le(static_cast<std::uint32_t>(name.size()), 4);
  for (const char c : name) byte(static_cast<std::uint8_t>(c));
}

void StateHash::end_section() {
  byte(static_cast<std::uint8_t>(Tag::kSectionEnd));
}

}  // namespace imobif::snap
