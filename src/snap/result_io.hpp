// Result serialization for crash-resumable sweeps (DESIGN.md §9).
//
// Two forms:
//  - result_to_json(): the canonical JSON rendering of an exp::RunResult
//    (insertion-ordered keys, shortest round-trip doubles). Fully
//    deterministic — equivalence tests compare these byte-for-byte.
//  - encode/decode_run_result(): the binary codec form, used by the sweep
//    engine's per-job result cache so a resumed sweep reloads finished
//    jobs instead of re-running them. Lossless: every field round-trips
//    bit-exactly.
#pragma once

#include <string>
#include <vector>

#include "exp/experiments.hpp"
#include "exp/runner.hpp"
#include "snap/codec.hpp"
#include "util/json.hpp"

namespace imobif::snap {

/// Canonical JSON document for a RunResult. Deterministic in the result.
util::Json result_to_json(const exp::RunResult& result);

/// Binary encoding into an open writer (one "result" section).
void encode_run_result(StateWriter& w, const exp::RunResult& result);
/// Inverse of encode_run_result; throws std::runtime_error on mismatch.
exp::RunResult decode_run_result(StateReader& r);

/// Whole-file helpers: a codec stream holding exactly one RunResult.
void save_result(const std::string& path, const exp::RunResult& result);
exp::RunResult load_result(const std::string& path);

/// Binary encoding of an ordered ComparisonPoint list (one "points"
/// section: count, then per point flow_bits/hops and the three mode
/// results). Lossless, used by the sweep service to ship a work unit's
/// results over the wire bit-exactly.
void encode_comparison_points(StateWriter& w,
                              const std::vector<exp::ComparisonPoint>& points);
std::vector<exp::ComparisonPoint> decode_comparison_points(StateReader& r);

/// Whole-stream helpers: a codec byte string holding exactly one point
/// list. comparison_points_from_bytes throws std::runtime_error on any
/// mismatch, including trailing bytes after the list.
std::string comparison_points_to_bytes(
    const std::vector<exp::ComparisonPoint>& points);
std::vector<exp::ComparisonPoint> comparison_points_from_bytes(
    const std::string& bytes);

}  // namespace imobif::snap
