#include "snap/checkpointer.hpp"

#include <utility>

#include "net/network.hpp"
#include "snap/snapshot.hpp"

namespace imobif::snap {

Checkpointer::Checkpointer(std::string path, CheckpointPolicy policy)
    : path_(std::move(path)), policy_(policy) {}

void Checkpointer::install(exp::InstanceRun& run) {
  if (!policy_.enabled()) return;
  run.set_checkpoint_hook(
      [this](exp::InstanceRun& r) { on_chunk_boundary(r); });
}

void Checkpointer::write_now(exp::InstanceRun& run) {
  save(run, path_);
  ++written_;
  last_time_ = run.network().simulator().now();
  last_delivered_ = run.network().medium().counters().delivered;
}

void Checkpointer::on_chunk_boundary(exp::InstanceRun& run) {
  const sim::Time now = run.network().simulator().now();
  const std::uint64_t delivered =
      run.network().medium().counters().delivered;
  if (!armed_) {
    // First boundary: baseline only, so a fresh run does not checkpoint
    // its (trivially re-creatable) initial state.
    armed_ = true;
    last_time_ = now;
    last_delivered_ = delivered;
    return;
  }
  const bool time_due = policy_.every_sim_s > 0.0 &&
                        (now - last_time_).seconds() >= policy_.every_sim_s;
  const bool packets_due =
      policy_.every_delivered_packets > 0 &&
      delivered - last_delivered_ >= policy_.every_delivered_packets;
  if (time_due || packets_due) write_now(run);
}

}  // namespace imobif::snap
