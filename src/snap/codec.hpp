// Canonical binary codec for simulation snapshots (DESIGN.md §9).
//
// Layout: a 4-byte magic "IMSN" and a little-endian u32 codec version,
// followed by a flat stream of tagged values. Every value is prefixed by a
// one-byte Tag, so the reader verifies it consumes exactly the layout the
// writer produced — a field-order bug surfaces immediately as a typed
// mismatch with a byte offset, never as silently garbled state. Named
// sections bracket logical groups; they keep mismatch errors local and make
// the stream self-describing enough for a generic JSON dump (debug_dump).
//
// All multi-byte values are little-endian regardless of host order; doubles
// travel as the IEEE-754 bit pattern, so encode/decode round-trips are
// bit-exact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace imobif::snap {

/// Bumped whenever the snapshot layout changes; readers reject any other
/// version with a clear error instead of misinterpreting the stream.
inline constexpr std::uint32_t kCodecVersion = 2;

enum class Tag : std::uint8_t {
  kU8 = 1,
  kU32 = 2,
  kU64 = 3,
  kI64 = 4,
  kF64 = 5,
  kBool = 6,
  kString = 7,
  kSectionBegin = 8,
  kSectionEnd = 9,
};

const char* to_string(Tag tag);

/// Serializes tagged values into an in-memory byte string. Also the model
/// for the Sink concept shared with snap::StateHash: any type with this
/// method set can consume the same encode_*() template.
// snap:transient(codec machinery, not simulated run state)
class StateWriter {
 public:
  StateWriter();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  void str(std::string_view v);
  void begin_section(std::string_view name);
  void end_section();

  const std::string& data() const { return out_; }

  /// Atomic write: the bytes land in `path + ".tmp"` and are renamed into
  /// place, so a crash mid-write never leaves a truncated snapshot under
  /// the final name. Throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  void tag(Tag t);
  void raw_u32(std::uint32_t v);
  void raw_u64(std::uint64_t v);

  std::string out_;
  int open_sections_ = 0;
};

/// Consumes a StateWriter stream with per-value type checking. Every
/// mismatch (wrong tag, wrong section name, truncation, unknown version)
/// throws std::runtime_error naming the byte offset and what was expected.
// snap:transient(codec machinery, not simulated run state)
class StateReader {
 public:
  /// Validates magic and version. Rejects any version other than
  /// kCodecVersion: snapshots are not forward- or backward-compatible.
  explicit StateReader(std::string data);

  /// Reads the whole file into memory. Throws std::runtime_error when the
  /// file is unreadable or fails header validation.
  static StateReader from_file(const std::string& path);

  std::uint32_t version() const { return version_; }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();
  void begin_section(std::string_view expected);
  void end_section();

  /// True once every byte has been consumed (well-formed stream end).
  bool at_end() const { return pos_ >= data_.size(); }

 private:
  Tag take_tag(Tag expected);
  std::uint32_t raw_u32();
  std::uint64_t raw_u64();
  [[noreturn]] void fail(const std::string& what) const;

  std::string data_;
  std::size_t pos_ = 0;
  std::uint32_t version_ = 0;
};

/// Renders any codec stream as indented JSON for inspection: sections
/// become {"section": name, "items": [...]} objects, scalars their plain
/// JSON values. Throws std::runtime_error on malformed input.
std::string debug_dump(const std::string& data);

/// Writes `data` to `path` via a same-directory ".tmp" file and an atomic
/// rename. Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, const std::string& data);

/// Reads a whole file as bytes. Throws std::runtime_error when unreadable.
std::string read_file(const std::string& path);

}  // namespace imobif::snap
