#include "snap/result_io.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "core/imobif_policy.hpp"

namespace imobif::snap {

util::Json result_to_json(const exp::RunResult& result) {
  util::Json doc = util::Json::object();
  doc.set("mode", util::Json(core::to_string(result.mode)));
  doc.set("completed", util::Json(result.completed));
  doc.set("delivered_bits", util::Json(result.delivered_bits.value()));
  doc.set("completion_s", util::Json(result.completion_s.value()));
  doc.set("transmit_energy_j", util::Json(result.transmit_energy_j.value()));
  doc.set("movement_energy_j", util::Json(result.movement_energy_j.value()));
  doc.set("total_energy_j", util::Json(result.total_energy_j.value()));
  doc.set("notifications", util::Json(result.notifications));
  doc.set("notify_retries", util::Json(result.notify_retries));
  doc.set("notifications_applied",
          util::Json(result.notifications_applied));
  doc.set("recruits", util::Json(result.recruits));
  doc.set("movements", util::Json(result.movements));
  doc.set("moved_distance_m", util::Json(result.moved_distance_m.value()));

  util::Json medium = util::Json::object();
  medium.set("broadcasts", util::Json(result.medium.broadcasts));
  medium.set("unicasts", util::Json(result.medium.unicasts));
  medium.set("delivered", util::Json(result.medium.delivered));
  medium.set("dropped_out_of_range",
             util::Json(result.medium.dropped_out_of_range));
  medium.set("dropped_dead", util::Json(result.medium.dropped_dead));
  medium.set("dropped_unknown", util::Json(result.medium.dropped_unknown));
  medium.set("dropped_injected", util::Json(result.medium.dropped_injected));
  medium.set("dropped_faulted", util::Json(result.medium.dropped_faulted));
  doc.set("medium", std::move(medium));

  doc.set("lifetime_s", util::Json(result.lifetime_s.value()));
  doc.set("any_death", util::Json(result.any_death));

  util::Json path = util::Json::array();
  for (const net::NodeId id : result.path) {
    path.push_back(util::Json(static_cast<std::uint64_t>(id)));
  }
  doc.set("path", std::move(path));

  util::Json positions = util::Json::array();
  for (const geom::Vec2& p : result.final_positions) {
    util::Json point = util::Json::array();
    point.push_back(util::Json(p.x));
    point.push_back(util::Json(p.y));
    positions.push_back(std::move(point));
  }
  doc.set("final_positions", std::move(positions));

  util::Json energies = util::Json::array();
  for (const util::Joules e : result.final_energies) {
    energies.push_back(util::Json(e.value()));
  }
  doc.set("final_energies", std::move(energies));
  return doc;
}

void encode_run_result(StateWriter& w, const exp::RunResult& result) {
  w.begin_section("result");
  w.u8(static_cast<std::uint8_t>(result.mode));
  w.boolean(result.completed);
  w.f64(result.delivered_bits.value());
  w.f64(result.completion_s.value());
  w.f64(result.transmit_energy_j.value());
  w.f64(result.movement_energy_j.value());
  w.f64(result.total_energy_j.value());
  w.u64(result.notifications);
  w.u64(result.notify_retries);
  w.u64(result.notifications_applied);
  w.u64(result.recruits);
  w.u64(result.movements);
  w.f64(result.moved_distance_m.value());
  w.u64(result.medium.broadcasts);
  w.u64(result.medium.unicasts);
  w.u64(result.medium.delivered);
  w.u64(result.medium.dropped_out_of_range);
  w.u64(result.medium.dropped_dead);
  w.u64(result.medium.dropped_unknown);
  w.u64(result.medium.dropped_injected);
  w.u64(result.medium.dropped_faulted);
  w.f64(result.lifetime_s.value());
  w.boolean(result.any_death);
  w.u64(result.path.size());
  for (const net::NodeId id : result.path) w.u64(id);
  w.u64(result.final_positions.size());
  for (const geom::Vec2& p : result.final_positions) {
    w.f64(p.x);
    w.f64(p.y);
  }
  w.u64(result.final_energies.size());
  for (const util::Joules e : result.final_energies) w.f64(e.value());
  w.end_section();
}

exp::RunResult decode_run_result(StateReader& r) {
  r.begin_section("result");
  exp::RunResult result;
  const std::uint8_t mode_raw = r.u8();
  if (mode_raw > static_cast<std::uint8_t>(core::MobilityMode::kInformed)) {
    throw std::runtime_error("result: invalid mobility mode " +
                             std::to_string(mode_raw));
  }
  result.mode = static_cast<core::MobilityMode>(mode_raw);
  result.completed = r.boolean();
  result.delivered_bits = util::Bits{r.f64()};
  result.completion_s = util::Seconds{r.f64()};
  result.transmit_energy_j = util::Joules{r.f64()};
  result.movement_energy_j = util::Joules{r.f64()};
  result.total_energy_j = util::Joules{r.f64()};
  result.notifications = r.u64();
  result.notify_retries = r.u64();
  result.notifications_applied = r.u64();
  result.recruits = r.u64();
  result.movements = r.u64();
  result.moved_distance_m = util::Meters{r.f64()};
  result.medium.broadcasts = r.u64();
  result.medium.unicasts = r.u64();
  result.medium.delivered = r.u64();
  result.medium.dropped_out_of_range = r.u64();
  result.medium.dropped_dead = r.u64();
  result.medium.dropped_unknown = r.u64();
  result.medium.dropped_injected = r.u64();
  result.medium.dropped_faulted = r.u64();
  result.lifetime_s = util::Seconds{r.f64()};
  result.any_death = r.boolean();
  // These counts can arrive over the network (comparison-point streams);
  // cap speculative reservations so hostile values fail on the truncated
  // stream instead of forcing a huge allocation.
  constexpr std::uint64_t kReserveCap = 1u << 20;
  const std::uint64_t path_count = r.u64();
  result.path.reserve(std::min(path_count, kReserveCap));
  for (std::uint64_t i = 0; i < path_count; ++i) {
    result.path.push_back(static_cast<net::NodeId>(r.u64()));
  }
  const std::uint64_t position_count = r.u64();
  result.final_positions.reserve(std::min(position_count, kReserveCap));
  for (std::uint64_t i = 0; i < position_count; ++i) {
    geom::Vec2 p;
    p.x = r.f64();
    p.y = r.f64();
    result.final_positions.push_back(p);
  }
  const std::uint64_t energy_count = r.u64();
  result.final_energies.reserve(std::min(energy_count, kReserveCap));
  for (std::uint64_t i = 0; i < energy_count; ++i) {
    result.final_energies.push_back(util::Joules{r.f64()});
  }
  r.end_section();
  return result;
}

void encode_comparison_points(StateWriter& w,
                              const std::vector<exp::ComparisonPoint>& points) {
  w.begin_section("points");
  w.u64(points.size());
  for (const exp::ComparisonPoint& point : points) {
    w.f64(point.flow_bits.value());
    w.u64(point.hops);
    encode_run_result(w, point.baseline);
    encode_run_result(w, point.cost_unaware);
    encode_run_result(w, point.informed);
  }
  w.end_section();
}

std::vector<exp::ComparisonPoint> decode_comparison_points(StateReader& r) {
  r.begin_section("points");
  const std::uint64_t count = r.u64();
  std::vector<exp::ComparisonPoint> points;
  // The count arrives over the network; cap the speculative reservation so
  // a hostile value cannot force a huge allocation before decoding fails
  // on the (necessarily truncated) stream.
  points.reserve(std::min<std::uint64_t>(count, 4096));
  for (std::uint64_t i = 0; i < count; ++i) {
    exp::ComparisonPoint point;
    point.flow_bits = util::Bits{r.f64()};
    point.hops = r.u64();
    point.baseline = decode_run_result(r);
    point.cost_unaware = decode_run_result(r);
    point.informed = decode_run_result(r);
    points.push_back(std::move(point));
  }
  r.end_section();
  return points;
}

std::string comparison_points_to_bytes(
    const std::vector<exp::ComparisonPoint>& points) {
  StateWriter writer;
  encode_comparison_points(writer, points);
  return writer.data();
}

std::vector<exp::ComparisonPoint> comparison_points_from_bytes(
    const std::string& bytes) {
  StateReader reader(bytes);
  std::vector<exp::ComparisonPoint> points = decode_comparison_points(reader);
  if (!reader.at_end()) {
    throw std::runtime_error("comparison points: trailing bytes after list");
  }
  return points;
}

void save_result(const std::string& path, const exp::RunResult& result) {
  StateWriter writer;
  encode_run_result(writer, result);
  writer.write_file(path);
}

exp::RunResult load_result(const std::string& path) {
  StateReader reader = StateReader::from_file(path);
  return decode_run_result(reader);
}

}  // namespace imobif::snap
