#include "net/node_store.hpp"

namespace imobif::net {

NodeStore::Index NodeStore::add(geom::Vec2 position, util::Joules residual) {
  const auto index = static_cast<Index>(count_);
  positions_.push_back(position);
  residuals_.push_back(residual);
  flows_.push_back(FlowAggregate{});
  ++count_;
  return index;
}

util::Joules NodeStore::total_residual() const {
  util::Joules sum{0.0};
  residuals_.for_each([&sum](util::Joules j) { sum += j; });
  return sum;
}

std::uint64_t NodeStore::total_packets_relayed() const {
  std::uint64_t sum = 0;
  flows_.for_each(
      [&sum](const FlowAggregate& agg) { sum += agg.packets_relayed; });
  return sum;
}

std::size_t NodeStore::approx_bytes() const {
  return positions_.approx_bytes() + residuals_.approx_bytes() +
         flows_.approx_bytes();
}

}  // namespace imobif::net
