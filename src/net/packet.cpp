#include "net/packet.hpp"

#include <ostream>

namespace imobif::net {

const char* to_string(PacketType type) {
  switch (type) {
    case PacketType::kHello:
      return "HELLO";
    case PacketType::kData:
      return "DATA";
    case PacketType::kNotification:
      return "NOTIFY";
    case PacketType::kRouteRequest:
      return "RREQ";
    case PacketType::kRouteReply:
      return "RREP";
    case PacketType::kRecruit:
      return "RECRUIT";
  }
  return "?";
}

const char* to_string(StrategyId id) {
  switch (id) {
    case StrategyId::kNone:
      return "none";
    case StrategyId::kMinTotalEnergy:
      return "min-total-energy";
    case StrategyId::kMaxLifetime:
      return "max-lifetime";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Packet& pkt) {
  os << to_string(pkt.type) << " from=" << pkt.sender.id << " to=";
  if (pkt.link_dest == kBroadcast) {
    os << "broadcast";
  } else {
    os << pkt.link_dest;
  }
  if (const auto* data = std::get_if<DataBody>(&pkt.body)) {
    os << " flow=" << data->flow_id << " seq=" << data->seq
       << " dst=" << data->destination
       << " mob=" << (data->mobility_enabled ? "on" : "off");
  }
  return os;
}

}  // namespace imobif::net
