#include "net/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace imobif::net {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  if (cell_size <= 0.0) {
    throw std::invalid_argument("GridIndex: cell_size must be > 0");
  }
}

GridIndex::Cell GridIndex::cell_of(geom::Vec2 p) const {
  return Cell{static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
              static_cast<std::int64_t>(std::floor(p.y / cell_size_))};
}

std::uint64_t GridIndex::key(Cell c) {
  // Interleave-free pairing: offset into unsigned halves.
  const auto ux = static_cast<std::uint64_t>(c.x + (1LL << 31));
  const auto uy = static_cast<std::uint64_t>(c.y + (1LL << 31));
  return (ux << 32) | (uy & 0xffffffffULL);
}

void GridIndex::insert(Id id, geom::Vec2 position) {
  const std::uint64_t cell_key = key(cell_of(position));
  if (!where_.emplace(id, cell_key).second) {
    throw std::invalid_argument("GridIndex: duplicate id");
  }
  buckets_[cell_key].push_back(Slot{id, position.x, position.y});
}

void GridIndex::update(Id id, geom::Vec2 new_position) {
  const auto it = where_.find(id);
  if (it == where_.end()) {
    throw std::out_of_range("GridIndex: update of unknown id");
  }
  const std::uint64_t old_key = it->second;
  const std::uint64_t new_key = key(cell_of(new_position));
  auto& old_bucket = buckets_[old_key];
  const auto slot = std::find_if(
      old_bucket.begin(), old_bucket.end(),
      [id](const Slot& s) { return s.id == id; });
  if (old_key == new_key) {
    slot->x = new_position.x;
    slot->y = new_position.y;
    return;
  }
  // Ordered erase: within-bucket insertion order is part of the broadcast
  // delivery order contract, so no swap-with-back shortcut.
  old_bucket.erase(slot);
  if (old_bucket.empty()) buckets_.erase(old_key);
  buckets_[new_key].push_back(Slot{id, new_position.x, new_position.y});
  it->second = new_key;
}

void GridIndex::remove(Id id) {
  const auto it = where_.find(id);
  if (it == where_.end()) return;
  auto& bucket = buckets_[it->second];
  bucket.erase(std::find_if(bucket.begin(), bucket.end(),
                            [id](const Slot& s) { return s.id == id; }));
  if (bucket.empty()) buckets_.erase(it->second);
  where_.erase(it);
}

std::vector<GridIndex::Id> GridIndex::query(geom::Vec2 center,
                                            double radius) const {
  std::vector<Id> out;
  for_each_in_range(center, radius,
                    [&out](Id id, geom::Vec2) { out.push_back(id); });
  return out;
}

std::optional<GridIndex::Hit> GridIndex::nearest(geom::Vec2 center,
                                                 double max_radius) const {
  if (max_radius < 0.0 || where_.empty()) return std::nullopt;
  const Cell base = cell_of(center);
  const double max_sq = max_radius * max_radius;
  const auto max_ring = static_cast<std::int64_t>(max_radius / cell_size_) + 1;
  std::optional<Hit> best;

  const auto consider = [&](const Slot& slot) {
    const double d_sq =
        geom::distance_sq(geom::Vec2{slot.x, slot.y}, center);
    if (d_sq > max_sq) return;
    // Strictly closer wins; equal distance breaks to the lowest id. Only
    // `<` comparisons so exact float ties resolve deterministically.
    const bool better =
        !best || d_sq < best->distance_sq ||
        (!(best->distance_sq < d_sq) && slot.id < best->id);
    if (better) best = Hit{slot.id, geom::Vec2{slot.x, slot.y}, d_sq};
  };
  const auto scan_cell = [&](std::int64_t cx, std::int64_t cy) {
    const auto it = buckets_.find(key(Cell{cx, cy}));
    if (it == buckets_.end()) return;
    for (const Slot& slot : it->second) consider(slot);
  };

  for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
    // Once a best exists, a wider ring can only help while its nearest
    // possible point is closer than the current best: cells at Chebyshev
    // ring r are at least (r-1)*cell away from the center.
    if (best) {
      const double ring_floor =
          static_cast<double>(ring - 1) * cell_size_;
      if (ring_floor > 0.0 && ring_floor * ring_floor > best->distance_sq) {
        break;
      }
    }
    if (ring == 0) {
      scan_cell(base.x, base.y);
      continue;
    }
    // Perimeter of the ring, same (dx, dy) sweep order as
    // for_each_in_range for determinism.
    for (std::int64_t dx = -ring; dx <= ring; ++dx) {
      if (dx == -ring || dx == ring) {
        for (std::int64_t dy = -ring; dy <= ring; ++dy) {
          scan_cell(base.x + dx, base.y + dy);
        }
      } else {
        scan_cell(base.x + dx, base.y - ring);
        scan_cell(base.x + dx, base.y + ring);
      }
    }
  }
  return best;
}

std::size_t GridIndex::approx_bytes() const {
  std::size_t bucket_bytes = 0;
  // astlint:allow(unordered-iteration): integer capacity sum, commutative
  for (const auto& [cell_key, bucket] : buckets_) {
    (void)cell_key;
    bucket_bytes += bucket.capacity() * sizeof(Slot);
  }
  // Flat estimates for the node-based maps: payload plus two pointers of
  // bookkeeping per node; a floor, not an exact figure.
  using BucketPair =
      std::pair<const std::uint64_t, std::vector<Slot>>;
  using WherePair = std::pair<const Id, std::uint64_t>;
  return bucket_bytes +
         buckets_.size() * (sizeof(BucketPair) + 2 * sizeof(void*)) +
         where_.size() * (sizeof(WherePair) + 2 * sizeof(void*));
}

}  // namespace imobif::net
