#include "net/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace imobif::net {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  if (cell_size <= 0.0) {
    throw std::invalid_argument("GridIndex: cell_size must be > 0");
  }
}

GridIndex::Cell GridIndex::cell_of(geom::Vec2 p) const {
  return Cell{static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
              static_cast<std::int64_t>(std::floor(p.y / cell_size_))};
}

std::uint64_t GridIndex::key(Cell c) {
  // Interleave-free pairing: offset into unsigned halves.
  const auto ux = static_cast<std::uint64_t>(c.x + (1LL << 31));
  const auto uy = static_cast<std::uint64_t>(c.y + (1LL << 31));
  return (ux << 32) | (uy & 0xffffffffULL);
}

void GridIndex::insert(Id id, geom::Vec2 position) {
  if (!positions_.emplace(id, position).second) {
    throw std::invalid_argument("GridIndex: duplicate id");
  }
  cells_[key(cell_of(position))].push_back(id);
}

void GridIndex::update(Id id, geom::Vec2 new_position) {
  const auto it = positions_.find(id);
  if (it == positions_.end()) {
    throw std::out_of_range("GridIndex: update of unknown id");
  }
  const Cell old_cell = cell_of(it->second);
  const Cell new_cell = cell_of(new_position);
  it->second = new_position;
  if (old_cell.x == new_cell.x && old_cell.y == new_cell.y) return;

  auto& old_bucket = cells_[key(old_cell)];
  old_bucket.erase(std::find(old_bucket.begin(), old_bucket.end(), id));
  if (old_bucket.empty()) cells_.erase(key(old_cell));
  cells_[key(new_cell)].push_back(id);
}

void GridIndex::remove(Id id) {
  const auto it = positions_.find(id);
  if (it == positions_.end()) return;
  auto& bucket = cells_[key(cell_of(it->second))];
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  if (bucket.empty()) cells_.erase(key(cell_of(it->second)));
  positions_.erase(it);
}

std::vector<GridIndex::Id> GridIndex::query(geom::Vec2 center,
                                            double radius) const {
  std::vector<Id> out;
  for_each_in_range(center, radius,
                    [&out](Id id, geom::Vec2) { out.push_back(id); });
  return out;
}

}  // namespace imobif::net
