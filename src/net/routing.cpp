#include "net/routing.hpp"

namespace imobif::net {

void RoutingProtocol::handle_control(Node& /*self*/, const Packet& /*pkt*/) {}
void RoutingProtocol::prepare_route(Node& /*origin*/, NodeId /*dest*/) {}

}  // namespace imobif::net
