#include "net/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace imobif::net {

namespace {

bool is_probability(double p) { return p >= 0.0 && p <= 1.0; }

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to);
}

}  // namespace

void FaultPlan::validate() const {
  if (!is_probability(loss_rate)) {
    throw std::invalid_argument("FaultPlan: loss_rate outside [0, 1]");
  }
  if (gilbert_elliott) {
    if (!is_probability(p_good_to_bad) || !is_probability(p_bad_to_good) ||
        !is_probability(loss_good) || !is_probability(loss_bad)) {
      throw std::invalid_argument(
          "FaultPlan: Gilbert-Elliott probabilities outside [0, 1]");
    }
    if (p_bad_to_good <= 0.0) {
      throw std::invalid_argument(
          "FaultPlan: p_bad_to_good must be > 0 (bad state must be exitable)");
    }
  }
  for (const CrashEvent& crash : crashes) {
    if (crash.node == kInvalidNode) {
      throw std::invalid_argument("FaultPlan: crash of invalid node");
    }
    if (crash.at_s < 0.0) {
      throw std::invalid_argument("FaultPlan: crash time < 0");
    }
  }
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
}

double FaultInjector::link_uniform(std::uint64_t key, std::uint64_t index,
                                   std::uint64_t draw) const {
  // Three chained splitmix64 steps fold seed, link, and (index, draw) into
  // one well-mixed word; the chain is stateless so the k-th decision on a
  // link is reproducible regardless of global traffic order.
  std::uint64_t state = plan_.seed ^ 0x6a09e667f3bcc908ULL;
  state = util::splitmix64(state) ^ key;
  state = util::splitmix64(state) ^ (index * 2 + draw);
  const std::uint64_t z = util::splitmix64(state);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

bool FaultInjector::should_drop(NodeId from, NodeId to) {
  ++decisions_;
  const std::uint64_t key = link_key(from, to);
  LinkState& link = links_[key];
  const std::uint64_t index = link.packets++;

  bool drop = false;
  if (plan_.gilbert_elliott) {
    // Advance the channel state once per packet, then sample loss in the
    // state the packet observes.
    const double transition = link_uniform(key, index, 0);
    if (link.bad) {
      if (transition < plan_.p_bad_to_good) link.bad = false;
    } else {
      if (transition < plan_.p_good_to_bad) link.bad = true;
    }
    const double loss = link.bad ? plan_.loss_bad : plan_.loss_good;
    drop = link_uniform(key, index, 1) < loss;
  } else {
    drop = link_uniform(key, index, 1) < plan_.loss_rate;
  }
  if (drop) ++drops_;
  return drop;
}

std::vector<FaultInjector::LinkSnapshot> FaultInjector::link_states() const {
  std::vector<LinkSnapshot> out;
  out.reserve(links_.size());
  // astlint:allow(unordered-iteration): extract-then-sort; order fixed below
  for (const auto& [key, state] : links_) {
    out.push_back(LinkSnapshot{key, state.packets, state.bad});
  }
  std::sort(out.begin(), out.end(),
            [](const LinkSnapshot& a, const LinkSnapshot& b) {
              return a.key < b.key;
            });
  return out;
}

void FaultInjector::restore_link(std::uint64_t key, std::uint64_t packets,
                                 bool bad) {
  links_[key] = LinkState{packets, bad};
}

}  // namespace imobif::net
