#include "net/flow_groups.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace imobif::net {

namespace {

void check_members(NodeId hub, const std::vector<NodeId>& members,
                   const char* what) {
  if (members.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty member set");
  }
  std::set<NodeId> seen;
  for (const NodeId member : members) {
    if (member == hub) {
      throw std::invalid_argument(std::string(what) +
                                  ": hub node among members");
    }
    if (!seen.insert(member).second) {
      throw std::invalid_argument(std::string(what) + ": duplicate member");
    }
  }
}

}  // namespace

std::vector<FlowId> start_one_to_many(Network& network,
                                      const OneToManySpec& spec) {
  if (spec.base_id == kInvalidFlow) {
    throw std::invalid_argument("start_one_to_many: invalid base id");
  }
  check_members(spec.source, spec.destinations, "start_one_to_many");

  std::vector<FlowId> ids;
  ids.reserve(spec.destinations.size());
  for (std::size_t i = 0; i < spec.destinations.size(); ++i) {
    FlowSpec flow;
    flow.id = spec.base_id + static_cast<FlowId>(i);
    flow.source = spec.source;
    flow.destination = spec.destinations[i];
    flow.length_bits = spec.length_bits_each;
    flow.packet_bits = spec.packet_bits;
    flow.rate_bps = spec.rate_bps;
    flow.strategy = spec.strategy;
    flow.initially_enabled = spec.initially_enabled;
    network.start_flow(flow);
    ids.push_back(flow.id);
  }
  return ids;
}

std::vector<FlowId> start_many_to_one(Network& network,
                                      const ManyToOneSpec& spec) {
  if (spec.base_id == kInvalidFlow) {
    throw std::invalid_argument("start_many_to_one: invalid base id");
  }
  check_members(spec.sink, spec.sources, "start_many_to_one");

  std::vector<FlowId> ids;
  ids.reserve(spec.sources.size());
  for (std::size_t i = 0; i < spec.sources.size(); ++i) {
    FlowSpec flow;
    flow.id = spec.base_id + static_cast<FlowId>(i);
    flow.source = spec.sources[i];
    flow.destination = spec.sink;
    flow.length_bits = spec.length_bits_each;
    flow.packet_bits = spec.packet_bits;
    flow.rate_bps = spec.rate_bps;
    flow.strategy = spec.strategy;
    flow.initially_enabled = spec.initially_enabled;
    network.start_flow(flow);
    ids.push_back(flow.id);
  }
  return ids;
}

bool group_complete(const Network& network, const std::vector<FlowId>& ids) {
  return std::all_of(ids.begin(), ids.end(), [&](FlowId id) {
    return network.progress(id).completed;
  });
}

util::Bits group_delivered_bits(const Network& network,
                                const std::vector<FlowId>& ids) {
  util::Bits sum{0.0};
  for (const FlowId id : ids) sum += network.progress(id).delivered_bits;
  return sum;
}

std::uint64_t group_notifications(const Network& network,
                                  const std::vector<FlowId>& ids) {
  std::uint64_t sum = 0;
  for (const FlowId id : ids) {
    sum += network.progress(id).notifications_from_dest;
  }
  return sum;
}

std::vector<NodeId> shared_relays(Network& network,
                                  const std::vector<FlowId>& ids,
                                  std::size_t min_flows) {
  std::map<NodeId, std::size_t> counts;
  for (const FlowId id : ids) {
    const FlowProgress& prog = network.progress(id);
    for (std::size_t n = 0; n < network.node_count(); ++n) {
      const auto node_id = static_cast<NodeId>(n);
      if (node_id == prog.spec.source || node_id == prog.spec.destination) {
        continue;
      }
      const FlowEntry* entry = network.node(node_id).flows().find(id);
      if (entry != nullptr && entry->packets_relayed > 0) {
        ++counts[node_id];
      }
    }
  }
  std::vector<NodeId> out;
  for (const auto& [node_id, count] : counts) {
    if (count >= min_flows) out.push_back(node_id);
  }
  return out;
}

}  // namespace imobif::net
