// Uniform-grid spatial index for range-limited neighbor queries.
//
// Medium::broadcast must find every node within the communication range
// of a transmitter; a linear scan is O(n) per broadcast and dominates at
// 1000+ nodes. This index hashes positions into square cells of side
// `cell_size` (use the communication range), so a range query touches at
// most the 3x3 cell block around the query point. Entries are updated
// in-place when a node moves (the medium forwards movement updates).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/vec2.hpp"

namespace imobif::net {

class GridIndex {
 public:
  using Id = std::uint32_t;

  explicit GridIndex(double cell_size);

  /// Inserts an id at a position; the id must not already be present.
  void insert(Id id, geom::Vec2 position);

  /// Moves an existing id; cheap when the cell does not change.
  void update(Id id, geom::Vec2 new_position);

  /// Removes an id; no-op when absent.
  void remove(Id id);

  std::size_t size() const { return positions_.size(); }
  bool contains(Id id) const { return positions_.count(id) != 0; }

  /// All ids within `radius` of `center` (inclusive), in unspecified
  /// order. Requires radius <= cell_size (one cell ring); larger radii
  /// widen the scanned block automatically.
  std::vector<Id> query(geom::Vec2 center, double radius) const;

  /// Visits ids within `radius` of `center` without allocating.
  template <typename Fn>
  void for_each_in_range(geom::Vec2 center, double radius, Fn&& fn) const {
    const auto ring = static_cast<std::int64_t>(radius / cell_size_) + 1;
    const Cell base = cell_of(center);
    const double radius_sq = radius * radius;
    for (std::int64_t dx = -ring; dx <= ring; ++dx) {
      for (std::int64_t dy = -ring; dy <= ring; ++dy) {
        const auto it = cells_.find(key(Cell{base.x + dx, base.y + dy}));
        if (it == cells_.end()) continue;
        for (const Id id : it->second) {
          const geom::Vec2 pos = positions_.at(id);
          if (geom::distance_sq(pos, center) <= radius_sq) fn(id, pos);
        }
      }
    }
  }

 private:
  struct Cell {
    std::int64_t x;
    std::int64_t y;
  };

  Cell cell_of(geom::Vec2 p) const;
  static std::uint64_t key(Cell c);

  double cell_size_;
  std::unordered_map<std::uint64_t, std::vector<Id>> cells_;
  std::unordered_map<Id, geom::Vec2> positions_;
};

}  // namespace imobif::net
