// Uniform-grid spatial index for range-limited neighbor queries.
//
// Medium::broadcast must find every node within the communication range
// of a transmitter; a linear scan is O(n) per broadcast and dominates at
// 1000+ nodes. This index hashes positions into square cells of side
// `cell_size` (use the communication range), so a range query touches at
// most the 3x3 cell block around the query point. Entries are updated
// in-place when a node moves (the medium forwards movement updates).
//
// Buckets store (id, x, y) inline — a range scan reads contiguous slots
// and never chases a per-candidate hash lookup, which is what caps the
// old layout well short of the 10^5-10^6-node target (DESIGN.md §12).
// Visit order is part of the determinism contract: cells are scanned in
// (dx, dy) ring order and slots within a bucket in insertion order, so
// broadcast delivery order — and with it the fig5-8 artifacts — is
// bit-identical across layouts.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geom/vec2.hpp"

namespace imobif::net {

// snap:transient(spatial mirror of node positions, refilled by the node-restore loop)
class GridIndex {
 public:
  using Id = std::uint32_t;

  explicit GridIndex(double cell_size);

  /// Inserts an id at a position; the id must not already be present.
  void insert(Id id, geom::Vec2 position);

  /// Moves an existing id; cheap when the cell does not change.
  void update(Id id, geom::Vec2 new_position);

  /// Removes an id; no-op when absent.
  void remove(Id id);

  std::size_t size() const { return where_.size(); }
  bool contains(Id id) const { return where_.count(id) != 0; }
  double cell_size() const { return cell_size_; }

  /// All ids within `radius` of `center` (inclusive), in deterministic
  /// ring/insertion order. Requires radius <= cell_size (one cell ring);
  /// larger radii widen the scanned block automatically.
  std::vector<Id> query(geom::Vec2 center, double radius) const;

  // snap:transient(query result value type)
  struct Hit {
    Id id = 0;
    geom::Vec2 position{};
    double distance_sq = 0.0;
  };
  /// Closest indexed id to `center` within `max_radius` (inclusive);
  /// ties in distance break to the lowest id. Expands cell rings outward
  /// and stops as soon as no closer hit is geometrically possible, so the
  /// common case touches a handful of cells. nullopt when nothing is in
  /// range.
  std::optional<Hit> nearest(geom::Vec2 center, double max_radius) const;

  /// Visits ids within `radius` of `center` without allocating.
  template <typename Fn>
  void for_each_in_range(geom::Vec2 center, double radius, Fn&& fn) const {
    const auto ring = static_cast<std::int64_t>(radius / cell_size_) + 1;
    const Cell base = cell_of(center);
    const double radius_sq = radius * radius;
    for (std::int64_t dx = -ring; dx <= ring; ++dx) {
      for (std::int64_t dy = -ring; dy <= ring; ++dy) {
        const auto it = buckets_.find(key(Cell{base.x + dx, base.y + dy}));
        if (it == buckets_.end()) continue;
        for (const Slot& slot : it->second) {
          const geom::Vec2 pos{slot.x, slot.y};
          if (geom::distance_sq(pos, center) <= radius_sq) fn(slot.id, pos);
        }
      }
    }
  }

  /// Lower-bound estimate of heap-allocated bytes (scale accounting).
  std::size_t approx_bytes() const;

 private:
  struct Cell {
    std::int64_t x;
    std::int64_t y;
  };
  /// One indexed node, position inline so range scans stay in the bucket.
  struct Slot {
    Id id;
    double x;
    double y;
  };

  Cell cell_of(geom::Vec2 p) const;
  static std::uint64_t key(Cell c);

  double cell_size_;
  std::unordered_map<std::uint64_t, std::vector<Slot>> buckets_;
  /// id -> key of the bucket currently holding its slot.
  std::unordered_map<Id, std::uint64_t> where_;
};

}  // namespace imobif::net
