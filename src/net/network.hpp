// Network: owns the simulator, medium, nodes, routing protocol, and flow
// pumps; collects flow progress and fate events for the experiment harness.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "energy/radio_model.hpp"
#include "net/medium.hpp"
#include "net/node.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"
// Network owns its traffic generators; the net->traffic seam is deliberate
// (DESIGN.md section 14) and a layering refactor is out of scope for the
// zero-runtime-change static-analysis PR.
// snaplint:allow(layer-violation): deliberate net->traffic seam
#include "traffic/params.hpp"
#include "util/units.hpp"

namespace imobif::traffic {
class Generator;
}  // namespace imobif::traffic

namespace imobif::net {

// snap:transient(config aggregate, persisted wholesale as scenario text)
struct NetworkConfig {
  MediumConfig medium;
  NodeConfig node;
  energy::RadioParams radio;
  /// Traffic shaping (DESIGN.md §14). kCbr keeps the legacy inline
  /// interval computation — no generators are created at all.
  traffic::Params traffic;
  std::uint64_t traffic_seed = 0;
};

/// Everything the source needs to drive one one-to-one flow.
struct FlowSpec {
  FlowId id = kInvalidFlow;
  NodeId source = kInvalidNode;
  NodeId destination = kInvalidNode;
  util::Bits length_bits{0.0};
  util::Bits packet_bits{8192.0};          ///< 1 KB payloads
  util::BitsPerSecond rate_bps{8192.0};    ///< paper: 1 KBps = 8 Kbps
  StrategyId strategy = StrategyId::kNone;
  bool initially_enabled = false;  ///< paper: "mobility is initially disabled"
  /// Multiplier applied to the true residual length when stamping the
  /// header estimate; 1.0 = perfect estimate (ablation A2 sweeps this).
  double length_estimate_factor = 1.0;
};

struct FlowProgress {
  FlowSpec spec;
  util::Bits emitted_bits{0.0};
  util::Bits delivered_bits{0.0};
  std::uint64_t packets_emitted = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t notifications_from_dest = 0;
  std::uint64_t notification_retries = 0;  ///< reliability retransmissions
  std::uint64_t notifications_at_source = 0;
  std::uint64_t recruits = 0;
  std::uint64_t drops = 0;
  bool emission_done = false;
  bool completed = false;
  std::optional<sim::Time> completion_time;
  std::optional<sim::Time> last_delivery_time;
};

// snap:transient(engine wiring rebuilt by InstanceRun::create_shell from scenario config)
class Network : public NetworkEvents {
 public:
  explicit Network(NetworkConfig config = {});
  ~Network() override;

  sim::Simulator& simulator() { return sim_; }
  Medium& medium() { return medium_; }
  const Medium& medium() const { return medium_; }
  const energy::RadioEnergyModel& radio() const { return radio_; }
  const NetworkConfig& config() const { return config_; }

  /// Adds a node; ids are dense, starting at 0. Hot per-node state lives
  /// in the struct-of-arrays store() and the Node binds to its slot.
  Node& add_node(geom::Vec2 position, util::Joules initial_energy);
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  std::size_t node_count() const { return nodes_.size(); }

  /// Struct-of-arrays hot-state columns (DESIGN.md §12), indexed by NodeId.
  const NodeStore& store() const { return store_; }

  /// Installs the routing protocol (owned by the network, shared by nodes).
  void set_routing(std::unique_ptr<RoutingProtocol> routing);
  RoutingProtocol* routing() { return routing_.get(); }

  /// Installs the mobility policy (not owned; typically a core::* object).
  void set_policy(MobilityPolicy* policy);

  /// Optional secondary observer (not owned): every NetworkEvents callback
  /// is forwarded to it after the network's own bookkeeping. Used by the
  /// exp::TraceRecorder to capture per-packet event logs.
  void set_event_tap(NetworkEvents* tap) { tap_ = tap; }

  /// Starts HELLO beaconing on every node and runs `warmup_s` simulated
  /// seconds so neighbor tables populate before flows begin.
  void start_hellos();
  void warmup(util::Seconds warmup);

  /// Registers and starts emitting a flow; emissions begin one packet
  /// interval from now.
  void start_flow(const FlowSpec& spec);

  const FlowProgress& progress(FlowId id) const;
  std::vector<const FlowProgress*> all_progress() const;
  bool all_flows_complete() const;

  /// Runs until all flows complete, no delivery progress occurs for
  /// `stall_window`, or `horizon` elapses — whichever is first.
  /// Returns simulated time elapsed during this call.
  util::Seconds run_flows(util::Seconds horizon,
                          util::Seconds stall_window = util::Seconds{120.0});

  /// Stops the event loop as soon as any node depletes (lifetime runs).
  void set_stop_on_first_death(bool stop) { stop_on_first_death_ = stop; }
  bool stop_on_first_death() const { return stop_on_first_death_; }
  std::optional<sim::Time> first_death_time() const {
    return first_death_time_;
  }
  std::size_t dead_node_count() const { return dead_nodes_; }
  std::uint64_t total_data_drops() const { return total_data_drops_; }

  /// Time of the most recent delivery progress (stall detection).
  sim::Time last_progress() const { return last_progress_; }

  // --- Checkpoint restore support (src/snap) ---

  /// Registers a flow's progress record verbatim, WITHOUT creating the
  /// source's flow entry or scheduling an emission (both restored
  /// separately from the snapshot).
  void restore_flow_progress(const FlowProgress& prog);
  /// Re-schedules the next packet emission for `id` at an absolute time.
  void restore_emission_at(FlowId id, sim::Time when);
  void restore_last_progress(sim::Time t) { last_progress_ = t; }
  void restore_first_death(std::optional<sim::Time> t) {
    first_death_time_ = t;
  }
  void restore_dead_nodes(std::size_t count) { dead_nodes_ = count; }
  void restore_total_data_drops(std::uint64_t count) {
    total_data_drops_ = count;
  }
  /// Per-flow traffic generators, keyed by flow id (empty under CBR).
  /// std::map so snapshot encoding iterates in flow-id order.
  const std::map<FlowId, std::unique_ptr<traffic::Generator>>&
  traffic_generators() const {
    return traffic_;
  }
  /// Recreates flow `id`'s generator from the snapshot's (rng, state) pair.
  void restore_traffic_state(FlowId id,
                             const std::array<std::uint64_t, 4>& rng_state,
                             const std::vector<double>& state);

  /// Aggregate energy drawn across all nodes, by category.
  util::Joules total_transmit_energy() const;
  util::Joules total_movement_energy() const;
  util::Joules total_consumed_energy() const;

  /// Current positions of all nodes (Fig-5 snapshots).
  std::vector<geom::Vec2> positions() const;

  // NetworkEvents overrides.
  void on_delivered(Node& dest, const DataBody& data) override;
  void on_notification_initiated(Node& dest,
                                 const NotificationBody& body) override;
  void on_notification_retry(Node& dest,
                             const NotificationBody& body) override;
  void on_notification_at_source(Node& source,
                                 const NotificationBody& body) override;
  void on_node_depleted(Node& node) override;
  void on_drop(Node& where, PacketType type, DropReason reason) override;
  void on_recruited(Node& recruit, const RecruitBody& body) override;

 private:
  void emit_packet(FlowId id);
  /// Inter-packet gap for the next emission: the CBR base interval,
  /// shaped by the flow's generator when one is installed.
  util::Seconds emission_interval(FlowId id, const FlowSpec& spec);
  Node::Services services();

  NetworkConfig config_;
  // snap:derived(Simulator::restore_clock)
  sim::Simulator sim_;
  energy::RadioEnergyModel radio_;
  NodeStore store_;
  Medium medium_;
  std::unique_ptr<RoutingProtocol> routing_;
  MobilityPolicy* policy_ = nullptr;
  NetworkEvents* tap_ = nullptr;
  // snap:derived(add_node)
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<FlowId, FlowProgress> flows_;
  // snap:derived(restore_traffic_state)
  std::map<FlowId, std::unique_ptr<traffic::Generator>> traffic_;
  bool stop_on_first_death_ = false;
  std::optional<sim::Time> first_death_time_;
  std::size_t dead_nodes_ = 0;
  std::uint64_t total_data_drops_ = 0;
  sim::Time last_progress_ = sim::Time::zero();
};

}  // namespace imobif::net
