// Packet formats.
//
// Every packet carries a SenderStamp (the transmitting node's identity,
// position and residual energy) — the paper embeds exactly this information
// in HELLO messages, and piggybacking it on all traffic keeps the
// flow-neighbor information used by the mobility strategies fresh.
//
// DATA packets carry the iMobif header of Section 2: the flow's mobility
// strategy and status chosen by the source, the expected residual flow
// length in bits, and the cost/benefit aggregate (sustainable-bits and
// expected-residual-energy, each for the with-mobility and without-mobility
// alternatives) folded in hop by hop.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <variant>

#include "geom/vec2.hpp"
#include "net/ids.hpp"
#include "util/units.hpp"

namespace imobif::net {

enum class PacketType : std::uint8_t {
  kHello,
  kData,
  kNotification,
  kRouteRequest,
  kRouteReply,
  kRecruit,
};

const char* to_string(PacketType type);

/// Identity of the mobility strategy stamped into DATA headers.
enum class StrategyId : std::uint8_t {
  kNone = 0,
  kMinTotalEnergy = 1,  ///< Section 3.1 (Goldenberg et al. midpoint rule)
  kMaxLifetime = 2,     ///< Section 3.2 (Theorem 1 approximation)
};

const char* to_string(StrategyId id);

/// Link-layer sender information piggybacked on every packet.
struct SenderStamp {
  NodeId id = kInvalidNode;
  geom::Vec2 position;
  util::Joules residual_energy;
};

/// The two application-independent metrics of Section 2, carried twice:
/// once for the mobility alternative and once for the non-mobility one.
/// `bits` aggregates with min at every strategy; `resi` aggregates with the
/// strategy-specific function (sum for min-total-energy, min for
/// max-lifetime).
struct MobilityAggregate {
  util::Bits bits_mob;
  util::Joules resi_mob;
  util::Bits bits_nomob;
  util::Joules resi_nomob;
};

struct HelloBody {};

struct DataBody {
  FlowId flow_id = kInvalidFlow;
  NodeId source = kInvalidNode;
  NodeId destination = kInvalidNode;
  std::uint32_t seq = 0;
  util::Bits payload_bits;
  /// Expected residual flow length in bits *after* this packet, as estimated
  /// by the source (Section 2: "the flow length estimate is provided by the
  /// application").
  util::Bits residual_flow_bits;
  StrategyId strategy = StrategyId::kNone;
  bool mobility_enabled = false;
  MobilityAggregate agg;
  std::uint16_t hop_count = 0;

  /// Hop-receiver benefit estimator (see core/imobif_policy.hpp): the
  /// transmitting node's planned position and the movement energy it still
  /// needs to get there. Local information, carried one hop downstream so
  /// the receiver can evaluate the hop with both endpoints at their planned
  /// positions.
  bool sender_has_plan = false;
  geom::Vec2 sender_target;
  util::Joules sender_move_cost;
};

/// Destination -> source status-change request (Figure 1,
/// UpdateMobilityStatus). Carries the aggregate that justified the change.
struct NotificationBody {
  FlowId flow_id = kInvalidFlow;
  NodeId flow_source = kInvalidNode;
  bool enable = false;
  MobilityAggregate agg;
  /// Destination's per-flow decision number, monotonically increasing.
  /// The source applies a notification only when its sequence exceeds the
  /// last applied one, so a retransmission of an old decision arriving
  /// after a newer one (possible once paths repair mid-flow) can never
  /// flip the status backwards.
  std::uint32_t decision_seq = 0;
  /// 0 on the first transmission of a decision; > 0 on reliability-layer
  /// retransmissions (saturates at 255).
  std::uint8_t attempt = 0;
};

/// AODV-lite route discovery (substrate referenced by the framework
/// description; the evaluation itself uses greedy geographic routing).
struct RouteRequestBody {
  NodeId origin = kInvalidNode;
  NodeId target = kInvalidNode;
  std::uint32_t request_id = 0;
  std::uint32_t origin_seq = 0;
  std::uint16_t hop_count = 0;
};

struct RouteReplyBody {
  NodeId origin = kInvalidNode;
  NodeId target = kInvalidNode;
  std::uint32_t target_seq = 0;
  std::uint16_t hop_count = 0;
};

/// Relay-recruitment invitation (paper Section 5 future work: optimizing
/// the *selection* of intermediate flow nodes): an existing relay with an
/// expensive hop invites an idle neighbor to join the flow path between
/// itself and its current next hop. The invitee pre-installs a flow entry
/// so subsequent DATA packets route through it.
struct RecruitBody {
  FlowId flow_id = kInvalidFlow;
  NodeId flow_source = kInvalidNode;
  NodeId flow_destination = kInvalidNode;
  NodeId upstream = kInvalidNode;    ///< the recruiting relay
  NodeId downstream = kInvalidNode;  ///< the recruiter's old next hop
  StrategyId strategy = StrategyId::kNone;
  util::Bits residual_flow_bits;
  bool mobility_enabled = false;
};

struct Packet {
  PacketType type = PacketType::kHello;
  SenderStamp sender;
  NodeId link_dest = kBroadcast;  ///< kBroadcast or a unicast node id
  util::Bits size_bits;
  std::variant<HelloBody, DataBody, NotificationBody, RouteRequestBody,
               RouteReplyBody, RecruitBody>
      body;
};

std::ostream& operator<<(std::ostream& os, const Packet& pkt);

}  // namespace imobif::net
