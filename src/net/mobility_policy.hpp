// Seam between the network substrate and the iMobif decision logic.
//
// net::Node drives the packet pipeline and calls into this interface at the
// four points of the Figure-1 algorithm; src/core provides the
// implementation (strategies, aggregate functions, cost/benefit math). The
// interface lives in net so the substrate has no dependency on core.
#pragma once

#include <optional>

#include "net/flow_table.hpp"
#include "net/packet.hpp"

namespace imobif::net {

class Node;

class MobilityPolicy {
 public:
  virtual ~MobilityPolicy() = default;

  /// Called at the flow source before each packet leaves: initializes the
  /// header aggregate with the source's own (bits, resi) contribution.
  virtual void seed_at_source(Node& source, DataBody& data,
                              FlowEntry& entry) = 0;

  /// Called at a relay after the flow entry is refreshed and the next hop
  /// resolved, before forwarding (Figure 1 lines 13-21): computes the
  /// preferred position, the local cost/benefit values, and folds them into
  /// the packet aggregate. Must not move the node.
  virtual void on_relay(Node& relay, DataBody& data, FlowEntry& entry) = 0;

  /// Called at a relay after the packet has been forwarded (Figure 1 lines
  /// 23-26): applies one bounded mobility step toward the cached target when
  /// the carried status enables mobility.
  virtual void after_forward(Node& relay, FlowEntry& entry) = 0;

  /// Called at the destination (Figure 1, UpdateMobilityStatus): compares
  /// the aggregates and returns the desired status when it differs from the
  /// status the packet carried; nullopt keeps the current status.
  virtual std::optional<bool> evaluate_at_destination(
      Node& dest, const DataBody& data, FlowEntry& entry) = 0;
};

}  // namespace imobif::net
