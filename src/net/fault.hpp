// Fault injection for the wireless medium (DESIGN.md §7).
//
// A FaultPlan describes everything that can go wrong in a run: independent
// per-delivery packet loss, bursty Gilbert–Elliott channel loss, and a node
// crash/pause schedule. The plan is pure data; the FaultInjector turns it
// into per-packet drop decisions that are *stateless hashes* of
// (seed, link, per-link packet index). Every fault sequence is therefore
// deterministic and replayable from the seed alone: adding nodes, reordering
// unrelated traffic, or changing the worker count of a sweep never perturbs
// the decision a given link makes for its k-th packet.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ids.hpp"

namespace imobif::net {

// snap:transient(pure-data plan, persisted wholesale as scenario config text)
struct FaultPlan {
  /// Independent per-delivery drop probability in [0, 1), applied to every
  /// unicast delivery and to each broadcast receiver separately. Channel
  /// loss is *silent*: the sender pays transmit energy and sees no
  /// link-layer failure (unlike dead/unknown destinations).
  double loss_rate = 0.0;

  /// Gilbert–Elliott burst loss: each link runs a two-state (good/bad)
  /// Markov chain advanced once per packet; the packet is then dropped
  /// with the state's loss probability. Stationary loss fraction is
  /// p_good_to_bad / (p_good_to_bad + p_bad_to_good) * loss_bad (+ the
  /// good-state term); mean bad-burst length is 1 / p_bad_to_good.
  /// Overrides `loss_rate` when enabled.
  bool gilbert_elliott = false;
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 0.1;
  double loss_good = 0.0;
  double loss_bad = 1.0;

  /// Node crash/pause schedule, executed through the simulator: at `at_s`
  /// (absolute simulated seconds) the node stops transmitting, receiving,
  /// and beaconing; with `duration_s` >= 0 it resumes that many seconds
  /// later, otherwise the crash is permanent. Deliveries to a crashed node
  /// fail link-layer-visibly (like a dead node), so routing can repair
  /// around it.
  // snap:transient(fault plan value type, persisted as scenario config text)
  struct CrashEvent {
    NodeId node = kInvalidNode;
    double at_s = 0.0;
    double duration_s = -1.0;  ///< < 0 = permanent crash
  };
  std::vector<CrashEvent> crashes;

  /// Seed for every drop decision; independent of the scenario seed so a
  /// sweep can vary the fault world while replaying identical instances.
  std::uint64_t seed = 0;

  /// True when the plan injects anything at all; a default-constructed
  /// plan is a no-op and installing it changes nothing.
  bool has_loss() const { return loss_rate > 0.0 || gilbert_elliott; }
  bool enabled() const { return has_loss() || !crashes.empty(); }

  void validate() const;
};

/// Turns a FaultPlan's loss model into per-delivery drop decisions.
/// One injector serves one Medium (one simulated network); sweeps build a
/// fresh Network per job, so injectors are never shared across threads.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Decides the fate of the next packet on the directed link from -> to.
  /// The decision depends only on (plan.seed, from, to, k) where k counts
  /// this link's prior decisions — never on other links or node count.
  bool should_drop(NodeId from, NodeId to);

  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t drops() const { return drops_; }

  // --- Checkpoint restore support (src/snap) ---

  /// One directed link's channel state, keyed by (from << 32) | to.
  struct LinkSnapshot {
    std::uint64_t key = 0;
    std::uint64_t packets = 0;
    bool bad = false;
  };
  /// All per-link states, sorted by key for deterministic encoding.
  std::vector<LinkSnapshot> link_states() const;
  void restore_link(std::uint64_t key, std::uint64_t packets, bool bad);
  void restore_counts(std::uint64_t decisions, std::uint64_t drops) {
    decisions_ = decisions;
    drops_ = drops;
  }

 private:
  struct LinkState {
    std::uint64_t packets = 0;
    bool bad = false;  ///< Gilbert–Elliott channel state
  };

  /// Uniform [0, 1) hash of (seed, link, packet index, draw index).
  double link_uniform(std::uint64_t link_key, std::uint64_t index,
                      std::uint64_t draw) const;

  // snap:transient(pure-data config, re-installed from the scenario by create_shell)
  FaultPlan plan_;
  // snap:derived(restore_link)
  std::unordered_map<std::uint64_t, LinkState> links_;
  std::uint64_t decisions_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace imobif::net
