// Greedy geographic routing — the evaluation substrate of Section 4
// ("The network uses greedy routing to forward packets from the source to
// the destination").
//
// Next hop = the live neighbor strictly closer to the destination than the
// current node, minimizing remaining distance. Candidates come from the
// node's HELLO-fed neighbor table; the destination's own position comes from
// the ground-truth oracle (standard geographic-routing assumption,
// documented as the GPS substitution).
//
// LineBiasedGreedyRouting additionally penalizes candidates that lie far
// from the current-position->destination line. This implements the paper's
// future-work idea of optimizing relay *selection*: relays picked near the
// line need less relocation before the mobility strategies reach their
// optimal on-line configuration.
#pragma once

#include "net/medium.hpp"
#include "net/routing.hpp"

namespace imobif::net {

class GreedyRouting : public RoutingProtocol {
 public:
  explicit GreedyRouting(const Medium& medium) : medium_(medium) {}

  const char* name() const override { return "greedy"; }
  NodeId next_hop(const Node& self, NodeId dest) override;

 protected:
  bool usable(NodeId id) const;

  const Medium& medium_;
};

class LineBiasedGreedyRouting : public GreedyRouting {
 public:
  /// `line_weight` scales the off-line-distance penalty (0 = plain greedy).
  LineBiasedGreedyRouting(const Medium& medium, double line_weight)
      : GreedyRouting(medium), line_weight_(line_weight) {}

  const char* name() const override { return "line-biased-greedy"; }
  NodeId next_hop(const Node& self, NodeId dest) override;

 private:
  // snap:transient(routing config rebuilt from scenario params by create_shell)
  double line_weight_;
};

/// Computes the full greedy path over ground-truth positions; used by the
/// experiment harness to pre-check that a sampled (source, destination)
/// pair is greedy-routable, and by tests. Returns an empty vector when
/// greedy forwarding reaches a dead end.
std::vector<NodeId> greedy_path_oracle(const Medium& medium, NodeId source,
                                       NodeId dest);

}  // namespace imobif::net
