#include "net/neighbor_table.hpp"

namespace imobif::net {

void NeighborTable::upsert(NodeId id, geom::Vec2 position,
                           double residual_energy, sim::Time now) {
  auto& entry = entries_[id];
  entry.id = id;
  entry.position = position;
  entry.residual_energy = residual_energy;
  entry.last_heard = now;
}

std::optional<NeighborInfo> NeighborTable::find(NodeId id,
                                                sim::Time now) const {
  const auto it = entries_.find(id);
  if (it == entries_.end() || expired(it->second, now)) return std::nullopt;
  return it->second;
}

void NeighborTable::purge(sim::Time now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (expired(it->second, now)) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<NeighborInfo> NeighborTable::snapshot(sim::Time now) const {
  std::vector<NeighborInfo> out;
  out.reserve(entries_.size());
  for (const auto& [id, info] : entries_) {
    if (!expired(info, now)) out.push_back(info);
  }
  return out;
}

}  // namespace imobif::net
