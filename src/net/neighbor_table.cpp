#include "net/neighbor_table.hpp"

#include <algorithm>

namespace imobif::net {

void NeighborTable::upsert(NodeId id, geom::Vec2 position,
                           util::Joules residual_energy, sim::Time now) {
  auto& entry = entries_[id];
  entry.id = id;
  entry.position = position;
  entry.residual_energy = residual_energy;
  entry.last_heard = now;
}

std::optional<NeighborInfo> NeighborTable::find(NodeId id,
                                                sim::Time now) const {
  const auto it = entries_.find(id);
  if (it == entries_.end() || expired(it->second, now)) return std::nullopt;
  return it->second;
}

void NeighborTable::purge(sim::Time now) {
  // Only the surviving set matters here, and set membership is
  // independent of visit order.
  // astlint:allow(unordered-iteration): erase-if, order-insensitive
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (expired(it->second, now)) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<NeighborInfo> NeighborTable::snapshot(sim::Time now) const {
  // Sorted by id so every scan over the snapshot (routing, recruitment)
  // visits neighbors in a deterministic order independent of hash layout —
  // a prerequisite for bit-identical checkpoint/restore equivalence.
  std::vector<NeighborInfo> out;
  out.reserve(entries_.size());
  // astlint:allow(unordered-iteration): extract-then-sort; order fixed below
  for (const auto& [id, info] : entries_) {
    if (!expired(info, now)) out.push_back(info);
  }
  std::sort(out.begin(), out.end(),
            [](const NeighborInfo& a, const NeighborInfo& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<NeighborInfo> NeighborTable::all_entries() const {
  std::vector<NeighborInfo> out;
  out.reserve(entries_.size());
  // astlint:allow(unordered-iteration): extract-then-sort; order fixed below
  for (const auto& [id, info] : entries_) out.push_back(info);
  std::sort(out.begin(), out.end(),
            [](const NeighborInfo& a, const NeighborInfo& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace imobif::net
