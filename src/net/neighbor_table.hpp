// Neighbor table (framework Section 2, node state item 2):
// "a neighbor table with the identity, location, and residual energy of each
// neighbor", populated from HELLO beacons (and refreshed from the sender
// stamp of any overheard packet). Entries expire after a timeout.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "geom/vec2.hpp"
#include "net/ids.hpp"
#include "sim/time.hpp"
#include "util/units.hpp"

namespace imobif::net {

struct NeighborInfo {
  NodeId id = kInvalidNode;
  geom::Vec2 position;
  util::Joules residual_energy;
  sim::Time last_heard;
};

class NeighborTable {
 public:
  explicit NeighborTable(sim::Time timeout = sim::Time::from_seconds(45.0))
      : timeout_(timeout) {}

  /// Inserts or refreshes an entry.
  void upsert(NodeId id, geom::Vec2 position, util::Joules residual_energy,
              sim::Time now);

  /// Entry lookup; expired entries are treated as absent.
  std::optional<NeighborInfo> find(NodeId id, sim::Time now) const;

  /// Drops entries not heard from within the timeout.
  void purge(sim::Time now);

  /// Live entries as of `now`, sorted by id (expired entries excluded but
  /// not removed).
  std::vector<NeighborInfo> snapshot(sim::Time now) const;

  /// Every stored entry — including expired ones awaiting a purge — sorted
  /// by id. Checkpointing serializes these verbatim (restoring only live
  /// entries would be behaviorally equivalent but break state-hash
  /// comparison against the original).
  std::vector<NeighborInfo> all_entries() const;

  std::size_t size() const { return entries_.size(); }
  sim::Time timeout() const { return timeout_; }
  void set_timeout(sim::Time timeout) { timeout_ = timeout; }

 private:
  bool expired(const NeighborInfo& info, sim::Time now) const {
    return now - info.last_heard > timeout_;
  }

  // snap:transient(config from NodeConfig, re-applied at construction)
  sim::Time timeout_;
  // snap:derived(upsert)
  std::unordered_map<NodeId, NeighborInfo> entries_;
};

}  // namespace imobif::net
