#include "net/medium.hpp"

#include <stdexcept>

#include "net/node.hpp"

namespace imobif::net {

Medium::Medium(sim::Simulator& sim, MediumConfig config)
    : sim_(sim),
      config_(config),
      index_(config.comm_range_m > 0.0 ? config.comm_range_m : 1.0) {
  if (config_.comm_range_m <= 0.0) {
    throw std::invalid_argument("Medium: comm_range must be > 0");
  }
}

void Medium::attach(Node& node) {
  const NodeId id = node.id();
  if (id < by_id_.size() && by_id_[id] != nullptr) {
    throw std::invalid_argument("Medium: duplicate node id");
  }
  if (id >= by_id_.size()) by_id_.resize(id + 1, nullptr);
  nodes_.push_back(&node);
  by_id_[id] = &node;
  index_.insert(id, node.position());
}

void Medium::node_moved(NodeId id, geom::Vec2 new_position) {
  // Nodes not (yet) attached to this medium are ignored: tests construct
  // free-standing nodes, and attach() will index the final position.
  if (find_node(id) != nullptr) index_.update(id, new_position);
}

Node* Medium::find_node(NodeId id) const {
  return id < by_id_.size() ? by_id_[id] : nullptr;
}

geom::Vec2 Medium::true_position(NodeId id) const {
  const Node* node = find_node(id);
  if (node == nullptr) {
    throw std::out_of_range("Medium::true_position: unknown node");
  }
  return node->position();
}

void Medium::deliver_later(Node& receiver, const Packet& pkt) {
  ++counters_.delivered;
  schedule_delivery(receiver, std::make_shared<const Packet>(pkt),
                    sim_.now() + config_.prop_delay);
}

void Medium::schedule_delivery(Node& receiver,
                               std::shared_ptr<const Packet> pkt,
                               sim::Time when) {
  Node* target = &receiver;
  // The tag shares ownership of the packet with the closure, so the
  // snapshot encoder can serialize the in-flight copy without another one.
  sim::EventTag tag = sim::EventTag::deliver(receiver.id(), pkt);
  sim_.at(
      when,
      [target, pkt = std::move(pkt)] { target->handle_receive(*pkt); },
      std::move(tag));
}

void Medium::restore_delivery_at(NodeId receiver,
                                 std::shared_ptr<const Packet> pkt,
                                 sim::Time when) {
  Node* node = find_node(receiver);
  if (node == nullptr) {
    throw std::out_of_range("Medium::restore_delivery_at: unknown node");
  }
  // No counter bump: `delivered` was incremented when the original
  // transmission was scheduled, before the snapshot.
  schedule_delivery(*node, std::move(pkt), when);
}

void Medium::broadcast(const Node& sender, const Packet& pkt) {
  ++counters_.broadcasts;
  const geom::Vec2 origin = sender.position();
  index_.for_each_in_range(
      origin, config_.comm_range_m, [&](NodeId id, geom::Vec2) {
        if (id == sender.id()) return;
        Node* node = by_id_[id];
        if (!node->alive()) return;
        if (node->faulted()) {
          ++counters_.dropped_faulted;
          return;
        }
        if (injector_ != nullptr && injector_->should_drop(sender.id(), id)) {
          ++counters_.dropped_injected;
          return;
        }
        deliver_later(*node, pkt);
      });
}

bool Medium::unicast(const Node& sender, NodeId dest, const Packet& pkt) {
  ++counters_.unicasts;
  Node* node = find_node(dest);
  if (node == nullptr) {
    ++counters_.dropped_unknown;
    return false;
  }
  if (!node->alive()) {
    ++counters_.dropped_dead;
    return false;
  }
  // A crashed/paused node fails link-layer-visibly like a dead one, so the
  // sender's local repair can route around it.
  if (node->faulted()) {
    ++counters_.dropped_faulted;
    return false;
  }
  if (config_.unicast_range_gated &&
      geom::distance(sender.position(), node->position()) >
          config_.comm_range_m) {
    ++counters_.dropped_out_of_range;
    return false;
  }
  if (injector_ != nullptr && injector_->should_drop(sender.id(), dest)) {
    ++counters_.dropped_injected;
    return true;  // silent loss: accepted by the channel, never delivered
  }
  deliver_later(*node, pkt);
  return true;
}

void Medium::schedule_fault_set(NodeId id, bool on, sim::Time when) {
  sim_.at(
      when,
      [this, id, on] {
        Node* node = find_node(id);
        if (node != nullptr) node->set_faulted(on);
      },
      sim::EventTag::fault_set(id, on));
}

void Medium::install_fault_plan(const FaultPlan& plan) {
  plan.validate();
  if (!plan.enabled()) return;
  if (plan.has_loss()) injector_ = std::make_unique<FaultInjector>(plan);
  for (const FaultPlan::CrashEvent& crash : plan.crashes) {
    schedule_fault_set(crash.node, true, sim::Time::from_seconds(crash.at_s));
    if (crash.duration_s >= 0.0) {
      schedule_fault_set(
          crash.node, false,
          sim::Time::from_seconds(crash.at_s + crash.duration_s));
    }
  }
}

FaultInjector& Medium::restore_fault_injector(const FaultPlan& plan) {
  plan.validate();
  injector_ = std::make_unique<FaultInjector>(plan);
  return *injector_;
}

void Medium::restore_fault_event_at(NodeId id, bool on, sim::Time when) {
  schedule_fault_set(id, on, when);
}

}  // namespace imobif::net
