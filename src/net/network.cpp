#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

// Network owns its traffic generators; the net->traffic seam is deliberate
// (DESIGN.md section 14) and a layering refactor is out of scope for the
// zero-runtime-change static-analysis PR.
// snaplint:allow(layer-violation): deliberate net->traffic seam
#include "traffic/generator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace imobif::net {

using util::Bits;
using util::BitsPerSecond;
using util::Joules;
using util::Seconds;

Network::Network(NetworkConfig config)
    : config_(config),
      radio_(config.radio),
      medium_(sim_, config.medium) {}

Network::~Network() = default;

Node::Services Network::services() {
  Node::Services s;
  s.sim = &sim_;
  s.medium = &medium_;
  s.radio = &radio_;
  s.routing = routing_.get();
  s.policy = policy_;
  s.events = this;
  s.store = &store_;
  return s;
}

Node& Network::add_node(geom::Vec2 position, Joules initial_energy) {
  const auto id = static_cast<NodeId>(nodes_.size());
  const NodeStore::Index slot = store_.add(position, initial_energy);
  IMOBIF_ASSERT(slot == id, "NodeStore slots must track dense node ids");
  nodes_.push_back(std::make_unique<Node>(id, position, initial_energy,
                                          services(), config_.node));
  medium_.attach(*nodes_.back());
  return *nodes_.back();
}

Node& Network::node(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("Network::node: bad id");
  return *nodes_[id];
}

const Node& Network::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Network::node: bad id");
  return *nodes_[id];
}

namespace {
// Services are captured by value inside each Node at construction; when the
// routing protocol or policy is installed later, refresh them. Node exposes
// services() as const ref only, so Network re-creates nodes' service
// bindings through a dedicated hook.
}  // namespace

void Network::set_routing(std::unique_ptr<RoutingProtocol> routing) {
  routing_ = std::move(routing);
  for (auto& n : nodes_) n->rebind_services(services());
}

void Network::set_policy(MobilityPolicy* policy) {
  policy_ = policy;
  for (auto& n : nodes_) n->rebind_services(services());
}

void Network::start_hellos() {
  for (auto& n : nodes_) n->start_hello();
}

void Network::warmup(Seconds warmup) {
  start_hellos();
  sim_.run(sim_.now() + sim::Time::from_seconds(warmup.value()));
}

void Network::start_flow(const FlowSpec& spec) {
  if (spec.id == kInvalidFlow || spec.source >= nodes_.size() ||
      spec.destination >= nodes_.size() || spec.source == spec.destination) {
    throw std::invalid_argument("start_flow: invalid spec");
  }
  if (spec.length_bits <= Bits{0.0} || spec.packet_bits <= Bits{0.0} ||
      spec.rate_bps <= BitsPerSecond{0.0}) {
    throw std::invalid_argument("start_flow: non-positive sizes");
  }
  auto [it, inserted] = flows_.emplace(spec.id, FlowProgress{});
  if (!inserted) throw std::invalid_argument("start_flow: duplicate flow id");
  it->second.spec = spec;

  // The source's flow entry carries the authoritative residual length and
  // the current mobility status (flipped by notifications).
  Node& src = node(spec.source);
  FlowEntry& entry = src.flows().ensure(spec.id);
  entry.source = spec.source;
  entry.destination = spec.destination;
  entry.strategy = spec.strategy;
  entry.residual_bits = spec.length_bits;
  entry.mobility_enabled = spec.initially_enabled;
  src.sync_flow_aggregate();

  if (config_.traffic.enabled()) {
    // Per-flow generator stream forked from the instance's traffic seed:
    // flow id keys the fork so multi-flow runs stay order-independent.
    std::uint64_t fork = config_.traffic_seed ^
                         (0x9e3779b97f4a7c15ULL * (spec.id + 1));
    traffic_.emplace(spec.id, traffic::make_generator(config_.traffic,
                                                      util::splitmix64(fork)));
  }
  const Seconds interval = emission_interval(spec.id, spec);
  sim_.after(
      sim::Time::from_seconds(interval.value()),
      [this, id = spec.id] { emit_packet(id); },
      sim::EventTag::emit_packet(spec.id));
}

Seconds Network::emission_interval(FlowId id, const FlowSpec& spec) {
  const Seconds base = spec.packet_bits / spec.rate_bps;
  const auto it = traffic_.find(id);
  if (it == traffic_.end()) return base;
  return it->second->next_interval(base);
}

void Network::restore_traffic_state(
    FlowId id, const std::array<std::uint64_t, 4>& rng_state,
    const std::vector<double>& state) {
  if (!config_.traffic.enabled()) {
    throw std::invalid_argument(
        "restore_traffic_state: network has no traffic model");
  }
  auto generator = traffic::make_generator(config_.traffic, 1);
  generator->rng().set_state(rng_state);
  generator->restore_state(state);
  traffic_.insert_or_assign(id, std::move(generator));
}

void Network::emit_packet(FlowId id) {
  auto& prog = flows_.at(id);
  const FlowSpec& spec = prog.spec;
  Node& src = node(spec.source);
  FlowEntry* entry = src.flows().find(id);
  if (!src.alive() || entry == nullptr) {
    prog.emission_done = true;
    return;
  }
  if (entry->residual_bits <= Bits{0.0}) {
    prog.emission_done = true;
    return;
  }
  const Bits bits = util::min(spec.packet_bits, entry->residual_bits);
  entry->residual_bits -= bits;

  DataBody data;
  data.flow_id = id;
  data.source = spec.source;
  data.destination = spec.destination;
  data.seq = static_cast<std::uint32_t>(prog.packets_emitted);
  data.payload_bits = bits;
  data.residual_flow_bits =
      entry->residual_bits * spec.length_estimate_factor;
  data.strategy = spec.strategy;
  data.mobility_enabled = entry->mobility_enabled;

  ++prog.packets_emitted;
  prog.emitted_bits += bits;
  // originate_data() adopts the header's residual estimate into the source's
  // flow entry, but the source must keep tracking the *true* residual: with
  // an estimate factor != 1 the header value would otherwise be fed back
  // into the next packet's estimate, compounding the factor every packet
  // until the estimate overflows to infinity.
  const Bits true_residual_bits = entry->residual_bits;
  src.originate_data(data);
  entry->residual_bits = true_residual_bits;

  const Seconds interval = emission_interval(id, spec);
  sim_.after(sim::Time::from_seconds(interval.value()),
             [this, id] { emit_packet(id); },
             sim::EventTag::emit_packet(id));
}

const FlowProgress& Network::progress(FlowId id) const {
  return flows_.at(id);
}

void Network::restore_flow_progress(const FlowProgress& prog) {
  auto [it, inserted] = flows_.emplace(prog.spec.id, prog);
  if (!inserted) {
    throw std::invalid_argument(
        "restore_flow_progress: duplicate flow id");
  }
}

void Network::restore_emission_at(FlowId id, sim::Time when) {
  if (flows_.count(id) == 0) {
    throw std::invalid_argument("restore_emission_at: unknown flow");
  }
  sim_.at(when, [this, id] { emit_packet(id); },
          sim::EventTag::emit_packet(id));
}

std::vector<const FlowProgress*> Network::all_progress() const {
  // Sorted by flow id for deterministic multi-flow reporting and encoding.
  std::vector<const FlowProgress*> out;
  out.reserve(flows_.size());
  // astlint:allow(unordered-iteration): extract-then-sort; order fixed below
  for (const auto& [id, prog] : flows_) out.push_back(&prog);
  std::sort(out.begin(), out.end(),
            [](const FlowProgress* a, const FlowProgress* b) {
              return a->spec.id < b->spec.id;
            });
  return out;
}

bool Network::all_flows_complete() const {
  if (flows_.empty()) return true;
  // astlint:allow(unordered-iteration): all_of is a commutative bool fold
  return std::all_of(flows_.begin(), flows_.end(),
                     [](const auto& kv) { return kv.second.completed; });
}

Seconds Network::run_flows(Seconds horizon_s, Seconds stall_window_s) {
  const sim::Time start = sim_.now();
  const sim::Time horizon =
      start + sim::Time::from_seconds(horizon_s.value());
  const sim::Time stall_window =
      sim::Time::from_seconds(stall_window_s.value());
  last_progress_ = sim_.now();

  // Chunked execution: between chunks, check completion and stall.
  const sim::Time chunk = sim::Time::from_seconds(5.0);
  while (sim_.now() < horizon) {
    if (all_flows_complete()) break;
    if (stop_on_first_death_ && first_death_time_.has_value()) break;
    if (sim_.now() - last_progress_ > stall_window) break;
    const sim::Time next = std::min(horizon, sim_.now() + chunk);
    sim_.run(next);
    if (sim_.pending_events() == 0) break;
  }
  return Seconds{(sim_.now() - start).seconds()};
}

Joules Network::total_transmit_energy() const {
  Joules sum{0.0};
  for (const auto& n : nodes_) sum += n->battery().consumed_transmit();
  return sum;
}

Joules Network::total_movement_energy() const {
  Joules sum{0.0};
  for (const auto& n : nodes_) sum += n->battery().consumed_move();
  return sum;
}

Joules Network::total_consumed_energy() const {
  Joules sum{0.0};
  for (const auto& n : nodes_) sum += n->battery().consumed_total();
  return sum;
}

std::vector<geom::Vec2> Network::positions() const {
  std::vector<geom::Vec2> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->position());
  return out;
}

void Network::on_delivered(Node& dest, const DataBody& data) {
  auto it = flows_.find(data.flow_id);
  if (it == flows_.end()) return;
  FlowProgress& prog = it->second;
  prog.delivered_bits += data.payload_bits;
  ++prog.packets_delivered;
  prog.last_delivery_time = sim_.now();
  last_progress_ = sim_.now();
  if (!prog.completed &&
      prog.delivered_bits >= prog.spec.length_bits - Bits{1e-9}) {
    prog.completed = true;
    prog.completion_time = sim_.now();
  }
  if (all_flows_complete()) sim_.stop();
  if (tap_ != nullptr) tap_->on_delivered(dest, data);
}

void Network::on_notification_initiated(Node& dest,
                                        const NotificationBody& body) {
  auto it = flows_.find(body.flow_id);
  if (it != flows_.end()) ++it->second.notifications_from_dest;
  if (tap_ != nullptr) tap_->on_notification_initiated(dest, body);
}

void Network::on_notification_retry(Node& dest,
                                    const NotificationBody& body) {
  auto it = flows_.find(body.flow_id);
  if (it != flows_.end()) ++it->second.notification_retries;
  if (tap_ != nullptr) tap_->on_notification_retry(dest, body);
}

void Network::on_notification_at_source(Node& source,
                                        const NotificationBody& body) {
  auto it = flows_.find(body.flow_id);
  if (it != flows_.end()) ++it->second.notifications_at_source;
  if (tap_ != nullptr) tap_->on_notification_at_source(source, body);
}

void Network::on_node_depleted(Node& node) {
  ++dead_nodes_;
  if (!first_death_time_.has_value()) first_death_time_ = sim_.now();
  if (stop_on_first_death_) sim_.stop();
  if (tap_ != nullptr) tap_->on_node_depleted(node);
}

void Network::on_recruited(Node& recruit, const RecruitBody& body) {
  auto it = flows_.find(body.flow_id);
  if (it != flows_.end()) ++it->second.recruits;
  if (tap_ != nullptr) tap_->on_recruited(recruit, body);
}

void Network::on_drop(Node& where, PacketType type, DropReason why) {
  // Attributing a drop to a specific flow is impossible without the packet
  // body; data drops are tracked globally per network instead.
  if (type == PacketType::kData) ++total_data_drops_;
  if (tap_ != nullptr) tap_->on_drop(where, type, why);
}

}  // namespace imobif::net
