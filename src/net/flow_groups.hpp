// One-to-many and many-to-one flow groups (paper Section 2: "imobif
// supports multiple one-to-one, one-to-many, and many-to-one flows").
//
// Following the technical-report extension, a group is realized as a set
// of one-to-one flows that naturally share relays; a shared relay combines
// the per-flow movement targets via the policy's residual-bits-weighted
// blending (ImobifPolicy::set_multi_flow_blending). Each destination runs
// its own cost/benefit evaluation and notifies the common source
// independently, so a branch whose mobility does not pay stays put while
// another branch moves — exactly the per-flow granularity the framework's
// header mechanism provides.
#pragma once

#include <vector>

#include "net/network.hpp"

namespace imobif::net {

// snap:transient(experiment input spec, not run state)
struct OneToManySpec {
  FlowId base_id = kInvalidFlow;  ///< member i gets id base_id + i
  NodeId source = kInvalidNode;
  std::vector<NodeId> destinations;
  util::Bits length_bits_each{0.0};
  util::Bits packet_bits{8192.0};
  util::BitsPerSecond rate_bps{8192.0};
  StrategyId strategy = StrategyId::kMinTotalEnergy;
  bool initially_enabled = false;
};

// snap:transient(experiment input spec, not run state)
struct ManyToOneSpec {
  FlowId base_id = kInvalidFlow;
  std::vector<NodeId> sources;
  NodeId sink = kInvalidNode;
  util::Bits length_bits_each{0.0};
  util::Bits packet_bits{8192.0};
  util::BitsPerSecond rate_bps{8192.0};
  StrategyId strategy = StrategyId::kMaxLifetime;
  bool initially_enabled = false;
};

/// Starts one flow per destination; returns the member flow ids in
/// destination order. Throws on invalid specs (empty destination set,
/// duplicate destinations, source among destinations).
std::vector<FlowId> start_one_to_many(Network& network,
                                      const OneToManySpec& spec);

/// Starts one flow per source toward the sink; returns member flow ids in
/// source order.
std::vector<FlowId> start_many_to_one(Network& network,
                                      const ManyToOneSpec& spec);

/// Group-level progress helpers.
bool group_complete(const Network& network, const std::vector<FlowId>& ids);
util::Bits group_delivered_bits(const Network& network,
                                const std::vector<FlowId>& ids);
std::uint64_t group_notifications(const Network& network,
                                  const std::vector<FlowId>& ids);

/// Relays serving at least `min_flows` of the group's flows — the shared
/// tree trunk (useful for asserting that a group actually shares relays).
std::vector<NodeId> shared_relays(Network& network,
                                  const std::vector<FlowId>& ids,
                                  std::size_t min_flows = 2);

}  // namespace imobif::net
