// Routing protocol seam.
//
// The framework sits on top of "lower level routing protocols" (Section 2);
// the evaluation uses greedy geographic routing (Section 4). Both are
// provided, plus an AODV-lite distance-vector protocol matching the
// framework's AODV reference, and a line-biased greedy variant implementing
// the paper's future-work idea of optimizing relay *selection*.
#pragma once

#include "net/ids.hpp"
#include "net/packet.hpp"

namespace imobif::net {

class Node;

class RoutingProtocol {
 public:
  virtual ~RoutingProtocol() = default;

  virtual const char* name() const = 0;

  /// Next hop from `self` toward `dest`; kInvalidNode when no route exists.
  virtual NodeId next_hop(const Node& self, NodeId dest) = 0;

  /// Control-packet hook (RREQ/RREP); default protocols ignore these.
  virtual void handle_control(Node& self, const Packet& pkt);

  /// Proactive route setup before a flow starts (AODV discovery); greedy
  /// protocols need none.
  virtual void prepare_route(Node& origin, NodeId dest);
};

}  // namespace imobif::net
