// Node: a wireless ad hoc node with position, battery, neighbor table, flow
// table, HELLO beaconing, and the Figure-1 data-plane pipeline.
//
// The node implements the *mechanics* (receive, forward, transmit energy
// accounting, bounded movement); all mobility *decisions* are delegated to
// the installed MobilityPolicy (src/core).
#pragma once

#include <cstdint>
#include <functional>

#include "energy/battery.hpp"
#include "energy/radio_model.hpp"
#include "geom/vec2.hpp"
#include "net/flow_table.hpp"
#include "net/ids.hpp"
#include "net/medium.hpp"
#include "net/mobility_policy.hpp"
#include "net/neighbor_table.hpp"
#include "net/node_store.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace imobif::net {

enum class DropReason : std::uint8_t {
  kDeadNode,
  kNoRoute,
  kNoEnergy,
  kOutOfRange,
  kUnknownFlow,
  kFaulted,       ///< node crashed/paused by a fault plan
  kStaleNotify,   ///< notification older than the last applied decision
};

const char* to_string(DropReason reason);

/// Observer through which Network collects flow progress and fate events.
class NetworkEvents {
 public:
  virtual ~NetworkEvents() = default;
  virtual void on_delivered(Node& dest, const DataBody& data);
  virtual void on_notification_initiated(Node& dest,
                                         const NotificationBody& body);
  /// The destination retransmitted an unconfirmed status-change request
  /// (reliability layer; body.attempt > 0).
  virtual void on_notification_retry(Node& dest,
                                     const NotificationBody& body);
  virtual void on_notification_at_source(Node& source,
                                         const NotificationBody& body);
  virtual void on_node_depleted(Node& node);
  virtual void on_drop(Node& where, PacketType type, DropReason reason);
  /// A node accepted a relay-recruitment invitation into a flow.
  virtual void on_recruited(Node& recruit, const RecruitBody& body);
};

// snap:transient(per-node config, persisted wholesale as scenario text)
struct NodeConfig {
  sim::Time hello_interval = sim::Time::from_seconds(10.0);
  sim::Time hello_jitter = sim::Time::from_seconds(1.0);
  sim::Time neighbor_timeout = sim::Time::from_seconds(45.0);
  util::Bits hello_bits{256.0};
  util::Bits notification_bits{512.0};
  /// When false, HELLO beacons are free (ideal control plane); when true
  /// they are charged at full-range power like any transmission.
  bool charge_hello_energy = true;
  /// Notification reliability (DESIGN.md §7): when retry_cap > 0 the
  /// destination retransmits an unconfirmed status-change request after
  /// notify_retry_timeout (doubling on every attempt) until the source's
  /// stamped status confirms the flip or the cap is hit; 0 reproduces the
  /// paper's fire-and-forget notification exactly.
  std::uint32_t notify_retry_cap = 0;
  sim::Time notify_retry_timeout = sim::Time::from_seconds(2.0);
  /// Localization error radius: the position a node *advertises* (in
  /// HELLO beacons and packet stamps) is its true position plus a
  /// deterministic pseudo-random offset uniform in a disc of this radius,
  /// modeling Assumption 2 backed by imperfect localization (src/loc)
  /// instead of GPS. 0 = perfect positions. Transmit power control still
  /// uses true distances (the radio, not the position service, handles
  /// that); only *decisions* (routing, strategy targets, cost estimates)
  /// see the error.
  util::Meters position_error_m{0.0};
};

class Node {
 public:
  // snap:transient(non-owning wiring re-established by rebind_services during create_shell)
  struct Services {
    sim::Simulator* sim = nullptr;
    Medium* medium = nullptr;
    const energy::RadioEnergyModel* radio = nullptr;
    RoutingProtocol* routing = nullptr;
    MobilityPolicy* policy = nullptr;
    NetworkEvents* events = nullptr;
    /// Struct-of-arrays hot-state store (DESIGN.md §12). When set and
    /// holding a slot for this node's id, position and residual energy
    /// live in the store's columns; when null (free-standing test nodes)
    /// the node falls back to inline members. Behavior is identical.
    NodeStore* store = nullptr;
  };

  Node(NodeId id, geom::Vec2 position, util::Joules initial_energy,
       Services services, NodeConfig config = {});

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  geom::Vec2 position() const { return pos(); }
  void set_position(geom::Vec2 p);
  /// The position this node advertises in stamps/HELLOs — the true one
  /// plus the configured localization error (see NodeConfig).
  geom::Vec2 advertised_position() const;
  bool alive() const { return !battery_.depleted(); }
  /// Crash/pause state driven by the medium's fault plan: a faulted node
  /// neither transmits, receives, nor beacons until resumed.
  bool faulted() const { return faulted_; }
  void set_faulted(bool faulted);
  sim::Time now() const;

  energy::Battery& battery() { return battery_; }
  const energy::Battery& battery() const { return battery_; }
  NeighborTable& neighbors() { return neighbors_; }
  const NeighborTable& neighbors() const { return neighbors_; }
  FlowTable& flows() { return flows_; }
  const FlowTable& flows() const { return flows_; }
  const NodeConfig& config() const { return config_; }
  const energy::RadioEnergyModel& radio() const { return *services_.radio; }
  const Services& services() const { return services_; }

  /// Refreshes service bindings after the network installs a routing
  /// protocol or mobility policy post-construction.
  void rebind_services(Services services) { services_ = services; }

  /// Starts (or restarts) periodic HELLO beaconing with a random-free
  /// deterministic phase derived from the node id.
  void start_hello();
  void stop_hello();
  /// Emits one HELLO immediately.
  void send_hello_now();
  bool hello_active() const { return hello_event_ != 0; }

  /// Flow-source entry point: resolves the next hop, lets the policy seed
  /// the header aggregate, and transmits. Returns false when the packet
  /// could not be sent (no route / no energy / dead).
  bool originate_data(DataBody data);

  /// Medium delivery entry point.
  void handle_receive(const Packet& pkt);

  /// Bounded mobility step: moves at most `max_step` toward `target`,
  /// drawing `cost_per_meter * distance` from the battery (movement is
  /// truncated to what the battery can afford). Returns the distance moved.
  util::Meters move_towards(geom::Vec2 target, util::Meters max_step,
                            util::JoulesPerMeter cost_per_meter);

  /// Total distance this node has moved via move_towards().
  util::Meters total_moved() const { return total_moved_; }

  /// Charges E_T(distance-to-next, size) and hands the packet to the
  /// medium. `next_position` is the sender's local estimate of the next
  /// hop's location (neighbor table / packet stamps).
  bool transmit(Packet pkt, NodeId next, geom::Vec2 next_position);

  /// Charges full-range transmit energy and broadcasts (RREQ flooding).
  bool broadcast_packet(Packet pkt);

  /// Best local estimate of another node's info: neighbor table first,
  /// ground-truth oracle as fallback (documented GPS substitution).
  NeighborInfo lookup(NodeId other) const;

  // --- Checkpoint restore support (src/snap) ---
  // These bypass the usual side effects: restore re-materializes state that
  // already had its side effects before the snapshot was taken.

  /// Overwrites the crash flag without the beacon start/stop side effects
  /// of set_faulted(); pending HELLO events are restored separately.
  void restore_faulted(bool faulted) { faulted_ = faulted; }
  void restore_total_moved(util::Meters meters) { total_moved_ = meters; }
  /// Re-arms the periodic HELLO timer at an absolute simulated time.
  void restore_hello_at(sim::Time when);
  /// Re-arms a pending notification retry for `flow` at an absolute time.
  void restore_notify_retry_at(FlowId flow, sim::Time when);

  /// Recomputes this node's NodeStore flow aggregate from the flow table.
  /// Call after mutating the table through flows() from outside the node
  /// (flow start, checkpoint restore); the node's own handlers keep the
  /// aggregate current themselves. No-op without a bound store slot.
  void sync_flow_aggregate();

 private:
  void hello_tick();
  void handle_data(DataBody data, const SenderStamp& from);
  void handle_recruit(const RecruitBody& body);
  /// Transmits toward entry.next; on link-layer failure re-resolves the
  /// route once (local repair) and retries. Returns true when some copy
  /// was accepted by the medium.
  bool forward_with_repair(const DataBody& data, FlowEntry& entry);
  void handle_notification(NotificationBody body);
  void send_notification(FlowEntry& entry, bool enable,
                         const MobilityAggregate& agg);
  /// Transmits the current pending decision upstream and (re-)arms the
  /// retry timer; shared by the first transmission and every retry.
  void transmit_notification(FlowEntry& entry);
  void notify_retry_tick(FlowId flow);
  void schedule_notify_retry(FlowEntry& entry);
  void cancel_notify_retry(FlowEntry& entry);
  Packet stamp(PacketType type, NodeId link_dest, util::Bits size_bits) const;

  /// Position storage: the NodeStore column cell when bound, the inline
  /// member otherwise. Node is neither copyable nor movable, so the
  /// self-pointing fallback is safe.
  geom::Vec2& pos() { return *pos_cell_; }
  const geom::Vec2& pos() const { return *pos_cell_; }

  NodeId id_;
  geom::Vec2 position_;
  // snap:transient(rebound to the NodeStore cell at construction)
  geom::Vec2* pos_cell_ = nullptr;
  // snap:transient(rebound to the NodeStore cell at construction)
  FlowAggregate* flow_cell_ = nullptr;
  energy::Battery battery_;
  NeighborTable neighbors_;
  FlowTable flows_;
  // snap:transient(non-owning wiring re-established by rebind_services during create_shell)
  Services services_;
  // snap:transient(per-node config, persisted wholesale as scenario text)
  NodeConfig config_;
  // snap:derived(restore_hello_at)
  sim::EventId hello_event_ = 0;
  util::Meters total_moved_;
  bool faulted_ = false;
};

}  // namespace imobif::net
