// Flow table (framework Section 2, node state item 4): for each flow
// traversing the node — source, residual data bits, previous node, mobility
// strategy and status, destination, next node. Plus per-node bookkeeping the
// experiments read back (movement distance, relayed packets, cached target).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "geom/vec2.hpp"
#include "net/ids.hpp"
#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace imobif::net {

struct FlowEntry {
  FlowId id = kInvalidFlow;
  NodeId source = kInvalidNode;
  NodeId destination = kInvalidNode;
  NodeId prev = kInvalidNode;  ///< upstream flow neighbor (link sender)
  NodeId next = kInvalidNode;  ///< downstream flow neighbor (pinned route)
  util::Bits residual_bits;    ///< expected residual flow length
  StrategyId strategy = StrategyId::kNone;
  bool mobility_enabled = false;

  /// Latest strategy target position, cached for inspection/tests.
  std::optional<geom::Vec2> target;

  std::uint64_t packets_relayed = 0;
  util::Meters moved_distance;

  /// Destination-side notification damping state (core policy option):
  /// sequence number of the last status-change request sent upstream.
  std::optional<std::uint32_t> last_notify_seq;

  /// Notification-reliability state (destination side, active when
  /// NodeConfig::notify_retry_cap > 0): the requested status awaiting
  /// confirmation via the source's stamped mobility_enabled, the aggregate
  /// that justified it (re-sent verbatim on retries), the decision
  /// sequence number, attempts so far, and the pending retry timer.
  std::optional<bool> pending_status;
  MobilityAggregate notify_agg;
  std::uint32_t notify_decision_seq = 0;
  std::uint32_t notify_attempts = 0;
  // snap:derived(Node::restore_notify_retry_at)
  sim::EventId notify_retry_event = 0;

  /// Source side: highest decision sequence already applied; stale or
  /// duplicate notifications (<= this) are ignored instead of re-applied.
  std::uint32_t notify_applied_seq = 0;

  /// Relay-recruitment bookkeeping (core policy option): how many times
  /// this node split its own downstream hop for this flow.
  std::uint32_t recruits_initiated = 0;
};

class FlowTable {
 public:
  /// Fetches the entry, creating it from the data header on first contact
  /// (Figure 1 lines 4-6, AllocateFlowEntry).
  FlowEntry& get_or_create(const DataBody& data);

  FlowEntry* find(FlowId id);
  const FlowEntry* find(FlowId id) const;

  /// Creates/returns an entry directly (used at the flow source).
  FlowEntry& ensure(FlowId id);

  void erase(FlowId id) { entries_.erase(id); }
  std::size_t size() const { return entries_.size(); }

  std::vector<const FlowEntry*> all() const;

  /// Visits every entry without allocating (hash-map order; use only for
  /// order-insensitive folds like the NodeStore aggregate roll-up).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    // Callers are order-insensitive folds by contract (doc comment above).
    // astlint:allow(unordered-iteration): contract-order-insensitive fold
    for (const auto& [id, entry] : entries_) fn(entry);
  }

 private:
  // snap:derived(ensure)
  std::unordered_map<FlowId, FlowEntry> entries_;
};

}  // namespace imobif::net
