#include "net/node.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geom/segment.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace imobif::net {

using util::Bits;
using util::Joules;
using util::Meters;

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kDeadNode:
      return "dead-node";
    case DropReason::kNoRoute:
      return "no-route";
    case DropReason::kNoEnergy:
      return "no-energy";
    case DropReason::kOutOfRange:
      return "out-of-range";
    case DropReason::kUnknownFlow:
      return "unknown-flow";
    case DropReason::kFaulted:
      return "faulted";
    case DropReason::kStaleNotify:
      return "stale-notify";
  }
  return "?";
}

void NetworkEvents::on_delivered(Node&, const DataBody&) {}
void NetworkEvents::on_notification_initiated(Node&,
                                              const NotificationBody&) {}
void NetworkEvents::on_notification_retry(Node&, const NotificationBody&) {}
void NetworkEvents::on_notification_at_source(Node&,
                                              const NotificationBody&) {}
void NetworkEvents::on_node_depleted(Node&) {}
void NetworkEvents::on_drop(Node&, PacketType, DropReason) {}
void NetworkEvents::on_recruited(Node&, const RecruitBody&) {}

Node::Node(NodeId id, geom::Vec2 position, Joules initial_energy,
           Services services, NodeConfig config)
    : id_(id),
      position_(position),
      battery_(initial_energy),
      neighbors_(config.neighbor_timeout),
      services_(services),
      config_(config) {
  if (services_.sim == nullptr || services_.medium == nullptr ||
      services_.radio == nullptr) {
    throw std::invalid_argument("Node: sim, medium and radio are required");
  }
  pos_cell_ = &position_;
  if (services_.store != nullptr && services_.store->has(id_)) {
    pos_cell_ = services_.store->position_cell(id_);
    *pos_cell_ = position;
    battery_.bind_residual_cell(services_.store->residual_cell(id_));
    flow_cell_ = services_.store->flow_cell(id_);
  }
  battery_.set_depletion_callback([this] {
    stop_hello();
    if (services_.events != nullptr) services_.events->on_node_depleted(*this);
  });
}

sim::Time Node::now() const { return services_.sim->now(); }

void Node::set_faulted(bool faulted) {
  if (faulted_ == faulted) return;
  faulted_ = faulted;
  if (faulted_) {
    stop_hello();
  } else if (alive()) {
    start_hello();
  }
}

void Node::set_position(geom::Vec2 p) {
  pos() = p;
  services_.medium->node_moved(id_, p);
}

geom::Vec2 Node::advertised_position() const {
  if (config_.position_error_m <= Meters{0.0}) return pos();
  // Localization error is a slowly varying per-node *bias*, not white
  // noise: multilateration against quasi-static references drifts over
  // re-localization periods, so the offset is re-drawn once per 100 s
  // epoch (not per packet — per-packet jitter would make strategy targets
  // chase noise, which no real position service exhibits).
  const std::int64_t epoch =
      now().ticks() / (100 * sim::Time::kTicksPerSecond);
  std::uint64_t state = (static_cast<std::uint64_t>(id_) << 32) ^
                        static_cast<std::uint64_t>(epoch) ^
                        0x9e3779b97f4a7c15ULL;
  const double u1 = static_cast<double>(util::splitmix64(state) >> 11) *
                    0x1.0p-53;
  const double u2 = static_cast<double>(util::splitmix64(state) >> 11) *
                    0x1.0p-53;
  const double angle = 2.0 * M_PI * u1;
  const double radius = config_.position_error_m.value() * std::sqrt(u2);
  return pos() +
         geom::Vec2{radius * std::cos(angle), radius * std::sin(angle)};
}

Packet Node::stamp(PacketType type, NodeId link_dest, Bits size_bits) const {
  Packet pkt;
  pkt.type = type;
  pkt.sender = SenderStamp{id_, advertised_position(), battery_.residual()};
  pkt.link_dest = link_dest;
  pkt.size_bits = size_bits;
  return pkt;
}

void Node::start_hello() {
  stop_hello();
  if (!alive()) return;
  // Deterministic per-node phase: spread beacons across the interval so all
  // nodes do not transmit on the same tick.
  std::uint64_t h = id_ + 0x12345;
  const std::uint64_t hash = util::splitmix64(h);
  const auto phase_ticks = static_cast<std::int64_t>(
      hash % static_cast<std::uint64_t>(
                 std::max<std::int64_t>(1, config_.hello_interval.ticks())));
  hello_event_ = services_.sim->after(
      sim::Time::from_ticks(phase_ticks), [this] { hello_tick(); },
      sim::EventTag::hello_tick(id_));
}

void Node::stop_hello() {
  if (hello_event_ != 0) {
    services_.sim->cancel(hello_event_);
    hello_event_ = 0;
  }
}

void Node::send_hello_now() {
  if (!alive() || faulted_) return;
  Packet pkt = stamp(PacketType::kHello, kBroadcast, config_.hello_bits);
  pkt.body = HelloBody{};
  if (config_.charge_hello_energy) {
    const Joules cost = services_.radio->transmit_energy(
        services_.medium->comm_range(), config_.hello_bits);
    const Joules drawn = battery_.draw(cost, energy::DrawKind::kTransmit);
    if (drawn + Joules{1e-15} < cost) return;  // died mid-beacon
  }
  services_.medium->broadcast(*this, pkt);
}

void Node::hello_tick() {
  hello_event_ = 0;
  if (!alive()) return;
  send_hello_now();
  neighbors_.purge(now());
  if (!alive()) return;  // beacon cost may have finished the battery
  hello_event_ = services_.sim->after(
      config_.hello_interval, [this] { hello_tick(); },
      sim::EventTag::hello_tick(id_));
}

NeighborInfo Node::lookup(NodeId other) const {
  if (const auto hit = neighbors_.find(other, now())) return *hit;
  // GPS-oracle fallback (documented substitution): position is ground
  // truth, energy unknown (reported as 0).
  NeighborInfo info;
  info.id = other;
  info.position = services_.medium->true_position(other);
  info.residual_energy = Joules{0.0};
  info.last_heard = now();
  return info;
}

bool Node::transmit(Packet pkt, NodeId next, geom::Vec2 next_position) {
  if (!alive() || faulted_) return false;
  // Perfect power control (Assumption 4, hardware-support path): the
  // radio pays exactly the energy needed to reach the next hop's true
  // position; the caller's estimate is the fallback for unknown nodes.
  const Node* peer = services_.medium->find_node(next);
  const geom::Vec2 actual =
      peer != nullptr ? peer->position() : next_position;
  const Meters dist{geom::distance(pos(), actual)};
  const Joules cost = services_.radio->transmit_energy(dist, pkt.size_bits);
  const Joules drawn = battery_.draw(cost, energy::DrawKind::kTransmit);
  if (drawn + Joules{1e-15} < cost) {
    if (services_.events != nullptr) {
      services_.events->on_drop(*this, pkt.type, DropReason::kNoEnergy);
    }
    return false;
  }
  return services_.medium->unicast(*this, next, pkt);
}

bool Node::broadcast_packet(Packet pkt) {
  if (!alive() || faulted_) return false;
  const Joules cost = services_.radio->transmit_energy(
      services_.medium->comm_range(), pkt.size_bits);
  const Joules drawn = battery_.draw(cost, energy::DrawKind::kTransmit);
  if (drawn + Joules{1e-15} < cost) {
    if (services_.events != nullptr) {
      services_.events->on_drop(*this, pkt.type, DropReason::kNoEnergy);
    }
    return false;
  }
  services_.medium->broadcast(*this, pkt);
  return true;
}

Meters Node::move_towards(geom::Vec2 target, Meters max_step,
                          util::JoulesPerMeter cost_per_meter) {
  IMOBIF_ENSURE(std::isfinite(target.x) && std::isfinite(target.y),
                "movement target must be finite");
  if (!alive() || faulted_) return Meters{0.0};
  geom::Vec2 desired = geom::step_towards(pos(), target, max_step.value());
  Meters dist{geom::distance(pos(), desired)};
  IMOBIF_ASSERT(dist <= max_step * (1.0 + 1e-12) + Meters{1e-9},
                "per-packet mobility step exceeded its bound");
  if (dist <= Meters{0.0}) return Meters{0.0};
  if (cost_per_meter > util::JoulesPerMeter{0.0}) {
    const Meters affordable = battery_.residual() / cost_per_meter;
    if (affordable < dist) {
      // Move as far as the battery allows, then die en route.
      desired = geom::step_towards(pos(), desired, affordable.value());
      dist = Meters{geom::distance(pos(), desired)};
    }
    battery_.draw(dist * cost_per_meter, energy::DrawKind::kMove);
  }
  pos() = desired;
  IMOBIF_ASSERT(std::isfinite(desired.x) && std::isfinite(desired.y),
                "node position must stay finite after a mobility step");
  services_.medium->node_moved(id_, desired);
  total_moved_ += dist;
  return dist;
}

bool Node::originate_data(DataBody data) {
  IMOBIF_ENSURE(
      util::isfinite(data.payload_bits) && data.payload_bits >= Bits{0.0},
      "payload size must be finite and non-negative");
  IMOBIF_ENSURE(util::isfinite(data.residual_flow_bits) &&
                    data.residual_flow_bits >= Bits{0.0},
                "residual flow estimate must be finite and non-negative");
  if (!alive()) return false;
  FlowEntry& entry = flows_.ensure(data.flow_id);
  entry.source = data.source;
  entry.destination = data.destination;
  entry.strategy = data.strategy;
  entry.residual_bits = data.residual_flow_bits;
  sync_flow_aggregate();

  if (entry.next == kInvalidNode && services_.routing != nullptr) {
    entry.next = services_.routing->next_hop(*this, data.destination);
  }
  if (entry.next == kInvalidNode) {
    if (services_.events != nullptr) {
      services_.events->on_drop(*this, PacketType::kData,
                                DropReason::kNoRoute);
    }
    return false;
  }
  if (services_.policy != nullptr) {
    services_.policy->seed_at_source(*this, data, entry);
  }
  return forward_with_repair(data, entry);
}

void Node::handle_receive(const Packet& pkt) {
  if (!alive()) {
    if (services_.events != nullptr) {
      services_.events->on_drop(*this, pkt.type, DropReason::kDeadNode);
    }
    return;
  }
  // In-flight packets scheduled before a crash arrive after it took
  // effect; a crashed radio hears nothing.
  if (faulted_) {
    if (services_.events != nullptr) {
      services_.events->on_drop(*this, pkt.type, DropReason::kFaulted);
    }
    return;
  }
  // Receive electronics (0 under the paper's sender-pays model). Drawing
  // may deplete the battery; a node that dies *receiving* still processed
  // the packet's bits, so handling proceeds only if it survives.
  const Joules rx_cost = services_.radio->receive_energy(pkt.size_bits);
  if (rx_cost > Joules{0.0}) {
    battery_.draw(rx_cost, energy::DrawKind::kOther);
    if (!alive()) {
      if (services_.events != nullptr) {
        services_.events->on_drop(*this, pkt.type, DropReason::kNoEnergy);
      }
      return;
    }
  }
  // Piggybacked sender stamp refreshes the neighbor table on any reception.
  if (pkt.sender.id != kInvalidNode) {
    neighbors_.upsert(pkt.sender.id, pkt.sender.position,
                      pkt.sender.residual_energy, now());
  }
  switch (pkt.type) {
    case PacketType::kHello:
      break;  // stamp processing above is the whole protocol
    case PacketType::kData:
      handle_data(std::get<DataBody>(pkt.body), pkt.sender);
      break;
    case PacketType::kNotification:
      handle_notification(std::get<NotificationBody>(pkt.body));
      break;
    case PacketType::kRouteRequest:
    case PacketType::kRouteReply:
      if (services_.routing != nullptr) {
        services_.routing->handle_control(*this, pkt);
      }
      break;
    case PacketType::kRecruit:
      handle_recruit(std::get<RecruitBody>(pkt.body));
      break;
  }
}

void Node::handle_recruit(const RecruitBody& body) {
  // Pre-install the flow entry so subsequent DATA packets from the
  // recruiter route through us toward its old next hop (instead of being
  // re-resolved by the routing protocol).
  FlowEntry& entry = flows_.ensure(body.flow_id);
  entry.source = body.flow_source;
  entry.destination = body.flow_destination;
  entry.prev = body.upstream;
  entry.next = body.downstream;
  entry.strategy = body.strategy;
  entry.residual_bits = body.residual_flow_bits;
  entry.mobility_enabled = body.mobility_enabled;
  sync_flow_aggregate();
  if (services_.events != nullptr) {
    services_.events->on_recruited(*this, body);
  }
}

void Node::handle_data(DataBody data, const SenderStamp& from) {
  // The enable/disable decision at the destination is computed from these
  // hop-by-hop folds. Sustainable-bits terms may saturate to +inf (a
  // zero-cost hop), but a NaN introduced anywhere upstream would silently
  // poison every comparison downstream of it.
  IMOBIF_ASSERT(
      !util::isnan(data.agg.bits_mob) && !util::isnan(data.agg.resi_mob) &&
          !util::isnan(data.agg.bits_nomob) &&
          !util::isnan(data.agg.resi_nomob),
      "NaN mobility aggregate in DATA header");
  IMOBIF_ASSERT(util::isfinite(data.residual_flow_bits) &&
                    data.residual_flow_bits >= Bits{0.0},
                "residual flow length must be finite and non-negative");
  // Figure 1, lines 4-6: fetch or allocate the flow entry, then refresh the
  // fields carried in the header.
  FlowEntry& entry = flows_.get_or_create(data);
  entry.prev = from.id;
  entry.strategy = data.strategy;
  entry.residual_bits = data.residual_flow_bits;
  sync_flow_aggregate();

  if (data.destination == id_) {
    // Figure 1, lines 7-11: deliver and run UpdateMobilityStatus.
    if (services_.events != nullptr) {
      services_.events->on_delivered(*this, data);
    }
    // Reliability layer: the source's stamped status now reflects the
    // pending request — the flip is confirmed, stop retransmitting.
    if (entry.pending_status.has_value() &&
        data.mobility_enabled == *entry.pending_status) {
      entry.pending_status.reset();
      entry.notify_attempts = 0;
      cancel_notify_retry(entry);
    }
    if (services_.policy != nullptr) {
      const std::optional<bool> change =
          services_.policy->evaluate_at_destination(*this, data, entry);
      if (change.has_value()) send_notification(entry, *change, data.agg);
    }
    entry.mobility_enabled = data.mobility_enabled;
    return;
  }

  // Figure 1, lines 12-27: relay.
  if (entry.next == kInvalidNode && services_.routing != nullptr) {
    entry.next = services_.routing->next_hop(*this, data.destination);
  }
  if (entry.next == kInvalidNode) {
    if (services_.events != nullptr) {
      services_.events->on_drop(*this, PacketType::kData,
                                DropReason::kNoRoute);
    }
    return;
  }
  ++entry.packets_relayed;
  if (flow_cell_ != nullptr) ++flow_cell_->packets_relayed;
  if (services_.policy != nullptr) {
    services_.policy->on_relay(*this, data, entry);
  }
  ++data.hop_count;
  const bool sent = forward_with_repair(data, entry);

  // Figure 1, lines 23-26: adopt the carried status, then move if enabled.
  entry.mobility_enabled = data.mobility_enabled;
  if (sent && alive() && services_.policy != nullptr) {
    services_.policy->after_forward(*this, entry);
  }
}

bool Node::forward_with_repair(const DataBody& data, FlowEntry& entry) {
  Packet pkt = stamp(PacketType::kData, entry.next, data.payload_bits);
  pkt.body = data;
  if (transmit(std::move(pkt), entry.next, lookup(entry.next).position)) {
    return true;
  }
  // Local repair: the link layer reported a delivery failure (typically a
  // dead next hop). Re-resolve the route once, excluding nothing but what
  // the routing protocol itself skips, and retry.
  if (!alive() || services_.routing == nullptr) return false;
  const NodeId failed = entry.next;
  const NodeId repaired =
      services_.routing->next_hop(*this, data.destination);
  if (repaired == kInvalidNode || repaired == failed) {
    if (services_.events != nullptr) {
      services_.events->on_drop(*this, PacketType::kData,
                                DropReason::kNoRoute);
    }
    return false;
  }
  entry.next = repaired;
  Packet retry = stamp(PacketType::kData, entry.next, data.payload_bits);
  retry.body = data;
  return transmit(std::move(retry), entry.next,
                  lookup(entry.next).position);
}

void Node::send_notification(FlowEntry& entry, bool enable,
                             const MobilityAggregate& agg) {
  if (entry.prev == kInvalidNode) return;
  // A new decision supersedes any pending one: bump the sequence, reset
  // the attempt counter, and restart the retry clock.
  cancel_notify_retry(entry);
  ++entry.notify_decision_seq;
  entry.notify_attempts = 0;
  entry.notify_agg = agg;
  entry.pending_status =
      config_.notify_retry_cap > 0 ? std::optional<bool>(enable)
                                   : std::nullopt;

  NotificationBody body;
  body.flow_id = entry.id;
  body.flow_source = entry.source;
  body.enable = enable;
  body.agg = agg;
  body.decision_seq = entry.notify_decision_seq;
  body.attempt = 0;
  if (services_.events != nullptr) {
    services_.events->on_notification_initiated(*this, body);
  }
  Packet pkt =
      stamp(PacketType::kNotification, entry.prev, config_.notification_bits);
  pkt.body = body;
  transmit(std::move(pkt), entry.prev, lookup(entry.prev).position);
  schedule_notify_retry(entry);
}

void Node::transmit_notification(FlowEntry& entry) {
  NotificationBody body;
  body.flow_id = entry.id;
  body.flow_source = entry.source;
  body.enable = *entry.pending_status;
  body.agg = entry.notify_agg;
  body.decision_seq = entry.notify_decision_seq;
  body.attempt = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(entry.notify_attempts, 255));
  if (services_.events != nullptr) {
    services_.events->on_notification_retry(*this, body);
  }
  Packet pkt =
      stamp(PacketType::kNotification, entry.prev, config_.notification_bits);
  pkt.body = body;
  transmit(std::move(pkt), entry.prev, lookup(entry.prev).position);
  schedule_notify_retry(entry);
}

void Node::notify_retry_tick(FlowId flow) {
  FlowEntry* entry = flows_.find(flow);
  if (entry == nullptr) return;
  entry->notify_retry_event = 0;
  if (!entry->pending_status.has_value()) return;
  if (!alive()) return;
  if (faulted_ || entry->prev == kInvalidNode) {
    // A crashed destination (or a path broken right at the last hop)
    // abandons the request; a later packet re-evaluates from scratch.
    entry->pending_status.reset();
    return;
  }
  ++entry->notify_attempts;
  transmit_notification(*entry);
}

void Node::schedule_notify_retry(FlowEntry& entry) {
  if (config_.notify_retry_cap == 0 || !entry.pending_status.has_value()) {
    return;
  }
  if (entry.notify_attempts >= config_.notify_retry_cap) {
    // Retry cap hit: give up gracefully. The request stays un-applied and
    // the destination may issue a fresh decision on a later packet.
    entry.pending_status.reset();
    return;
  }
  // Exponential backoff: timeout * 2^attempts (shift capped well below
  // overflow; the retry cap keeps attempts small anyway).
  const int shift = static_cast<int>(std::min<std::uint32_t>(
      entry.notify_attempts, 16));
  const sim::Time delay =
      sim::Time::from_ticks(config_.notify_retry_timeout.ticks() << shift);
  entry.notify_retry_event = services_.sim->after(
      delay, [this, flow = entry.id] { notify_retry_tick(flow); },
      sim::EventTag::notify_retry(id_, entry.id));
}

void Node::restore_hello_at(sim::Time when) {
  stop_hello();
  hello_event_ = services_.sim->at(
      when, [this] { hello_tick(); },
      sim::EventTag::hello_tick(id_));
}

void Node::restore_notify_retry_at(FlowId flow, sim::Time when) {
  FlowEntry& entry = flows_.ensure(flow);
  if (entry.notify_retry_event != 0) {
    services_.sim->cancel(entry.notify_retry_event);
  }
  entry.notify_retry_event = services_.sim->at(
      when, [this, flow] { notify_retry_tick(flow); },
      sim::EventTag::notify_retry(id_, flow));
}

void Node::sync_flow_aggregate() {
  if (flow_cell_ == nullptr) return;
  flow_cell_->active_flows = static_cast<std::uint32_t>(flows_.size());
  std::uint64_t relayed = 0;
  flows_.for_each(
      [&relayed](const FlowEntry& entry) { relayed += entry.packets_relayed; });
  flow_cell_->packets_relayed = relayed;
}

void Node::cancel_notify_retry(FlowEntry& entry) {
  if (entry.notify_retry_event != 0) {
    services_.sim->cancel(entry.notify_retry_event);
    entry.notify_retry_event = 0;
  }
}

void Node::handle_notification(NotificationBody body) {
  FlowEntry* entry = flows_.find(body.flow_id);
  if (entry == nullptr) {
    if (services_.events != nullptr) {
      services_.events->on_drop(*this, PacketType::kNotification,
                                DropReason::kUnknownFlow);
    }
    return;
  }
  if (body.flow_source == id_) {
    // Stale/duplicate filter: retransmissions (and reordered copies after
    // a path repair) of decisions at or below the last applied one are
    // ignored so the status can only move forward, never flip back.
    if (body.decision_seq != 0 &&
        body.decision_seq <= entry->notify_applied_seq) {
      if (services_.events != nullptr) {
        services_.events->on_drop(*this, PacketType::kNotification,
                                  DropReason::kStaleNotify);
      }
      return;
    }
    // Unstamped (legacy) notifications bypass the filter without
    // resetting the monotone counter.
    if (body.decision_seq != 0) entry->notify_applied_seq = body.decision_seq;
    // Source updates the flow's mobility status; the next data packet
    // carries it to every node on the path.
    entry->mobility_enabled = body.enable;
    if (services_.events != nullptr) {
      services_.events->on_notification_at_source(*this, body);
    }
    return;
  }
  if (entry->prev == kInvalidNode) return;  // path broke upstream
  Packet pkt =
      stamp(PacketType::kNotification, entry->prev, config_.notification_bits);
  pkt.body = body;
  transmit(std::move(pkt), entry->prev, lookup(entry->prev).position);
}

}  // namespace imobif::net
