// Strongly-named identifier types for nodes and flows.
#pragma once

#include <cstdint>

namespace imobif::net {

using NodeId = std::uint32_t;
using FlowId = std::uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr NodeId kBroadcast = 0xfffffffeu;
inline constexpr FlowId kInvalidFlow = 0xffffffffu;

}  // namespace imobif::net
