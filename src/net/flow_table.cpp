#include "net/flow_table.hpp"

namespace imobif::net {

FlowEntry& FlowTable::get_or_create(const DataBody& data) {
  auto& entry = entries_[data.flow_id];
  if (entry.id == kInvalidFlow) {
    entry.id = data.flow_id;
    entry.source = data.source;
    entry.destination = data.destination;
    entry.strategy = data.strategy;
  }
  return entry;
}

FlowEntry* FlowTable::find(FlowId id) {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

const FlowEntry* FlowTable::find(FlowId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

FlowEntry& FlowTable::ensure(FlowId id) {
  auto& entry = entries_[id];
  entry.id = id;
  return entry;
}

std::vector<const FlowEntry*> FlowTable::all() const {
  std::vector<const FlowEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(&entry);
  return out;
}

}  // namespace imobif::net
