#include "net/flow_table.hpp"

#include <algorithm>

namespace imobif::net {

FlowEntry& FlowTable::get_or_create(const DataBody& data) {
  auto& entry = entries_[data.flow_id];
  if (entry.id == kInvalidFlow) {
    entry.id = data.flow_id;
    entry.source = data.source;
    entry.destination = data.destination;
    entry.strategy = data.strategy;
  }
  return entry;
}

FlowEntry* FlowTable::find(FlowId id) {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

const FlowEntry* FlowTable::find(FlowId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

FlowEntry& FlowTable::ensure(FlowId id) {
  auto& entry = entries_[id];
  entry.id = id;
  return entry;
}

std::vector<const FlowEntry*> FlowTable::all() const {
  // Sorted by flow id: multi-flow blending folds floating-point sums over
  // this list, so iteration order must not depend on hash-map layout.
  std::vector<const FlowEntry*> out;
  out.reserve(entries_.size());
  // astlint:allow(unordered-iteration): extract-then-sort; order fixed below
  for (const auto& [id, entry] : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [](const FlowEntry* a, const FlowEntry* b) {
              return a->id < b->id;
            });
  return out;
}

}  // namespace imobif::net
