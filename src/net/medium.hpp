// Broadcast wireless medium with a fixed communication range.
//
// Delivery model: a transmission from position p reaches every live node
// within `comm_range_m` of p after a constant propagation/processing delay.
// Unicasts outside the range (or to dead nodes) are dropped and counted.
// Transmission *energy* is charged by the sender (Node::transmit) according
// to the actual hop distance — range gates connectivity, power control
// scales cost, exactly as in the paper's model.
//
// The medium also doubles as the experiment's ground-truth position oracle
// (`true_position`), standing in for GPS (paper Assumption 2).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/vec2.hpp"
#include "net/fault.hpp"
#include "net/grid_index.hpp"
#include "net/ids.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace imobif::net {

class Node;

// snap:transient(config struct, persisted wholesale as scenario text)
struct MediumConfig {
  double comm_range_m = 180.0;
  sim::Time prop_delay = sim::Time::from_seconds(0.005);
  /// Unicasts model power-controlled links (paper Assumption 4): a sender
  /// reaches its flow neighbor at any distance by paying E_T(d, l), so by
  /// default only broadcasts (HELLO/RREQ neighbor discovery) are gated by
  /// comm_range_m. Set true to gate unicasts as well.
  bool unicast_range_gated = false;
};

// snap:transient(wiring rebuilt by create_shell and attach)
class Medium {
 public:
  Medium(sim::Simulator& sim, MediumConfig config);

  /// Registers a node; the medium does not own it.
  void attach(Node& node);

  /// Keeps the spatial index current; Node calls this on every position
  /// change.
  void node_moved(NodeId id, geom::Vec2 new_position);

  Node* find_node(NodeId id) const;
  std::size_t node_count() const { return nodes_.size(); }
  const std::vector<Node*>& all_nodes() const { return nodes_; }

  /// Ground-truth position (GPS oracle). Throws for unknown ids.
  geom::Vec2 true_position(NodeId id) const;

  util::Meters comm_range() const {
    return util::Meters{config_.comm_range_m};
  }

  /// The spatial index over attached nodes — the one neighbor-discovery
  /// path (DESIGN.md §12); routing oracles query it instead of scanning
  /// all_nodes().
  const GridIndex& grid() const { return index_; }

  /// Delivers to every live node in range of the sender (HELLO beacons).
  void broadcast(const Node& sender, const Packet& pkt);

  /// Delivers to `dest` iff it is alive and in range of the sender's
  /// position at transmit time. Returns true when the packet was accepted
  /// for delivery. Injected channel loss (see install_fault_plan) is
  /// *silent*: the packet is counted as dropped_injected but unicast still
  /// returns true — a wireless sender cannot tell a lost frame from a
  /// delivered one without an ACK.
  bool unicast(const Node& sender, NodeId dest, const Packet& pkt);

  /// Installs a fault plan (DESIGN.md §7): deterministic injected link
  /// loss and a node crash/pause schedule executed through the simulator.
  /// Installing a disabled (default) plan is a no-op. Call before running
  /// the simulation; crash times are absolute simulated seconds.
  void install_fault_plan(const FaultPlan& plan);
  const FaultInjector* fault_injector() const { return injector_.get(); }

  struct Counters {
    std::uint64_t broadcasts = 0;
    std::uint64_t unicasts = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_out_of_range = 0;
    std::uint64_t dropped_dead = 0;
    std::uint64_t dropped_unknown = 0;
    std::uint64_t dropped_injected = 0;  ///< fault-injected channel loss
    std::uint64_t dropped_faulted = 0;   ///< receiver crashed/paused
  };
  const Counters& counters() const { return counters_; }

  // --- Checkpoint restore support (src/snap) ---

  void restore_counters(const Counters& counters) { counters_ = counters; }
  /// Re-schedules an in-flight delivery at an absolute time. Unlike the
  /// internal path this does NOT bump the delivered counter (it was counted
  /// when the original transmission was scheduled, before the snapshot).
  void restore_delivery_at(NodeId receiver, std::shared_ptr<const Packet> pkt,
                           sim::Time when);
  /// Re-creates the loss injector from its plan WITHOUT scheduling the
  /// crash events (those are restored as pending simulator events); returns
  /// it so the caller can restore per-link channel state.
  FaultInjector& restore_fault_injector(const FaultPlan& plan);
  /// Re-schedules one pending crash/resume event at an absolute time.
  void restore_fault_event_at(NodeId id, bool on, sim::Time when);

 private:
  void deliver_later(Node& receiver, const Packet& pkt);
  void schedule_delivery(Node& receiver, std::shared_ptr<const Packet> pkt,
                         sim::Time when);
  void schedule_fault_set(NodeId id, bool on, sim::Time when);

  sim::Simulator& sim_;
  MediumConfig config_;
  std::vector<Node*> nodes_;
  /// Dense id -> node table (ids are dense in practice; sparse ids cost
  /// vector slack, not correctness). One array read on the per-recipient
  /// broadcast path where a hash lookup used to be.
  std::vector<Node*> by_id_;
  GridIndex index_;
  Counters counters_;
  // snap:derived(restore_fault_injector)
  std::unique_ptr<FaultInjector> injector_;
};

}  // namespace imobif::net
