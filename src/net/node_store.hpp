// NodeStore: struct-of-arrays storage for the hot per-node simulation
// state — position, residual energy, and flow aggregates (DESIGN.md §12).
//
// At 10^5-10^6 nodes the Node objects themselves (neighbor tables, flow
// tables, service bindings) are too large to stream through the cache on
// the hot paths that only need a position or a residual-energy reading.
// The store keeps exactly those fields in dense per-field columns, and
// Node transparently binds its accessors to its slot at construction: the
// public Node API is unchanged, code that iterates "all positions" or
// "total residual energy" walks contiguous memory.
//
// Columns are chunked (fixed-size blocks, never reallocated) so a cell
// pointer handed out to a Node or a Battery stays valid as the store
// grows. Slot indices are the dense NodeIds the Network assigns.
//
// Free-standing nodes (unit tests construct Nodes without a Network) take
// a private inline fallback instead; the store is an optimization layer,
// not a requirement.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/vec2.hpp"
#include "util/units.hpp"

namespace imobif::net {

/// Per-node roll-up of the flow table: enough for load monitoring and
/// scale accounting without touching the per-flow hash map. Derived data —
/// rebuilt from the flow tables after a checkpoint restore, never
/// checkpointed itself.
struct FlowAggregate {
  // snap:derived(Node::sync_flow_aggregate)
  std::uint32_t active_flows = 0;
  std::uint64_t packets_relayed = 0;
};

// snap:transient(SoA mirror refilled by the node-restore loop)
class NodeStore {
 public:
  using Index = std::uint32_t;

  /// Appends a slot; indices are dense from 0 in insertion order (the
  /// Network keeps them equal to NodeIds).
  Index add(geom::Vec2 position, util::Joules residual);

  std::size_t size() const { return count_; }
  bool has(Index i) const { return i < count_; }

  /// Stable cell pointers — valid for the lifetime of the store, across
  /// any number of add() calls.
  geom::Vec2* position_cell(Index i) { return &positions_.at(i); }
  util::Joules* residual_cell(Index i) { return &residuals_.at(i); }
  FlowAggregate* flow_cell(Index i) { return &flows_.at(i); }

  geom::Vec2 position(Index i) const { return positions_.at(i); }
  util::Joules residual(Index i) const { return residuals_.at(i); }
  const FlowAggregate& flow_aggregate(Index i) const { return flows_.at(i); }

  /// Column sweeps over contiguous chunks (the scale-path replacements
  /// for per-Node virtual-call loops).
  util::Joules total_residual() const;
  std::uint64_t total_packets_relayed() const;

  /// Heap bytes held by the columns (scale accounting: bytes/node).
  std::size_t approx_bytes() const;

 private:
  /// Append-only column in fixed-size chunks: cell addresses never move.
  // snap:transient(SoA column storage, refilled via the owning store)
  template <typename T>
  class Column {
   public:
    static constexpr std::size_t kChunk = 4096;

    T& at(Index i) { return chunks_[i / kChunk]->data[i % kChunk]; }
    const T& at(Index i) const { return chunks_[i / kChunk]->data[i % kChunk]; }

    void push_back(T value) {
      const std::size_t slot = size_ % kChunk;
      if (slot == 0) chunks_.push_back(std::make_unique<Chunk>());
      chunks_.back()->data[slot] = value;
      ++size_;
    }

    std::size_t size() const { return size_; }
    std::size_t chunk_count() const { return chunks_.size(); }

    /// Visits every element chunk by chunk (contiguous within a chunk).
    template <typename Fn>
    void for_each(Fn&& fn) const {
      std::size_t remaining = size_;
      for (const auto& chunk : chunks_) {
        const std::size_t n = remaining < kChunk ? remaining : kChunk;
        for (std::size_t i = 0; i < n; ++i) fn(chunk->data[i]);
        remaining -= n;
      }
    }

    std::size_t approx_bytes() const {
      return chunks_.size() * sizeof(Chunk) +
             chunks_.capacity() * sizeof(std::unique_ptr<Chunk>);
    }

   private:
    struct Chunk {
      T data[kChunk];
    };
    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::size_t size_ = 0;
  };

  Column<geom::Vec2> positions_;
  Column<util::Joules> residuals_;
  Column<FlowAggregate> flows_;
  std::size_t count_ = 0;
};

}  // namespace imobif::net
