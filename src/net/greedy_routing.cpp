#include "net/greedy_routing.hpp"

#include <limits>

#include "geom/segment.hpp"
#include "net/node.hpp"

namespace imobif::net {

bool GreedyRouting::usable(NodeId id) const {
  // Dead neighbors linger in tables until their HELLOs time out; skipping
  // them here models the (eventual) table purge without waiting for it,
  // which is what makes local route repair effective.
  const Node* node = medium_.find_node(id);
  return node != nullptr && node->alive();
}

NodeId GreedyRouting::next_hop(const Node& self, NodeId dest) {
  const geom::Vec2 dest_pos = medium_.true_position(dest);
  const double self_dist = geom::distance(self.position(), dest_pos);

  NodeId best = kInvalidNode;
  double best_dist = self_dist;
  for (const NeighborInfo& nb : self.neighbors().snapshot(self.now())) {
    if (nb.id == self.id() || !usable(nb.id)) continue;
    if (nb.id == dest) return dest;  // destination in range: done
    const double d = geom::distance(nb.position, dest_pos);
    if (d < best_dist) {
      best_dist = d;
      best = nb.id;
    }
  }
  return best;
}

NodeId LineBiasedGreedyRouting::next_hop(const Node& self, NodeId dest) {
  const geom::Vec2 dest_pos = medium_.true_position(dest);
  const double self_dist = geom::distance(self.position(), dest_pos);
  const geom::Segment line{self.position(), dest_pos};

  NodeId best = kInvalidNode;
  double best_score = std::numeric_limits<double>::infinity();
  for (const NeighborInfo& nb : self.neighbors().snapshot(self.now())) {
    if (nb.id == self.id() || !usable(nb.id)) continue;
    if (nb.id == dest) return dest;
    const double d = geom::distance(nb.position, dest_pos);
    if (d >= self_dist) continue;  // keep greedy progress guarantee
    const double score = d + line_weight_ * line.distance_to(nb.position);
    if (score < best_score) {
      best_score = score;
      best = nb.id;
    }
  }
  return best;
}

std::vector<NodeId> greedy_path_oracle(const Medium& medium, NodeId source,
                                       NodeId dest) {
  std::vector<NodeId> path{source};
  const geom::Vec2 dest_pos = medium.true_position(dest);
  const Node* dest_node = medium.find_node(dest);
  NodeId current = source;
  // Greedy progress is strictly decreasing in distance, so the path length
  // is bounded; the cap guards against degenerate configurations.
  const std::size_t cap = medium.node_count() + 1;
  while (current != dest && path.size() <= cap) {
    const Node* cur = medium.find_node(current);
    const geom::Vec2 cur_pos = cur->position();
    // A live destination in range ends the walk immediately, exactly like
    // the in-network protocol's "destination is my neighbor" case.
    if (dest_node->alive() &&
        util::Meters{geom::distance(cur_pos, dest_pos)} <=
            medium.comm_range()) {
      path.push_back(dest);
      return path;
    }
    const double cur_dist = geom::distance(cur_pos, dest_pos);
    NodeId best = kInvalidNode;
    double best_dist = cur_dist;
    // Candidates come from the grid, not an all_nodes() scan. The query
    // radius carries a relative pad so the grid's squared-distance cut
    // can never exclude a point the exact linear check below admits; ties
    // in remaining distance break to the lowest id, which reproduces the
    // historical ascending-id scan winner under any visit order.
    medium.grid().for_each_in_range(
        cur_pos, medium.comm_range().value() * (1.0 + 1e-9),
        [&](NodeId cand, geom::Vec2 cand_pos) {
          if (cand == current || cand == dest) return;
          if (util::Meters{geom::distance(cur_pos, cand_pos)} >
              medium.comm_range()) {
            return;
          }
          const Node* node = medium.find_node(cand);
          if (node == nullptr || !node->alive()) return;
          const double d = geom::distance(cand_pos, dest_pos);
          const bool better =
              best == kInvalidNode
                  ? d < best_dist
                  : d < best_dist || (!(best_dist < d) && cand < best);
          if (better) {
            best_dist = d;
            best = cand;
          }
        });
    if (best == kInvalidNode) return {};  // dead end
    path.push_back(best);
    current = best;
  }
  return current == dest ? path : std::vector<NodeId>{};
}

}  // namespace imobif::net
