#include "net/aodv_routing.hpp"

#include "net/node.hpp"

namespace imobif::net {

namespace {
constexpr util::Bits kControlBits{512.0};
}  // namespace

NodeId AodvRouting::next_hop(const Node& self, NodeId dest) {
  const auto state_it = states_.find(self.id());
  if (state_it == states_.end()) return kInvalidNode;
  const auto route_it = state_it->second.routes.find(dest);
  if (route_it == state_it->second.routes.end()) return kInvalidNode;
  return route_it->second.next_hop;
}

const AodvRouting::RouteInfo* AodvRouting::route(NodeId node,
                                                 NodeId dest) const {
  const auto state_it = states_.find(node);
  if (state_it == states_.end()) return nullptr;
  const auto route_it = state_it->second.routes.find(dest);
  if (route_it == state_it->second.routes.end()) return nullptr;
  return &route_it->second;
}

void AodvRouting::install_route(NodeState& state, NodeId dest, NodeId via,
                                std::uint16_t hops, std::uint32_t seq) {
  auto& route = state.routes[dest];
  const bool fresher = seq > route.dest_seq;
  const bool shorter = seq == route.dest_seq && hops < route.hop_count;
  if (route.next_hop == kInvalidNode || fresher || shorter) {
    route.next_hop = via;
    route.hop_count = hops;
    route.dest_seq = seq;
  }
}

void AodvRouting::broadcast_control(Node& self, const Packet& pkt) {
  ++rreq_sent_;
  self.broadcast_packet(pkt);
}

void AodvRouting::send_reply(Node& self, NodeId origin, NodeId target,
                             std::uint32_t target_seq,
                             std::uint16_t hop_count) {
  NodeState& state = states_[self.id()];
  const auto reverse = state.routes.find(origin);
  if (reverse == state.routes.end() ||
      reverse->second.next_hop == kInvalidNode) {
    return;  // reverse path lost; the origin will re-discover on timeout
  }
  RouteReplyBody body;
  body.origin = origin;
  body.target = target;
  body.target_seq = target_seq;
  body.hop_count = hop_count;

  Packet pkt;
  pkt.type = PacketType::kRouteReply;
  pkt.sender = SenderStamp{self.id(), self.position(),
                           self.battery().residual()};
  pkt.link_dest = reverse->second.next_hop;
  pkt.size_bits = kControlBits;
  pkt.body = body;
  ++rrep_sent_;
  self.transmit(std::move(pkt), reverse->second.next_hop,
                self.lookup(reverse->second.next_hop).position);
}

void AodvRouting::prepare_route(Node& origin, NodeId dest) {
  NodeState& state = states_[origin.id()];
  const auto existing = state.routes.find(dest);
  if (existing != state.routes.end() &&
      existing->second.next_hop != kInvalidNode) {
    return;
  }
  RouteRequestBody body;
  body.origin = origin.id();
  body.target = dest;
  body.request_id = state.next_request_id++;
  body.origin_seq = ++state.own_seq;
  body.hop_count = 0;
  state.seen_requests.insert(request_key(body.origin, body.request_id));

  Packet pkt;
  pkt.type = PacketType::kRouteRequest;
  pkt.sender = SenderStamp{origin.id(), origin.position(),
                           origin.battery().residual()};
  pkt.link_dest = kBroadcast;
  pkt.size_bits = kControlBits;
  pkt.body = body;
  broadcast_control(origin, pkt);
}

void AodvRouting::handle_control(Node& self, const Packet& pkt) {
  NodeState& state = states_[self.id()];
  if (pkt.type == PacketType::kRouteRequest) {
    const auto body = std::get<RouteRequestBody>(pkt.body);
    const std::uint64_t key = request_key(body.origin, body.request_id);
    if (state.seen_requests.count(key) != 0) return;  // duplicate flood copy
    state.seen_requests.insert(key);

    const auto hops = static_cast<std::uint16_t>(body.hop_count + 1);
    install_route(state, body.origin, pkt.sender.id, hops, body.origin_seq);

    if (body.target == self.id()) {
      send_reply(self, body.origin, self.id(), ++state.own_seq, 0);
      return;
    }
    RouteRequestBody forwarded = body;
    forwarded.hop_count = hops;
    Packet out;
    out.type = PacketType::kRouteRequest;
    out.sender =
        SenderStamp{self.id(), self.position(), self.battery().residual()};
    out.link_dest = kBroadcast;
    out.size_bits = kControlBits;
    out.body = forwarded;
    broadcast_control(self, out);
    return;
  }

  if (pkt.type == PacketType::kRouteReply) {
    const auto body = std::get<RouteReplyBody>(pkt.body);
    const auto hops = static_cast<std::uint16_t>(body.hop_count + 1);
    install_route(state, body.target, pkt.sender.id, hops, body.target_seq);
    if (body.origin == self.id()) return;  // discovery complete
    send_reply(self, body.origin, body.target, body.target_seq, hops);
  }
}

}  // namespace imobif::net
