// AODV-lite: on-demand distance-vector routing.
//
// The framework description (Section 2) assumes an AODV-style substrate —
// "In protocols such as AODV, each node periodically sends HELLO messages to
// probe and collect neighbor information" — and iMobif piggybacks
// position/energy on those HELLOs. This module provides the route-discovery
// half: RREQ flooding with duplicate suppression and reverse-path setup,
// RREP unicast back along the reverse path installing forward routes, and
// destination sequence numbers for freshness. Route errors / repairs are out
// of scope (links only shorten under the mobility strategies studied here).
//
// Implementation note: per-node routing state is held inside the protocol
// object keyed by NodeId — the protocol instance is shared by all nodes of
// one simulated network, mirroring how a per-node daemon would own it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "net/medium.hpp"
#include "net/routing.hpp"

namespace imobif::net {

// snap:transient(AODV soft state re-forms on demand via RREQ; checkpointed runs install the greedy routers in create_shell)
class AodvRouting : public RoutingProtocol {
 public:
  explicit AodvRouting(Medium& medium) : medium_(medium) {}

  const char* name() const override { return "aodv-lite"; }

  NodeId next_hop(const Node& self, NodeId dest) override;
  void handle_control(Node& self, const Packet& pkt) override;
  void prepare_route(Node& origin, NodeId dest) override;

  // snap:transient(AODV soft state, re-forms on demand)
  struct RouteInfo {
    NodeId next_hop = kInvalidNode;
    std::uint16_t hop_count = 0;
    std::uint32_t dest_seq = 0;
  };

  /// Inspection for tests: route entry at `node` toward `dest`, if any.
  const RouteInfo* route(NodeId node, NodeId dest) const;

  std::uint64_t rreq_sent() const { return rreq_sent_; }
  std::uint64_t rrep_sent() const { return rrep_sent_; }

 private:
  // snap:transient(AODV soft state, re-forms on demand)
  struct NodeState {
    std::unordered_map<NodeId, RouteInfo> routes;
    std::unordered_set<std::uint64_t> seen_requests;  // origin<<32 | req id
    std::uint32_t own_seq = 0;
    std::uint32_t next_request_id = 1;
  };

  static std::uint64_t request_key(NodeId origin, std::uint32_t request_id) {
    return (static_cast<std::uint64_t>(origin) << 32) | request_id;
  }

  void install_route(NodeState& state, NodeId dest, NodeId via,
                     std::uint16_t hops, std::uint32_t seq);
  void broadcast_control(Node& self, const Packet& pkt);
  void send_reply(Node& self, NodeId origin, NodeId target,
                  std::uint32_t target_seq, std::uint16_t hop_count);

  Medium& medium_;
  std::unordered_map<NodeId, NodeState> states_;
  std::uint64_t rreq_sent_ = 0;
  std::uint64_t rrep_sent_ = 0;
};

}  // namespace imobif::net
