#include "mob/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "geom/segment.hpp"
#include "mob/trace.hpp"

namespace imobif::mob {

using util::Meters;
using util::MetersPerSecond;
using util::Seconds;

MobilityModel::~MobilityModel() = default;

void MobilityModel::restore_state(const std::vector<double>& state) {
  if (!state.empty()) {
    throw std::invalid_argument("mob: unexpected model state");
  }
}

double MobilityModel::clamp_coord(double v) const {
  return std::clamp(v, 0.0, area_.value());
}

namespace {

void check_state_size(const std::vector<double>& state, std::size_t want,
                      const char* model) {
  if (state.size() != want) {
    throw std::invalid_argument(std::string("mob: bad ") + model +
                                " state size " +
                                std::to_string(state.size()));
  }
}

/// Waypoint kinematics shared by RandomWaypoint nodes and Group reference
/// points: move toward the target, pause on arrival, then draw the next
/// leg. All draws go through the owning model's RNG in a fixed order.
struct WaypointState {
  geom::Vec2 target;
  double speed_mps = 0.0;
  double pause_left_s = 0.0;

  void draw_leg(util::Rng& rng, const ModelParams& p, double area) {
    target = geom::Vec2{rng.uniform(0.0, area), rng.uniform(0.0, area)};
    speed_mps = rng.uniform(p.speed_min.value(), p.speed_max.value());
  }

  /// Advances `pos` one tick; returns the (possibly unchanged) position.
  geom::Vec2 advance(geom::Vec2 pos, Seconds dt, util::Rng& rng,
                     const ModelParams& p, double area) {
    if (pause_left_s > 0.0) {
      pause_left_s -= dt.value();
      if (pause_left_s <= 0.0) {
        pause_left_s = 0.0;
        draw_leg(rng, p, area);
      }
      return pos;
    }
    const double step = speed_mps * dt.value();
    if (geom::distance(pos, target) <= step) {
      pos = target;
      if (p.pause_s > Seconds{0.0}) {
        pause_left_s = p.pause_s.value();
      } else {
        draw_leg(rng, p, area);
      }
      return pos;
    }
    return geom::step_towards(pos, target, step);
  }
};

class RandomWaypointModel final : public MobilityModel {
 public:
  RandomWaypointModel(const ModelParams& params, std::uint64_t seed,
                      Meters area, std::size_t node_count)
      : MobilityModel(params, seed, area) {
    nodes_.resize(node_count);
    for (WaypointState& node : nodes_) {
      node.draw_leg(rng(), this->params(), this->area().value());
    }
  }

  ModelId id() const override { return ModelId::kRandomWaypoint; }

  void step(Seconds /*now_s*/, Seconds dt,
            std::vector<geom::Vec2>& positions) override {
    for (std::size_t i = 0; i < nodes_.size() && i < positions.size(); ++i) {
      positions[i] = nodes_[i].advance(positions[i], dt, rng(), params(),
                                       area().value());
    }
  }

  std::vector<double> state() const override {
    std::vector<double> out;
    out.reserve(nodes_.size() * 4);
    for (const WaypointState& node : nodes_) {
      out.push_back(node.target.x);
      out.push_back(node.target.y);
      out.push_back(node.speed_mps);
      out.push_back(node.pause_left_s);
    }
    return out;
  }

  void restore_state(const std::vector<double>& state) override {
    check_state_size(state, nodes_.size() * 4, "random-waypoint");
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i].target = geom::Vec2{state[i * 4], state[i * 4 + 1]};
      nodes_[i].speed_mps = state[i * 4 + 2];
      nodes_[i].pause_left_s = state[i * 4 + 3];
    }
  }

 private:
  std::vector<WaypointState> nodes_;
};

/// Gauss–Markov: speed and heading follow memory-alpha AR(1) processes
/// around a per-node mean heading; boundaries reflect both the heading and
/// its mean so nodes do not stick to walls.
class GaussMarkovModel final : public MobilityModel {
 public:
  GaussMarkovModel(const ModelParams& params, std::uint64_t seed,
                   Meters area, std::size_t node_count)
      : MobilityModel(params, seed, area) {
    nodes_.resize(node_count);
    const double mean_speed =
        0.5 * (params.speed_min.value() + params.speed_max.value());
    for (NodeState& node : nodes_) {
      node.speed_mps = mean_speed;
      node.dir_rad = rng().uniform(0.0, 2.0 * M_PI);
      node.mean_dir_rad = node.dir_rad;
    }
  }

  ModelId id() const override { return ModelId::kGaussMarkov; }

  void step(Seconds /*now_s*/, Seconds dt,
            std::vector<geom::Vec2>& positions) override {
    const ModelParams& p = params();
    const double alpha = p.gm_alpha;
    const double noise = std::sqrt(std::max(0.0, 1.0 - alpha * alpha));
    const double mean_speed =
        0.5 * (p.speed_min.value() + p.speed_max.value());
    for (std::size_t i = 0; i < nodes_.size() && i < positions.size(); ++i) {
      NodeState& node = nodes_[i];
      node.speed_mps =
          std::clamp(alpha * node.speed_mps + (1.0 - alpha) * mean_speed +
                         noise * rng().normal(0.0, p.gm_speed_sigma.value()),
                     p.speed_min.value(), p.speed_max.value());
      node.dir_rad = alpha * node.dir_rad +
                     (1.0 - alpha) * node.mean_dir_rad +
                     noise * rng().normal(0.0, p.gm_dir_sigma_rad);
      geom::Vec2 pos = positions[i];
      pos.x += node.speed_mps * dt.value() * std::cos(node.dir_rad);
      pos.y += node.speed_mps * dt.value() * std::sin(node.dir_rad);
      if (pos.x < 0.0 || pos.x > area().value()) {
        node.dir_rad = M_PI - node.dir_rad;
        node.mean_dir_rad = M_PI - node.mean_dir_rad;
        pos.x = clamp_coord(pos.x);
      }
      if (pos.y < 0.0 || pos.y > area().value()) {
        node.dir_rad = -node.dir_rad;
        node.mean_dir_rad = -node.mean_dir_rad;
        pos.y = clamp_coord(pos.y);
      }
      positions[i] = pos;
    }
  }

  std::vector<double> state() const override {
    std::vector<double> out;
    out.reserve(nodes_.size() * 3);
    for (const NodeState& node : nodes_) {
      out.push_back(node.speed_mps);
      out.push_back(node.dir_rad);
      out.push_back(node.mean_dir_rad);
    }
    return out;
  }

  void restore_state(const std::vector<double>& state) override {
    check_state_size(state, nodes_.size() * 3, "gauss-markov");
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i].speed_mps = state[i * 3];
      nodes_[i].dir_rad = state[i * 3 + 1];
      nodes_[i].mean_dir_rad = state[i * 3 + 2];
    }
  }

 private:
  struct NodeState {
    double speed_mps = 0.0;
    double dir_rad = 0.0;
    double mean_dir_rad = 0.0;
  };
  std::vector<NodeState> nodes_;
};

/// Reference-point group mobility: each group's reference point walks like
/// a random-waypoint node; members ride along at their sampled formation
/// offset plus a jitter walk bounded by group_radius. Bounding the jitter
/// (not the whole offset) keeps t = 0 exactly at the admitted placement —
/// clamping the raw offset would teleport scattered members onto their
/// centroid on the first tick.
class GroupModel final : public MobilityModel {
 public:
  GroupModel(const ModelParams& params, std::uint64_t seed, Meters area,
             const std::vector<geom::Vec2>& initial_positions)
      : MobilityModel(params, seed, area) {
    const std::size_t node_count = initial_positions.size();
    const std::size_t group_count =
        std::max<std::size_t>(1, std::min(params.group_count, node_count));
    groups_.resize(group_count);
    formation_.resize(node_count);
    jitter_.resize(node_count);

    // Reference points start at their members' centroid, so reference +
    // formation offset reproduces the sampled placement exactly at t = 0.
    std::vector<std::size_t> members(group_count, 0);
    for (std::size_t i = 0; i < node_count; ++i) {
      groups_[i % group_count].reference += initial_positions[i];
      ++members[i % group_count];
    }
    for (std::size_t g = 0; g < group_count; ++g) {
      if (members[g] > 0) {
        groups_[g].reference =
            groups_[g].reference / static_cast<double>(members[g]);
      }
      groups_[g].walk.draw_leg(rng(), this->params(), this->area().value());
    }
    for (std::size_t i = 0; i < node_count; ++i) {
      formation_[i] =
          initial_positions[i] - groups_[i % group_count].reference;
    }
  }

  ModelId id() const override { return ModelId::kGroup; }

  void step(Seconds /*now_s*/, Seconds dt,
            std::vector<geom::Vec2>& positions) override {
    const ModelParams& p = params();
    for (Group& group : groups_) {
      group.reference = group.walk.advance(group.reference, dt, rng(), p,
                                           area().value());
    }
    const double step = p.speed_max.value() * dt.value();
    const double radius = p.group_radius_m.value();
    for (std::size_t i = 0; i < jitter_.size() && i < positions.size();
         ++i) {
      geom::Vec2 jitter = jitter_[i];
      jitter.x += rng().uniform(-step, step);
      jitter.y += rng().uniform(-step, step);
      const double norm = jitter.norm();
      if (norm > radius) jitter = jitter * (radius / norm);
      jitter_[i] = jitter;
      const geom::Vec2 pos =
          groups_[i % groups_.size()].reference + formation_[i] + jitter;
      positions[i] = geom::Vec2{clamp_coord(pos.x), clamp_coord(pos.y)};
    }
  }

  std::vector<double> state() const override {
    std::vector<double> out;
    out.reserve(groups_.size() * 6 + jitter_.size() * 2);
    for (const Group& group : groups_) {
      out.push_back(group.reference.x);
      out.push_back(group.reference.y);
      out.push_back(group.walk.target.x);
      out.push_back(group.walk.target.y);
      out.push_back(group.walk.speed_mps);
      out.push_back(group.walk.pause_left_s);
    }
    // Formation offsets are reconstructed by the constructor (pure
    // function of the initial placement); only the jitter walk is state.
    for (const geom::Vec2& jitter : jitter_) {
      out.push_back(jitter.x);
      out.push_back(jitter.y);
    }
    return out;
  }

  void restore_state(const std::vector<double>& state) override {
    check_state_size(state, groups_.size() * 6 + jitter_.size() * 2,
                     "group");
    std::size_t at = 0;
    for (Group& group : groups_) {
      group.reference = geom::Vec2{state[at], state[at + 1]};
      group.walk.target = geom::Vec2{state[at + 2], state[at + 3]};
      group.walk.speed_mps = state[at + 4];
      group.walk.pause_left_s = state[at + 5];
      at += 6;
    }
    for (geom::Vec2& jitter : jitter_) {
      jitter = geom::Vec2{state[at], state[at + 1]};
      at += 2;
    }
  }

 private:
  struct Group {
    geom::Vec2 reference;
    WaypointState walk;
  };
  std::vector<Group> groups_;
  std::vector<geom::Vec2> formation_;  ///< fixed sampled offsets
  std::vector<geom::Vec2> jitter_;     ///< bounded random walk (state)
};

/// Trace replay: positions are a pure function of the schedule and the
/// current time, so the model carries no dynamic state and draws no RNG.
class TraceReplayModel final : public MobilityModel {
 public:
  TraceReplayModel(const ModelParams& params, std::uint64_t seed,
                   Meters area, Trace trace)
      : MobilityModel(params, seed, area), trace_(std::move(trace)) {}

  ModelId id() const override { return ModelId::kTrace; }

  void step(Seconds now_s, Seconds /*dt*/,
            std::vector<geom::Vec2>& positions) override {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (trace_.has(i)) {
        positions[i] = trace_.position_at(i, now_s);
      }
    }
  }

  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
};

}  // namespace

std::unique_ptr<MobilityModel> make_model(
    const ModelParams& params, std::uint64_t seed, Meters area,
    const std::vector<geom::Vec2>& initial_positions) {
  params.validate();
  switch (params.model) {
    case ModelId::kNone:
      break;
    case ModelId::kRandomWaypoint:
      return std::make_unique<RandomWaypointModel>(
          params, seed, area, initial_positions.size());
    case ModelId::kGaussMarkov:
      return std::make_unique<GaussMarkovModel>(params, seed, area,
                                                initial_positions.size());
    case ModelId::kGroup:
      return std::make_unique<GroupModel>(params, seed, area,
                                          initial_positions);
    case ModelId::kTrace:
      return std::make_unique<TraceReplayModel>(
          params, seed, area, load_trace(params.trace_file));
  }
  throw std::invalid_argument("mob: make_model needs an enabled model");
}

}  // namespace imobif::mob
