// MobilityModel: the background-motion model zoo (DESIGN.md §14).
//
// A model owns per-node kinematic state plus one RNG stream and advances
// every node one tick per step() call, writing the new positions in place.
// Determinism contract: the position sequence is a pure function of
// (params, seed, initial positions). The seed rides in the FlowInstance —
// drawn exactly once per instance from the sampler's fork chain — so the
// three comparison modes replay identical ambient motion and results stay
// bit-identical across worker counts and farm shards.
//
// Checkpointing mirrors traffic::Generator: a model is (rng state, scalar
// state vector) with a model-private layout; src/snap encodes both and
// re-seats them through rng() and restore_state().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/vec2.hpp"
#include "mob/params.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace imobif::mob {

class MobilityModel {
 public:
  MobilityModel(const ModelParams& params, std::uint64_t seed,
                util::Meters area)
      : params_(params), rng_(seed), area_(area) {}
  virtual ~MobilityModel();
  MobilityModel(const MobilityModel&) = delete;
  MobilityModel& operator=(const MobilityModel&) = delete;

  virtual ModelId id() const = 0;

  /// Advances one tick ending at absolute simulated time `now_s`;
  /// `positions` holds every node's current position and receives the new
  /// ones. Synthetic models keep positions inside [0, area]^2; the trace
  /// model reproduces its file verbatim.
  virtual void step(util::Seconds now_s, util::Seconds dt,
                    std::vector<geom::Vec2>& positions) = 0;

  /// Model-specific scalar state beyond the RNG (checkpoints); the layout
  /// is private to each model, and restore_state consumes exactly what
  /// state() produced (std::invalid_argument on a mismatch).
  virtual std::vector<double> state() const { return {}; }
  virtual void restore_state(const std::vector<double>& state);

  const ModelParams& params() const { return params_; }
  util::Rng& rng() { return rng_; }
  const util::Rng& rng() const { return rng_; }

 protected:
  util::Meters area() const { return area_; }
  /// Clamps a coordinate into the arena.
  double clamp_coord(double v) const;

 private:
  ModelParams params_;
  util::Rng rng_;
  // snap:transient(immutable area config; models are rebuilt by make_model before state restore)
  util::Meters area_;
};

/// Builds the model for `params` (which must be enabled), seeding its RNG
/// stream with `seed` and initializing per-node state from the instance's
/// sampled placement. The kTrace model reads params.trace_file here.
std::unique_ptr<MobilityModel> make_model(
    const ModelParams& params, std::uint64_t seed, util::Meters area,
    const std::vector<geom::Vec2>& initial_positions);

}  // namespace imobif::mob
