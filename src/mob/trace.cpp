#include "mob/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace imobif::mob {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("trace: line " + std::to_string(line_no) +
                              ": " + what);
}

/// Splits `line` into whitespace-separated tokens, dropping everything
/// from the first comment character on.
std::vector<std::string_view> tokenize(std::string_view line) {
  const std::size_t comment = line.find_first_of("#;");
  if (comment != std::string_view::npos) line = line.substr(0, comment);
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t start = line.find_first_not_of(" \t\r", pos);
    if (start == std::string_view::npos) break;
    const std::size_t end = line.find_first_of(" \t\r", start);
    tokens.push_back(line.substr(
        start, end == std::string_view::npos ? line.size() - start
                                             : end - start));
    if (end == std::string_view::npos) break;
    pos = end;
  }
  return tokens;
}

std::uint64_t parse_node(std::string_view token, std::size_t line_no) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    fail(line_no, "bad node id '" + std::string(token) + "'");
  }
  if (value >= kMaxTraceNodes) {
    fail(line_no, "node id " + std::to_string(value) + " exceeds the " +
                      std::to_string(kMaxTraceNodes) + "-node trace cap");
  }
  return value;
}

double parse_number(std::string_view token, std::size_t line_no,
                    const char* field) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() ||
      !std::isfinite(value)) {
    fail(line_no,
         std::string("bad ") + field + " '" + std::string(token) + "'");
  }
  return value;
}

}  // namespace

geom::Vec2 Trace::position_at(std::size_t node, util::Seconds when) const {
  const double time_s = when.value();
  const std::vector<Waypoint>& schedule = schedules.at(node);
  if (schedule.empty()) {
    throw std::out_of_range("trace: node " + std::to_string(node) +
                            " has no schedule");
  }
  const auto after = std::upper_bound(
      schedule.begin(), schedule.end(), time_s,
      [](double t, const Waypoint& wp) { return t < wp.time_s; });
  if (after == schedule.begin()) return schedule.front().position;
  if (after == schedule.end()) return schedule.back().position;
  const Waypoint& lo = *(after - 1);
  const Waypoint& hi = *after;
  const double span = hi.time_s - lo.time_s;
  // Strictly increasing times guarantee span > 0.
  const double frac = (time_s - lo.time_s) / span;
  return lo.position + (hi.position - lo.position) * frac;
}

Trace parse_trace(const std::string& text) {
  Trace trace;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line(
        text.data() + pos,
        (eol == std::string::npos ? text.size() : eol) - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::vector<std::string_view> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens.size() != 4) {
      fail(line_no, "expected '<node> <time_s> <x_m> <y_m>', got " +
                        std::to_string(tokens.size()) + " field(s)");
    }
    const std::uint64_t node = parse_node(tokens[0], line_no);
    Trace::Waypoint wp;
    wp.time_s = parse_number(tokens[1], line_no, "time");
    wp.position.x = parse_number(tokens[2], line_no, "x");
    wp.position.y = parse_number(tokens[3], line_no, "y");
    if (wp.time_s < 0.0) fail(line_no, "negative waypoint time");

    if (node >= trace.schedules.size()) trace.schedules.resize(node + 1);
    std::vector<Trace::Waypoint>& schedule = trace.schedules[node];
    if (!schedule.empty() && wp.time_s <= schedule.back().time_s) {
      fail(line_no, "waypoint times must be strictly increasing per node");
    }
    schedule.push_back(wp);
  }
  return trace;
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("trace: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_trace(buffer.str());
}

}  // namespace imobif::mob
