#include "mob/params.hpp"

#include <stdexcept>

namespace imobif::mob {

const char* to_string(ModelId id) {
  switch (id) {
    case ModelId::kNone:
      return "none";
    case ModelId::kRandomWaypoint:
      return "random-waypoint";
    case ModelId::kGaussMarkov:
      return "gauss-markov";
    case ModelId::kGroup:
      return "group";
    case ModelId::kTrace:
      return "trace";
  }
  return "?";
}

ModelId model_from_string(const std::string& name) {
  if (name == "none") return ModelId::kNone;
  if (name == "random-waypoint" || name == "rwp") {
    return ModelId::kRandomWaypoint;
  }
  if (name == "gauss-markov") return ModelId::kGaussMarkov;
  if (name == "group" || name == "rpgm") return ModelId::kGroup;
  if (name == "trace") return ModelId::kTrace;
  throw std::invalid_argument("mob: unknown model '" + name + "'");
}

void ModelParams::validate() const {
  using util::MetersPerSecond;
  using util::Seconds;
  if (!enabled()) return;
  if (!(update_s > Seconds{0.0})) {
    throw std::invalid_argument("mob: update interval must be > 0");
  }
  if (!(speed_min >= MetersPerSecond{0.0} && speed_max >= speed_min)) {
    throw std::invalid_argument("mob: bad speed range");
  }
  if (pause_s < Seconds{0.0}) {
    throw std::invalid_argument("mob: negative pause");
  }
  if (model == ModelId::kGaussMarkov) {
    if (!(gm_alpha >= 0.0 && gm_alpha <= 1.0)) {
      throw std::invalid_argument("mob: gm_alpha outside [0, 1]");
    }
    if (gm_speed_sigma < MetersPerSecond{0.0} || gm_dir_sigma_rad < 0.0) {
      throw std::invalid_argument("mob: negative Gauss-Markov sigma");
    }
  }
  if (model == ModelId::kGroup) {
    if (group_count == 0) {
      throw std::invalid_argument("mob: group count must be >= 1");
    }
    if (!(group_radius_m > util::Meters{0.0})) {
      throw std::invalid_argument("mob: group radius must be > 0");
    }
  }
  if (model == ModelId::kTrace) {
    if (trace_file.empty()) {
      throw std::invalid_argument("mob: trace model needs a trace_file");
    }
    // The path round-trips through the config grammar (snapshot meta, svc
    // submit messages), where '#' and ';' start comments and surrounding
    // whitespace is trimmed — reject paths the grammar cannot carry.
    if (trace_file.find_first_of("#;\n\r") != std::string::npos ||
        trace_file.front() == ' ' || trace_file.back() == ' ') {
      throw std::invalid_argument(
          "mob: trace_file path must not contain '#', ';', newlines, or "
          "leading/trailing spaces (config-grammar round trip)");
    }
  }
}

}  // namespace imobif::mob
