// MotionDriver: drives a MobilityModel through the event queue.
//
// The driver owns the model and a repeating kMobTick event: every
// params.update_s it steps the model over the network's current positions
// and applies the moves — interleaving deterministically with the
// strategy-driven relay motion, HELLO ticks, and packet events that share
// the same (time, seq) order. Dead nodes never move; ambient motion is
// free by default (the paper's background mobility is environmental, not
// budgeted) unless params.charge_energy opts the scenario into charging
// the move budget via Node::move_towards.
//
// Checkpointing: the driver's dynamic state is (model rng, model state,
// pending tick time); src/snap encodes all three and restore_tick_at()
// re-arms the tick callback.
#pragma once

#include <cstdint>
#include <memory>

#include "mob/model.hpp"
#include "sim/time.hpp"
#include "util/units.hpp"

namespace imobif::net {
class Network;
}  // namespace imobif::net

namespace imobif::mob {

class MotionDriver {
 public:
  /// Reads the nodes' current (initial) positions from `network` to seed
  /// per-node model state. `move_cost` is the scenario's J/m constant,
  /// used only when params.charge_energy is set.
  MotionDriver(net::Network& network, const ModelParams& params,
               std::uint64_t seed, util::Meters area,
               util::JoulesPerMeter move_cost);
  ~MotionDriver();
  MotionDriver(const MotionDriver&) = delete;
  MotionDriver& operator=(const MotionDriver&) = delete;

  /// Schedules the first tick one update interval from now.
  void start();

  /// Re-arms the tick at an absolute time (checkpoint restore).
  void restore_tick_at(sim::Time when);

  MobilityModel& model() { return *model_; }
  const MobilityModel& model() const { return *model_; }
  const ModelParams& params() const { return model_->params(); }

 private:
  void tick();
  void schedule_at(sim::Time when);

  net::Network& network_;
  std::unique_ptr<MobilityModel> model_;
  // snap:transient(per-meter cost constant re-derived from scenario params by create_shell)
  util::JoulesPerMeter move_cost_;
};

}  // namespace imobif::mob
