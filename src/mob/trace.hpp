// Mobility trace files: external per-node waypoint schedules (the kTrace
// model's input — DESIGN.md §14).
//
// Format, one waypoint per line:
//
//   # comment (also ';'); blank lines ignored
//   <node> <time_s> <x_m> <y_m>
//
// Fields are whitespace-separated; times must be strictly increasing per
// node, all numbers finite. A node's position is the linear interpolation
// between bracketing waypoints, the first waypoint's position before its
// schedule starts, and the last one's after it ends (the node parks).
// Nodes absent from the trace simply keep whatever motion the scenario
// gives them (none, under kTrace).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geom/vec2.hpp"
#include "util/units.hpp"

namespace imobif::mob {

/// Hard cap on the node ids a trace may address; larger ids are parse
/// errors, keeping adversarial inputs from ballooning the schedule table.
inline constexpr std::size_t kMaxTraceNodes = 1u << 20;

// snap:transient(immutable trace input reloaded from params.trace_file)
struct Trace {
  // snap:transient(trace waypoint value type)
  struct Waypoint {
    double time_s = 0.0;
    geom::Vec2 position;
  };

  /// Indexed by node id; nodes without waypoints have empty schedules.
  std::vector<std::vector<Waypoint>> schedules;

  bool has(std::size_t node) const {
    return node < schedules.size() && !schedules[node].empty();
  }

  /// Interpolated position of `node` at `when`; requires has(node).
  geom::Vec2 position_at(std::size_t node, util::Seconds when) const;
};

/// Parses trace text; throws std::invalid_argument naming the offending
/// line on malformed input (fuzzed by tests/fuzz/fuzz_mob_trace.cpp).
Trace parse_trace(const std::string& text);

/// Reads and parses `path`; throws std::runtime_error when unreadable.
Trace load_trace(const std::string& path);

}  // namespace imobif::mob
