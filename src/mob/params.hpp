// Background-mobility model parameters (src/mob — DESIGN.md §14).
//
// kNone preserves the paper's static topology byte-for-byte: no motion
// events are scheduled, no RNG is drawn, and every committed figure keeps
// its exact bytes. The enabled models drive ambient node motion through
// the simulator's event queue, interleaved with (and independent of) the
// strategy-driven relay motion in core/.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace imobif::mob {

enum class ModelId : std::uint8_t {
  kNone = 0,            ///< static background topology (the paper's default)
  kRandomWaypoint = 1,  ///< waypoint + speed + pause per node
  kGaussMarkov = 2,     ///< memory-alpha speed/heading random walk
  kGroup = 3,           ///< reference-point group mobility (RPGM)
  kTrace = 4,           ///< waypoint schedules parsed from a trace file
};

const char* to_string(ModelId id);
ModelId model_from_string(const std::string& name);

// snap:transient(config struct, persisted wholesale as scenario text in the meta section)
struct ModelParams {
  ModelId model = ModelId::kNone;
  /// Background-motion tick: every enabled model advances all nodes once
  /// per tick through a kMobTick simulator event.
  util::Seconds update_s{1.0};
  /// Node speed range (random waypoint / group draws; the Gauss–Markov
  /// clamp, whose mean speed is the midpoint of the range).
  util::MetersPerSecond speed_min{0.5};
  util::MetersPerSecond speed_max{1.5};
  /// Pause at each waypoint (random waypoint and group reference points).
  util::Seconds pause_s{10.0};
  /// Gauss–Markov memory (0 = white noise, 1 = frozen) and per-tick noise.
  double gm_alpha = 0.75;
  util::MetersPerSecond gm_speed_sigma{0.25};
  double gm_dir_sigma_rad = 0.5;
  /// Reference-point group mobility: nodes join groups round-robin; each
  /// group's reference point walks like a random-waypoint node and members
  /// jitter within group_radius_m of their formation offset.
  std::size_t group_count = 4;
  util::Meters group_radius_m{50.0};
  /// Trace file path (kTrace); format in DESIGN.md §14. The path is
  /// embedded in scenario text, so farm workers must see the same file.
  std::string trace_file;
  /// Charge background motion at k J/m against the battery. Off by
  /// default: ambient motion models the environment, not actuation the
  /// strategy pays for.
  bool charge_energy = false;

  bool enabled() const { return model != ModelId::kNone; }
  void validate() const;
};

}  // namespace imobif::mob
