#include "mob/driver.hpp"

#include <utility>
#include <vector>

#include "net/network.hpp"
#include "sim/event_tag.hpp"

namespace imobif::mob {

MotionDriver::MotionDriver(net::Network& network, const ModelParams& params,
                           std::uint64_t seed, util::Meters area,
                           util::JoulesPerMeter move_cost)
    : network_(network),
      model_(make_model(params, seed, area, network.positions())),
      move_cost_(move_cost) {}

MotionDriver::~MotionDriver() = default;

void MotionDriver::start() {
  schedule_at(network_.simulator().now() +
              sim::Time::from_seconds(params().update_s.value()));
}

void MotionDriver::restore_tick_at(sim::Time when) { schedule_at(when); }

void MotionDriver::schedule_at(sim::Time when) {
  network_.simulator().at(
      when, [this] { tick(); }, sim::EventTag::mob_tick());
}

void MotionDriver::tick() {
  const util::Seconds dt = params().update_s;
  std::vector<geom::Vec2> positions = network_.positions();
  model_->step(util::Seconds{network_.simulator().now().seconds()}, dt,
               positions);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    net::Node& node = network_.node(static_cast<net::NodeId>(i));
    if (!node.alive()) continue;  // the dead stay where they fell
    const geom::Vec2 target = positions[i];
    if (target == node.position()) continue;
    if (params().charge_energy) {
      // Budgeted motion: charge the move like strategy-driven relaying
      // does; move_towards truncates to what the battery affords (and
      // skips faulted nodes entirely).
      node.move_towards(target,
                        util::Meters{geom::distance(node.position(), target)},
                        move_cost_);
    } else {
      node.set_position(target);
    }
  }
  schedule_at(network_.simulator().now() +
              sim::Time::from_seconds(dt.value()));
}

}  // namespace imobif::mob
