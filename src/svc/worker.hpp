// Sweep-farm worker (DESIGN.md §11): connects to a coordinator, executes
// assigned work units through the checkpoint-aware sharded sweep runtime,
// and streams per-instance progress.
//
// A unit computes single-threaded, streaming one UnitProgress per
// finished instance; a companion heartbeat thread sends kHeartbeat at a
// fixed cadence for as long as the unit runs, so the coordinator's
// liveness check never mistakes one long instance for a hung worker (the
// frames share the socket behind a mutex). Crash recovery is the
// checkpoint layer's job — units carry the sweep's deterministic scope,
// so when --checkpoint-dir is shared between workers, a reassigned unit
// resumes the dead worker's per-instance results instead of recomputing
// them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "runtime/sweep.hpp"

namespace imobif::svc {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "worker";
  /// Checkpoint base options; `scope` is overwritten per assigned unit
  /// with the sweep's scope, and resume is forced on whenever a directory
  /// is set (a worker exists to pick up where a lost one stopped).
  runtime::CheckpointOptions checkpoint;
  /// Test hook: _exit(1) after this many instances completed across all
  /// units, before the instance's progress frame is sent — a
  /// deterministic stand-in for "worker died mid-unit". 0 disables.
  std::uint64_t crash_after_instances = 0;
  int connect_timeout_ms = 5'000;
  int send_timeout_ms = 10'000;
  /// kHeartbeat cadence while a unit executes. Must stay well under the
  /// coordinator's heartbeat timeout (default 30 s) or a single slow
  /// instance gets this worker declared dead and its unit requeued.
  /// 0 disables mid-unit heartbeats (tests only).
  int heartbeat_interval_ms = 5'000;
  std::function<void(const std::string&)> log;
};

/// Runs until the coordinator closes the connection or sends kShutdown.
/// Returns 0 on orderly exit; throws SvcError when the coordinator is
/// unreachable or the protocol breaks.
int run_worker(const WorkerOptions& options);

}  // namespace imobif::svc
