#include "svc/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace imobif::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SvcError(ErrCode::kIo, what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SvcError(ErrCode::kIo, "not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::listen_on(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in addr = loopback_addr("127.0.0.1", port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, 64) < 0) throw_errno("listen");
  set_nonblocking(fd);
  return sock;
}

std::uint16_t Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port,
                          int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const sockaddr_in addr = loopback_addr(host, port);
  // Non-blocking connect: EINPROGRESS is the expected path; completion is
  // a bounded poll for writability, never an unbounded block.
  // lint:allow(socket-timeout) non-blocking fd, completion polled below
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  if (rc < 0) {
    std::vector<PollItem> items(1);
    items[0].fd = fd;
    items[0].want_write = true;
    if (poll_wait(items, timeout_ms) == 0 || !items[0].writable) {
      throw SvcError(ErrCode::kTimeout,
                     "connect to " + host + ":" + std::to_string(port) +
                         " timed out after " + std::to_string(timeout_ms) +
                         " ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      errno = err != 0 ? err : errno;
      throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
    }
  }
  return sock;
}

std::optional<Socket> Socket::accept_conn() {
  // Listener fd is non-blocking (set in listen_on), so a dry accept
  // returns EAGAIN instead of blocking.
  // lint:allow(socket-timeout) non-blocking listener, EAGAIN on dry accept
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return std::nullopt;
    }
    throw_errno("accept");
  }
  Socket sock(conn);
  set_nonblocking(conn);
  const int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Socket::ReadStatus Socket::read_available(std::string& out) {
  char buf[16384];
  bool any = false;
  for (;;) {
    // The fd is non-blocking; the caller polled for readability, and a
    // drained buffer returns EAGAIN immediately.
    // lint:allow(socket-timeout) non-blocking fd, readiness from poll_wait
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      any = true;
      continue;
    }
    if (n == 0) return ReadStatus::kEof;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return any ? ReadStatus::kData : ReadStatus::kWouldBlock;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return ReadStatus::kEof;
    throw_errno("recv");
  }
}

void Socket::write_all(std::string_view bytes, int timeout_ms) {
  std::size_t off = 0;
  const std::int64_t deadline = steady_now_ms() + timeout_ms;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      throw_errno("send");
    }
    const std::int64_t remaining = deadline - steady_now_ms();
    if (remaining <= 0) {
      throw SvcError(ErrCode::kTimeout,
                     "send stalled for " + std::to_string(timeout_ms) +
                         " ms with " + std::to_string(bytes.size() - off) +
                         " bytes unsent");
    }
    std::vector<PollItem> items(1);
    items[0].fd = fd_;
    items[0].want_write = true;
    poll_wait(items, static_cast<int>(remaining));
    if (items[0].closed) {
      throw SvcError(ErrCode::kIo, "peer closed during send");
    }
  }
}

int poll_wait(std::vector<PollItem>& items, int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(items.size());
  for (const PollItem& item : items) {
    pollfd p{};
    p.fd = item.fd;
    p.events = static_cast<short>((item.want_read ? POLLIN : 0) |
                                  (item.want_write ? POLLOUT : 0));
    fds.push_back(p);
  }
  int rc;
  for (;;) {
    rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc >= 0) break;
    if (errno != EINTR) throw_errno("poll");
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].readable = (fds[i].revents & POLLIN) != 0;
    items[i].writable = (fds[i].revents & POLLOUT) != 0;
    items[i].closed = (fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
  }
  return rc;
}

std::int64_t steady_now_ms() {
  // Service-layer heartbeat/deadline clock; the simulation itself never
  // consults it, so results stay seed-deterministic.
  // lint:allow(wall-clock) transport deadlines need real monotonic time
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace imobif::svc
