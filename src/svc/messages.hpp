// Typed messages of the sweep-service protocol (DESIGN.md §11).
//
// Every message is a plain struct with a to_frame() encoder and a static
// from_frame() decoder. Payloads are snap codec streams (tagged values
// inside one named section per message), so a field-order or type bug
// surfaces as a typed mismatch with a byte offset rather than garbled
// state. from_frame() verifies the frame type, requires the payload to be
// consumed exactly, and wraps codec failures in SvcError(kBadMessage).
#pragma once

#include <cstdint>
#include <string>

#include "exp/runner.hpp"
#include "svc/errors.hpp"
#include "svc/frame.hpp"

namespace imobif::svc {

enum class PeerRole : std::uint8_t {
  kClient = 1,
  kWorker = 2,
};

const char* to_string(PeerRole role);

/// The RunOptions subset that travels with a sweep. extra_flows is
/// deliberately absent: multi-flow workloads are a driver-local
/// construction and remote submission rejects them at the client.
struct RunOptionsWire {
  bool stop_on_first_death = false;
  double horizon_factor = 4.0;
  double horizon_slack_s = 600.0;
  bool multi_flow_blending = false;

  exp::RunOptions to_run_options() const;
  static RunOptionsWire from_run_options(const exp::RunOptions& options);
};

struct HelloMsg {
  PeerRole role = PeerRole::kClient;
  std::string name;  ///< free-form peer label for logs

  Frame to_frame() const;
  static HelloMsg from_frame(const Frame& frame);
};

struct HelloAckMsg {
  std::uint64_t peer_id = 0;

  Frame to_frame() const;
  static HelloAckMsg from_frame(const Frame& frame);
};

struct SubmitMsg {
  std::string bench_name;     ///< report's "bench" field
  std::string scenario_text;  ///< canonical exp::to_config_string dump
  std::uint64_t instances = 0;
  RunOptionsWire options;
  std::uint64_t unit_size = 0;  ///< instances per work unit; 0 = server pick

  Frame to_frame() const;
  static SubmitMsg from_frame(const Frame& frame);
};

struct SubmitAckMsg {
  std::uint64_t sweep_id = 0;
  std::uint64_t unit_count = 0;

  Frame to_frame() const;
  static SubmitAckMsg from_frame(const Frame& frame);
};

struct AssignUnitMsg {
  std::uint64_t sweep_id = 0;
  std::uint64_t unit_index = 0;
  std::uint64_t begin = 0;  ///< first instance index of the unit
  std::uint64_t end = 0;    ///< one past the last instance index
  std::string scenario_text;
  RunOptionsWire options;
  /// Checkpoint scope for the unit's files ("swp<content digest>-",
  /// see sweep_checkpoint_scope); deterministic per sweep *content*, so a
  /// reassigned unit resumes the dead worker's files when the workers
  /// share a checkpoint directory, and a daemon restart cannot alias a
  /// new sweep onto a different scenario's leftover files.
  std::string checkpoint_scope;

  Frame to_frame() const;
  static AssignUnitMsg from_frame(const Frame& frame);
};

struct UnitProgressMsg {
  std::uint64_t sweep_id = 0;
  std::uint64_t unit_index = 0;
  std::uint64_t instances_done = 0;  ///< within the unit

  Frame to_frame() const;
  static UnitProgressMsg from_frame(const Frame& frame);
};

struct UnitResultMsg {
  std::uint64_t sweep_id = 0;
  std::uint64_t unit_index = 0;
  /// snap::comparison_points_to_bytes of the unit's ordered points.
  std::string points_blob;

  Frame to_frame() const;
  static UnitResultMsg from_frame(const Frame& frame);
};

struct ProgressMsg {
  std::uint64_t sweep_id = 0;
  std::uint64_t instances_done = 0;
  std::uint64_t instances_total = 0;
  std::uint64_t units_done = 0;
  std::uint64_t units_total = 0;

  Frame to_frame() const;
  static ProgressMsg from_frame(const Frame& frame);
};

struct SweepDoneMsg {
  std::uint64_t sweep_id = 0;
  /// The aggregated runtime::SweepReport, pretty-printed — exactly what a
  /// local run of the same sweep writes.
  std::string report_json;
  /// The full ordered point list, so callers (bench --remote) can rebuild
  /// any artifact shape from the raw results.
  std::string points_blob;

  Frame to_frame() const;
  static SweepDoneMsg from_frame(const Frame& frame);
};

struct ErrorMsg {
  ErrCode code = ErrCode::kRemote;
  std::string detail;

  Frame to_frame() const;
  static ErrorMsg from_frame(const Frame& frame);
};

/// kHeartbeat and kShutdown carry empty payloads.
Frame make_heartbeat();
Frame make_shutdown();

}  // namespace imobif::svc
