#include "svc/errors.hpp"

namespace imobif::svc {

const char* to_string(ErrCode code) {
  switch (code) {
    case ErrCode::kBadMagic:
      return "bad-magic";
    case ErrCode::kVersionMismatch:
      return "version-mismatch";
    case ErrCode::kOversizedFrame:
      return "oversized-frame";
    case ErrCode::kBadFrame:
      return "bad-frame";
    case ErrCode::kBadMessage:
      return "bad-message";
    case ErrCode::kProtocolViolation:
      return "protocol-violation";
    case ErrCode::kUnknownSweep:
      return "unknown-sweep";
    case ErrCode::kWorkerLost:
      return "worker-lost";
    case ErrCode::kBadScenario:
      return "bad-scenario";
    case ErrCode::kSubmitRejected:
      return "submit-rejected";
    case ErrCode::kIo:
      return "io";
    case ErrCode::kTimeout:
      return "timeout";
    case ErrCode::kRemote:
      return "remote";
  }
  return "unknown";
}

SvcError::SvcError(ErrCode code, const std::string& reason)
    : std::runtime_error(std::string("svc [") + to_string(code) + "] " +
                         reason),
      code_(code) {}

}  // namespace imobif::svc
