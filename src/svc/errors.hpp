// Typed errors for the distributed sweep service (DESIGN.md §11).
//
// Every failure the service layer can produce carries an ErrCode, so
// callers branch on the class of failure instead of parsing strings, and
// the coordinator can forward a machine-readable code to the remote peer
// in an ErrorMsg frame. The enum follows the typed error/peer-handling
// idiom of networked-daemon codebases (one small enum, one exception type
// carrying it) rather than a per-failure exception hierarchy.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace imobif::svc {

enum class ErrCode : std::uint16_t {
  // Problems with an incoming byte stream / frame.
  kBadMagic = 1,         ///< frame header does not start with kFrameMagic
  kVersionMismatch = 2,  ///< peer speaks a different protocol version
  kOversizedFrame = 3,   ///< declared payload exceeds kMaxFramePayload
  kBadFrame = 4,         ///< unknown message type or malformed header
  kBadMessage = 5,       ///< payload does not decode as the typed message

  // Protocol-level violations (well-formed frames at the wrong time).
  kProtocolViolation = 6,  ///< e.g. a message before the Hello handshake
  kUnknownSweep = 7,       ///< frame references a sweep id we do not track

  // Scheduling / execution failures.
  kWorkerLost = 8,      ///< a unit exhausted its reassignment budget
  kBadScenario = 9,     ///< submitted scenario failed to parse or validate
  kSubmitRejected = 10, ///< coordinator refused the submission

  // Transport failures.
  kIo = 11,       ///< socket syscall failure (connect/bind/send/...)
  kTimeout = 12,  ///< a bounded wait elapsed
  kRemote = 13,   ///< the peer reported an error (detail holds its text)
};

const char* to_string(ErrCode code);

/// The one exception type of the service layer; carries the typed code
/// plus a human-readable reason.
class SvcError : public std::runtime_error {
 public:
  SvcError(ErrCode code, const std::string& reason);

  ErrCode code() const { return code_; }

 private:
  ErrCode code_;
};

}  // namespace imobif::svc
