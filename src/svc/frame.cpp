#include "svc/frame.hpp"

#include <cstddef>

namespace imobif::svc {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const std::string& buf, std::size_t pos) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos + 1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos + 2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos + 3]))
          << 24);
}

bool valid_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(MsgType::kHello) &&
         raw <= static_cast<std::uint8_t>(MsgType::kShutdown);
}

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kHelloAck:
      return "hello-ack";
    case MsgType::kSubmit:
      return "submit";
    case MsgType::kSubmitAck:
      return "submit-ack";
    case MsgType::kAssignUnit:
      return "assign-unit";
    case MsgType::kUnitProgress:
      return "unit-progress";
    case MsgType::kUnitResult:
      return "unit-result";
    case MsgType::kProgress:
      return "progress";
    case MsgType::kSweepDone:
      return "sweep-done";
    case MsgType::kError:
      return "error";
    case MsgType::kHeartbeat:
      return "heartbeat";
    case MsgType::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw SvcError(ErrCode::kOversizedFrame,
                   "encode: payload of " +
                       std::to_string(frame.payload.size()) +
                       " bytes exceeds cap of " +
                       std::to_string(kMaxFramePayload));
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  put_u32(out, kFrameMagic);
  put_u32(out, kProtocolVersion);
  out.push_back(static_cast<char>(frame.type));
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  return out;
}

void FrameDecoder::feed(std::string_view bytes) {
  buf_.append(bytes.data(), bytes.size());
}

void FrameDecoder::poison(ErrCode code, const std::string& reason) {
  poisoned_ = true;
  poison_code_ = code;
  poison_reason_ = reason;
  throw SvcError(code, reason);
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) throw SvcError(poison_code_, poison_reason_);
  if (buffered() < kFrameHeaderBytes) return std::nullopt;

  const std::uint32_t magic = get_u32(buf_, pos_);
  if (magic != kFrameMagic) {
    poison(ErrCode::kBadMagic, "frame magic 0x" + std::to_string(magic) +
                                   " at stream offset " + std::to_string(pos_));
  }
  const std::uint32_t version = get_u32(buf_, pos_ + 4);
  if (version != kProtocolVersion) {
    poison(ErrCode::kVersionMismatch,
           "peer protocol version " + std::to_string(version) +
               ", this build speaks " + std::to_string(kProtocolVersion));
  }
  const auto raw_type = static_cast<std::uint8_t>(buf_[pos_ + 8]);
  if (!valid_type(raw_type)) {
    poison(ErrCode::kBadFrame,
           "unknown message type " + std::to_string(raw_type));
  }
  const std::uint32_t length = get_u32(buf_, pos_ + 9);
  if (length > kMaxFramePayload) {
    poison(ErrCode::kOversizedFrame,
           "declared payload of " + std::to_string(length) +
               " bytes exceeds cap of " + std::to_string(kMaxFramePayload));
  }
  if (buffered() < kFrameHeaderBytes + length) return std::nullopt;

  Frame frame;
  frame.type = static_cast<MsgType>(raw_type);
  frame.payload = buf_.substr(pos_ + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return frame;
}

Endpoint parse_endpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    throw SvcError(ErrCode::kBadMessage,
                   "endpoint '" + text + "' is not host:port");
  }
  Endpoint ep;
  ep.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  std::size_t consumed = 0;
  unsigned long port = 0;  // NOLINT(google-runtime-int): stoul interface
  try {
    port = std::stoul(port_text, &consumed);
  } catch (const std::exception&) {
    throw SvcError(ErrCode::kBadMessage,
                   "endpoint '" + text + "' has a non-numeric port");
  }
  if (consumed != port_text.size() || port == 0 || port > 65535) {
    throw SvcError(ErrCode::kBadMessage,
                   "endpoint '" + text + "' has an invalid port");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

}  // namespace imobif::svc
