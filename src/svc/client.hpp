// Sweep-submission client (DESIGN.md §11): opens one connection to the
// coordinator, submits a scenario, streams progress callbacks, and
// returns the final report with the full decoded point list.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/experiments.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "svc/messages.hpp"

namespace imobif::svc {

struct SubmitOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string bench_name = "remote_sweep";
  exp::ScenarioParams params;
  std::uint64_t instances = 0;
  exp::RunOptions run_options;
  /// Instances per work unit; 0 lets the coordinator pick.
  std::uint64_t unit_size = 0;
  int connect_timeout_ms = 5'000;
  int send_timeout_ms = 10'000;
  /// Give up when the coordinator is silent this long (no progress, no
  /// result). Generous by default: a sweep's first progress frame only
  /// arrives once some worker finishes an instance.
  int idle_timeout_ms = 600'000;
  std::function<void(const ProgressMsg&)> on_progress;
  std::function<void(const std::string&)> log;
};

struct SweepResultData {
  /// Pretty-printed runtime::SweepReport JSON, byte-identical to what a
  /// local run of the same sweep writes (minus wall_ms, which neither
  /// side sets).
  std::string report_json;
  /// The full ordered point list, for callers that rebuild their own
  /// artifact shapes (bench --remote).
  std::vector<exp::ComparisonPoint> points;
};

/// Blocks until the sweep completes. Throws SvcError on connection
/// failure, protocol breakage, a coordinator-reported error, or idle
/// timeout.
SweepResultData submit_sweep(const SubmitOptions& options);

/// Asks a coordinator to shut down. Throws SvcError when unreachable.
void request_shutdown(const std::string& host, std::uint16_t port,
                      int timeout_ms = 5'000);

}  // namespace imobif::svc
