// Sweep-farm coordinator state machine (DESIGN.md §11).
//
// The coordinator owns no sockets: the serve loop (serve.hpp) feeds it
// connection lifecycle events and decoded frames, hands it a SendFn for
// replies, and drives time explicitly through on_tick(now_ms). That keeps
// every scheduling, retry, and merge decision in a deterministic,
// sleep-free unit-testable core — tests replay an event sequence with
// hand-picked timestamps and assert on the emitted frames.
//
// Determinism contract: a sweep submitted here produces a SweepReport
// byte-identical to a local run of the same scenario. Three properties
// carry that guarantee:
//   - units are instance ranges [begin, end) over the submitted count,
//     and the sharded runtime derives instance i's RNG from the absolute
//     index, so any unit partition reproduces the local per-instance
//     streams;
//   - results merge keyed by unit index, never by arrival order, and only
//     the FIRST result per unit is accepted (exactly-once even when a
//     presumed-lost worker later delivers a duplicate);
//   - the final report comes from make_comparison_report, the same
//     builder the local reference path uses, with wall_ms never set.
//
// Worker failure: a dead worker's connection drops (on_disconnect) or its
// heartbeat goes stale (on_tick); either way its assigned units return to
// the pending queue and are reassigned, up to max_unit_attempts
// assignments per unit — a unit that keeps losing workers fails the whole
// sweep with a typed kWorkerLost error instead of cycling forever. Units
// carry the sweep's content-derived checkpoint scope, so when workers
// share a checkpoint directory the replacement resumes the lost worker's
// files instead of recomputing finished instances.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "svc/frame.hpp"
#include "svc/messages.hpp"

namespace imobif::svc {

class Coordinator {
 public:
  /// Delivers a frame to a connected peer. Transport failures must be
  /// reported back as disconnects, not exceptions out of the send.
  using SendFn = std::function<void(std::uint64_t peer_id, const Frame&)>;
  using Logger = std::function<void(const std::string&)>;

  struct Options {
    /// Instances per work unit when a submission leaves unit_size at 0.
    std::uint64_t default_unit_size = 4;
    /// A busy worker silent for longer than this is presumed lost and its
    /// units are reassigned. Idle workers are exempt (a dead idle worker
    /// surfaces as a plain disconnect). Executing workers stream periodic
    /// kHeartbeat frames between instances, so this must exceed the
    /// worker heartbeat interval, not the per-instance runtime.
    std::int64_t heartbeat_timeout_ms = 30'000;
    /// Times a unit may be handed to a worker before the coordinator
    /// gives up on the sweep and reports kWorkerLost to the client. Caps
    /// the kill/requeue cycle a deterministically failing unit would
    /// otherwise loop through forever. 0 disables the cap.
    int max_unit_attempts = 5;
  };

  Coordinator(SendFn send, Options options, Logger log = {});

  /// A transport connection opened; the peer must Hello before anything
  /// else.
  void on_connect(std::uint64_t peer_id);

  /// A decoded frame arrived from `peer_id`. Protocol violations emit a
  /// kError frame and flag the peer for closing; they never throw.
  void on_frame(std::uint64_t peer_id, const Frame& frame,
                std::int64_t now_ms);

  /// The transport lost `peer_id`: requeue its units, drop its sweeps.
  void on_disconnect(std::uint64_t peer_id);

  /// Periodic heartbeat sweep; call at least every few hundred ms.
  void on_tick(std::int64_t now_ms);

  /// Peers the serve loop must close (protocol violators, stale workers).
  /// Closing triggers on_disconnect, which is where state is cleaned up.
  std::vector<std::uint64_t> take_peers_to_close();

  /// Set once a client sent kShutdown; the serve loop drains and exits.
  bool shutdown_requested() const { return shutdown_requested_; }

  // Introspection for tests and status logging.
  std::size_t connected_workers() const;
  std::size_t idle_workers() const;
  std::size_t active_sweeps() const { return sweeps_.size(); }
  std::size_t pending_units(std::uint64_t sweep_id) const;

 private:
  enum class UnitState : std::uint8_t { kPending, kAssigned, kDone };

  struct Unit {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    UnitState state = UnitState::kPending;
    std::uint64_t worker_id = 0;       ///< valid when kAssigned
    std::uint64_t instances_done = 0;  ///< progress within the unit
    int attempts = 0;                  ///< workers this unit was handed to
    std::string points_blob;           ///< set when kDone
  };

  struct Sweep {
    std::uint64_t id = 0;
    std::uint64_t client_id = 0;
    std::string bench_name;
    std::string scenario_text;
    exp::ScenarioParams params;
    RunOptionsWire options;
    std::string checkpoint_scope;  ///< content-derived, set at submit
    std::vector<Unit> units;
    std::uint64_t instances_total = 0;
    std::uint64_t units_done = 0;
  };

  struct Peer {
    std::uint64_t id = 0;
    std::optional<PeerRole> role;  ///< empty until Hello
    std::string name;
    bool busy = false;                 ///< worker: has an assigned unit
    std::uint64_t sweep_id = 0;        ///< worker: assigned unit's sweep
    std::uint64_t unit_index = 0;      ///< worker: assigned unit
    std::int64_t last_active_ms = 0;   ///< worker: last frame timestamp
  };

  void handle_hello(Peer& peer, const Frame& frame, std::int64_t now_ms);
  void handle_submit(Peer& peer, const Frame& frame);
  void handle_unit_progress(Peer& peer, const Frame& frame);
  void handle_unit_result(Peer& peer, const Frame& frame);
  void protocol_error(Peer& peer, ErrCode code, const std::string& detail);

  /// Assigns pending units (sweeps in id order, units in index order) to
  /// idle workers (peer id order) until one side runs out.
  void schedule();

  /// Returns the unit to the pending queue and frees the worker slot;
  /// fails the sweep instead when the unit's reassignment budget
  /// (max_unit_attempts) is exhausted.
  void requeue_assigned_unit(Peer& worker);

  /// Reports a typed failure to the sweep's client and drops the sweep.
  /// Workers still crunching its units deliver into handle_unit_result,
  /// which ignores unknown sweeps and frees the worker.
  void fail_sweep(std::uint64_t sweep_id, ErrCode code,
                  const std::string& detail);

  /// Sends the client a ProgressMsg reflecting the sweep's current state.
  void send_progress(const Sweep& sweep);

  /// All units done: merge points in unit order, build the canonical
  /// report, send SweepDone, drop the sweep.
  void finalize(Sweep& sweep);

  void log(const std::string& message) const;

  SendFn send_;
  Options options_;
  Logger log_;
  std::map<std::uint64_t, Peer> peers_;
  std::map<std::uint64_t, Sweep> sweeps_;
  std::vector<std::uint64_t> peers_to_close_;
  std::uint64_t next_sweep_id_ = 1;
  bool shutdown_requested_ = false;
};

/// Checkpoint scope shared by every unit of a sweep
/// ("swp<16-hex-digit digest>-"): workers prefix their unit files with
/// it, so a reassigned unit finds the files its dead predecessor left in
/// a shared checkpoint directory. The digest hashes the sweep's content —
/// scenario text, run options, instance count — not its daemon-local id:
/// sweep ids restart at 1 with the daemon, so an id-based scope would
/// resume a previous, different scenario's persisted .result files after
/// a restart. Content addressing makes collisions possible only between
/// identical sweeps, whose checkpoint files are interchangeable by the
/// determinism contract (so resuming them is correct, and a welcome
/// warm-start).
std::string sweep_checkpoint_scope(const std::string& scenario_text,
                                   const RunOptionsWire& options,
                                   std::uint64_t instances);

}  // namespace imobif::svc
