#include "svc/coordinator.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "exp/experiments.hpp"
#include "exp/scenario_io.hpp"
#include "runtime/comparison_report.hpp"
#include "snap/result_io.hpp"
#include "snap/state_hash.hpp"
#include "util/config.hpp"

namespace imobif::svc {

std::string sweep_checkpoint_scope(const std::string& scenario_text,
                                   const RunOptionsWire& options,
                                   std::uint64_t instances) {
  snap::StateHash hash;
  hash.begin_section("sweep-scope");
  hash.str(scenario_text);
  hash.boolean(options.stop_on_first_death);
  hash.f64(options.horizon_factor);
  hash.f64(options.horizon_slack_s);
  hash.boolean(options.multi_flow_blending);
  hash.u64(instances);
  hash.end_section();
  char digest[17];
  std::snprintf(digest, sizeof digest, "%016llx",
                static_cast<unsigned long long>(hash.digest()));
  return std::string("swp") + digest + "-";
}

Coordinator::Coordinator(SendFn send, Options options, Logger log)
    : send_(std::move(send)), options_(options), log_(std::move(log)) {}

void Coordinator::log(const std::string& message) const {
  if (log_) log_(message);
}

void Coordinator::on_connect(std::uint64_t peer_id) {
  Peer peer;
  peer.id = peer_id;
  peers_[peer_id] = std::move(peer);
}

void Coordinator::on_frame(std::uint64_t peer_id, const Frame& frame,
                           std::int64_t now_ms) {
  const auto it = peers_.find(peer_id);
  if (it == peers_.end()) return;  // already flagged for closing
  Peer& peer = it->second;
  peer.last_active_ms = now_ms;
  try {
    if (!peer.role.has_value()) {
      if (frame.type != MsgType::kHello) {
        protocol_error(peer, ErrCode::kProtocolViolation,
                       std::string("expected Hello, got ") +
                           to_string(frame.type));
        return;
      }
      handle_hello(peer, frame, now_ms);
      return;
    }
    switch (frame.type) {
      case MsgType::kSubmit:
        handle_submit(peer, frame);
        break;
      case MsgType::kUnitProgress:
        handle_unit_progress(peer, frame);
        break;
      case MsgType::kUnitResult:
        handle_unit_result(peer, frame);
        break;
      case MsgType::kHeartbeat:
        break;  // last_active_ms already refreshed
      case MsgType::kShutdown:
        log("shutdown requested by peer " + std::to_string(peer.id));
        shutdown_requested_ = true;
        break;
      case MsgType::kError: {
        // A peer reporting a failure (e.g. a worker whose unit threw).
        // Close it; on_disconnect requeues anything it was assigned.
        const ErrorMsg err = ErrorMsg::from_frame(frame);
        log("peer " + std::to_string(peer.id) + " reported " +
            to_string(err.code) + ": " + err.detail);
        peers_to_close_.push_back(peer.id);
        break;
      }
      default:
        protocol_error(peer, ErrCode::kProtocolViolation,
                       std::string("unexpected ") + to_string(frame.type));
        break;
    }
  } catch (const SvcError& e) {
    protocol_error(peer, e.code(), e.what());
  }
}

void Coordinator::handle_hello(Peer& peer, const Frame& frame,
                               std::int64_t now_ms) {
  const HelloMsg hello = HelloMsg::from_frame(frame);
  peer.role = hello.role;
  peer.name = hello.name;
  peer.last_active_ms = now_ms;
  HelloAckMsg ack;
  ack.peer_id = peer.id;
  send_(peer.id, ack.to_frame());
  log(std::string(to_string(hello.role)) + " '" + hello.name +
      "' connected as peer " + std::to_string(peer.id));
  if (hello.role == PeerRole::kWorker) schedule();
}

void Coordinator::handle_submit(Peer& peer, const Frame& frame) {
  if (peer.role != PeerRole::kClient) {
    protocol_error(peer, ErrCode::kProtocolViolation,
                   "Submit from a non-client peer");
    return;
  }
  const SubmitMsg submit = SubmitMsg::from_frame(frame);

  Sweep sweep;
  try {
    exp::apply_config(util::Config::from_string(submit.scenario_text),
                      sweep.params);
  } catch (const std::exception& e) {
    ErrorMsg err;
    err.code = ErrCode::kBadScenario;
    err.detail = e.what();
    send_(peer.id, err.to_frame());
    return;
  }
  if (submit.instances == 0) {
    ErrorMsg err;
    err.code = ErrCode::kSubmitRejected;
    err.detail = "instances must be > 0";
    send_(peer.id, err.to_frame());
    return;
  }

  sweep.id = next_sweep_id_++;
  sweep.client_id = peer.id;
  sweep.bench_name = submit.bench_name;
  sweep.scenario_text = submit.scenario_text;
  sweep.options = submit.options;
  sweep.instances_total = submit.instances;
  sweep.checkpoint_scope = sweep_checkpoint_scope(
      sweep.scenario_text, sweep.options, sweep.instances_total);
  const std::uint64_t unit_size =
      submit.unit_size > 0 ? submit.unit_size
                           : std::max<std::uint64_t>(
                                 1, options_.default_unit_size);
  for (std::uint64_t begin = 0; begin < submit.instances;
       begin += unit_size) {
    Unit unit;
    unit.begin = begin;
    unit.end = std::min(begin + unit_size, submit.instances);
    sweep.units.push_back(unit);
  }

  SubmitAckMsg ack;
  ack.sweep_id = sweep.id;
  ack.unit_count = sweep.units.size();
  log("sweep " + std::to_string(sweep.id) + ": " +
      std::to_string(submit.instances) + " instances in " +
      std::to_string(sweep.units.size()) + " units from peer " +
      std::to_string(peer.id));
  sweeps_[sweep.id] = std::move(sweep);
  send_(peer.id, ack.to_frame());
  schedule();
}

void Coordinator::handle_unit_progress(Peer& peer, const Frame& frame) {
  if (peer.role != PeerRole::kWorker) {
    protocol_error(peer, ErrCode::kProtocolViolation,
                   "UnitProgress from a non-worker peer");
    return;
  }
  const UnitProgressMsg msg = UnitProgressMsg::from_frame(frame);
  const auto it = sweeps_.find(msg.sweep_id);
  if (it == sweeps_.end()) return;  // sweep cancelled; stale progress
  Sweep& sweep = it->second;
  if (msg.unit_index >= sweep.units.size()) return;
  Unit& unit = sweep.units[msg.unit_index];
  if (unit.state != UnitState::kAssigned || unit.worker_id != peer.id) {
    return;  // reassigned elsewhere; stale progress
  }
  unit.instances_done =
      std::min<std::uint64_t>(msg.instances_done, unit.end - unit.begin);
  send_progress(sweep);
}

void Coordinator::handle_unit_result(Peer& peer, const Frame& frame) {
  if (peer.role != PeerRole::kWorker) {
    protocol_error(peer, ErrCode::kProtocolViolation,
                   "UnitResult from a non-worker peer");
    return;
  }
  const UnitResultMsg msg = UnitResultMsg::from_frame(frame);
  // The worker is free again regardless of what the result is for: a
  // stale result from a cancelled sweep still means the unit finished.
  if (peer.busy && peer.sweep_id == msg.sweep_id &&
      peer.unit_index == msg.unit_index) {
    peer.busy = false;
  }
  const auto it = sweeps_.find(msg.sweep_id);
  if (it == sweeps_.end()) {
    schedule();
    return;
  }
  Sweep& sweep = it->second;
  if (msg.unit_index >= sweep.units.size()) {
    protocol_error(peer, ErrCode::kProtocolViolation,
                   "UnitResult for unit " + std::to_string(msg.unit_index) +
                       " of " + std::to_string(sweep.units.size()));
    return;
  }
  Unit& unit = sweep.units[msg.unit_index];
  if (unit.state == UnitState::kDone) {
    // Exactly-once merge: a presumed-lost worker delivering late loses
    // the race; the first accepted result stands.
    log("sweep " + std::to_string(sweep.id) + " unit " +
        std::to_string(msg.unit_index) + ": duplicate result ignored");
    schedule();
    return;
  }
  unit.state = UnitState::kDone;
  unit.instances_done = unit.end - unit.begin;
  unit.points_blob = msg.points_blob;
  ++sweep.units_done;
  log("sweep " + std::to_string(sweep.id) + " unit " +
      std::to_string(msg.unit_index) + " done (" +
      std::to_string(sweep.units_done) + "/" +
      std::to_string(sweep.units.size()) + ")");
  send_progress(sweep);
  if (sweep.units_done == sweep.units.size()) {
    finalize(sweep);
    sweeps_.erase(it);
  }
  schedule();
}

void Coordinator::send_progress(const Sweep& sweep) {
  ProgressMsg msg;
  msg.sweep_id = sweep.id;
  msg.instances_total = sweep.instances_total;
  for (const Unit& unit : sweep.units) {
    msg.instances_done += unit.instances_done;
  }
  msg.units_total = sweep.units.size();
  msg.units_done = sweep.units_done;
  send_(sweep.client_id, msg.to_frame());
}

void Coordinator::finalize(Sweep& sweep) {
  std::vector<exp::ComparisonPoint> points;
  points.reserve(sweep.instances_total);
  try {
    for (const Unit& unit : sweep.units) {
      std::vector<exp::ComparisonPoint> part =
          snap::comparison_points_from_bytes(unit.points_blob);
      if (part.size() != unit.end - unit.begin) {
        throw std::runtime_error(
            "unit point count " + std::to_string(part.size()) +
            " != instance range " + std::to_string(unit.end - unit.begin));
      }
      points.insert(points.end(), part.begin(), part.end());
    }
  } catch (const std::exception& e) {
    ErrorMsg err;
    err.code = ErrCode::kRemote;
    err.detail = std::string("unit result merge failed: ") + e.what();
    send_(sweep.client_id, err.to_frame());
    return;
  }

  const runtime::SweepReport report =
      runtime::make_comparison_report(sweep.bench_name, sweep.params, points);
  SweepDoneMsg done;
  done.sweep_id = sweep.id;
  done.report_json = report.to_string();
  done.points_blob = snap::comparison_points_to_bytes(points);
  const Frame frame = done.to_frame();
  if (frame.payload.size() > kMaxFramePayload) {
    // Per-unit results fit under the frame cap, but their concatenation
    // may not; encode_frame throwing inside the serve SendFn would drop
    // the client with no explanation, so reject with a typed error
    // instead.
    ErrorMsg err;
    err.code = ErrCode::kOversizedFrame;
    err.detail = "sweep result too large for one frame (" +
                 std::to_string(frame.payload.size()) + " > " +
                 std::to_string(kMaxFramePayload) +
                 " bytes); resubmit as smaller sweeps";
    send_(sweep.client_id, err.to_frame());
    log("sweep " + std::to_string(sweep.id) + " result oversized (" +
        std::to_string(frame.payload.size()) + " bytes)");
    return;
  }
  send_(sweep.client_id, frame);
  log("sweep " + std::to_string(sweep.id) + " complete");
}

void Coordinator::schedule() {
  for (auto& [sweep_id, sweep] : sweeps_) {
    for (std::size_t unit_index = 0; unit_index < sweep.units.size();
         ++unit_index) {
      Unit& unit = sweep.units[unit_index];
      if (unit.state != UnitState::kPending) continue;
      Peer* idle = nullptr;
      for (auto& [peer_id, peer] : peers_) {
        if (peer.role == PeerRole::kWorker && !peer.busy) {
          idle = &peer;
          break;
        }
      }
      if (idle == nullptr) return;  // no capacity; retry on next event
      unit.state = UnitState::kAssigned;
      unit.worker_id = idle->id;
      unit.instances_done = 0;
      ++unit.attempts;
      idle->busy = true;
      idle->sweep_id = sweep_id;
      idle->unit_index = unit_index;

      AssignUnitMsg assign;
      assign.sweep_id = sweep_id;
      assign.unit_index = unit_index;
      assign.begin = unit.begin;
      assign.end = unit.end;
      assign.scenario_text = sweep.scenario_text;
      assign.options = sweep.options;
      assign.checkpoint_scope = sweep.checkpoint_scope;
      send_(idle->id, assign.to_frame());
      log("sweep " + std::to_string(sweep_id) + " unit " +
          std::to_string(unit_index) + " [" + std::to_string(unit.begin) +
          ", " + std::to_string(unit.end) + ") -> worker " +
          std::to_string(idle->id));
    }
  }
}

void Coordinator::requeue_assigned_unit(Peer& worker) {
  if (!worker.busy) return;
  worker.busy = false;
  const auto it = sweeps_.find(worker.sweep_id);
  if (it == sweeps_.end()) return;
  Sweep& sweep = it->second;
  if (worker.unit_index >= sweep.units.size()) return;
  Unit& unit = sweep.units[worker.unit_index];
  if (unit.state == UnitState::kAssigned && unit.worker_id == worker.id) {
    if (options_.max_unit_attempts > 0 &&
        unit.attempts >= options_.max_unit_attempts) {
      fail_sweep(sweep.id, ErrCode::kWorkerLost,
                 "unit " + std::to_string(worker.unit_index) + " lost " +
                     std::to_string(unit.attempts) +
                     " workers in a row; giving up");
      return;
    }
    unit.state = UnitState::kPending;
    unit.instances_done = 0;
    log("sweep " + std::to_string(sweep.id) + " unit " +
        std::to_string(worker.unit_index) + " requeued (worker " +
        std::to_string(worker.id) + " lost, attempt " +
        std::to_string(unit.attempts) + "/" +
        std::to_string(options_.max_unit_attempts) + ")");
  }
}

void Coordinator::fail_sweep(std::uint64_t sweep_id, ErrCode code,
                             const std::string& detail) {
  const auto it = sweeps_.find(sweep_id);
  if (it == sweeps_.end()) return;
  ErrorMsg err;
  err.code = code;
  err.detail = detail;
  send_(it->second.client_id, err.to_frame());
  log("sweep " + std::to_string(sweep_id) + " failed: " + detail);
  sweeps_.erase(it);
}

void Coordinator::on_disconnect(std::uint64_t peer_id) {
  const auto it = peers_.find(peer_id);
  if (it == peers_.end()) return;
  Peer peer = std::move(it->second);
  peers_.erase(it);
  if (peer.role == PeerRole::kWorker) {
    requeue_assigned_unit(peer);
    schedule();
    return;
  }
  if (peer.role == PeerRole::kClient) {
    // Drop the client's sweeps: nobody is left to receive the result.
    // Workers still crunching their units deliver into handle_unit_result,
    // which ignores unknown sweeps and frees the worker.
    for (auto sweep_it = sweeps_.begin(); sweep_it != sweeps_.end();) {
      if (sweep_it->second.client_id == peer_id) {
        log("sweep " + std::to_string(sweep_it->first) +
            " dropped (client disconnected)");
        sweep_it = sweeps_.erase(sweep_it);
      } else {
        ++sweep_it;
      }
    }
  }
}

void Coordinator::on_tick(std::int64_t now_ms) {
  for (auto& [peer_id, peer] : peers_) {
    if (peer.role != PeerRole::kWorker || !peer.busy) continue;
    if (now_ms - peer.last_active_ms < options_.heartbeat_timeout_ms) {
      continue;
    }
    // Per-instance UnitProgress doubles as the heartbeat, so a busy
    // worker this silent is hung (a crashed one drops the connection
    // instead). Close it; on_disconnect requeues the unit.
    log("worker " + std::to_string(peer_id) + " heartbeat timeout (" +
        std::to_string(now_ms - peer.last_active_ms) + " ms silent)");
    peers_to_close_.push_back(peer_id);
  }
}

void Coordinator::protocol_error(Peer& peer, ErrCode code,
                                 const std::string& detail) {
  log("peer " + std::to_string(peer.id) + ": " + to_string(code) + ": " +
      detail);
  ErrorMsg err;
  err.code = code;
  err.detail = detail;
  send_(peer.id, err.to_frame());
  peers_to_close_.push_back(peer.id);
}

std::vector<std::uint64_t> Coordinator::take_peers_to_close() {
  std::vector<std::uint64_t> out;
  out.swap(peers_to_close_);
  return out;
}

std::size_t Coordinator::connected_workers() const {
  std::size_t count = 0;
  for (const auto& [peer_id, peer] : peers_) {
    if (peer.role == PeerRole::kWorker) ++count;
  }
  return count;
}

std::size_t Coordinator::idle_workers() const {
  std::size_t count = 0;
  for (const auto& [peer_id, peer] : peers_) {
    if (peer.role == PeerRole::kWorker && !peer.busy) ++count;
  }
  return count;
}

std::size_t Coordinator::pending_units(std::uint64_t sweep_id) const {
  const auto it = sweeps_.find(sweep_id);
  if (it == sweeps_.end()) return 0;
  std::size_t count = 0;
  for (const Unit& unit : it->second.units) {
    if (unit.state == UnitState::kPending) ++count;
  }
  return count;
}

}  // namespace imobif::svc
