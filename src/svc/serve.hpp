// Poll-based event loop binding the Coordinator to TCP (DESIGN.md §11).
//
// One thread, one poll set: the listening socket plus every peer
// connection. Frames are sent synchronously with a bounded timeout — the
// service is loopback-only and its frames are small except SweepDone, so
// a per-send deadline is simpler and safer than per-peer outboxes; a peer
// that cannot drain a frame within the timeout is treated as lost.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "svc/coordinator.hpp"

namespace imobif::svc {

struct ServeOptions {
  /// Port to listen on (loopback only); 0 picks an ephemeral port.
  std::uint16_t port = 0;
  /// When non-empty, the bound port is written here once listening —
  /// tests and scripts using port 0 read it back.
  std::string port_file;
  /// Per-send deadline for a frame to a peer.
  int send_timeout_ms = 10'000;
  /// Poll granularity; also bounds heartbeat-check latency.
  int poll_interval_ms = 200;
  Coordinator::Options coordinator;
  Coordinator::Logger log;
};

/// Runs the coordinator until a client sends kShutdown. Returns 0 on a
/// clean shutdown; throws SvcError when the listener cannot be set up.
int serve(const ServeOptions& options);

}  // namespace imobif::svc
