#include "svc/client.hpp"

#include <string>
#include <vector>

#include "exp/scenario_io.hpp"
#include "snap/result_io.hpp"
#include "svc/frame.hpp"
#include "svc/socket.hpp"

namespace imobif::svc {

SweepResultData submit_sweep(const SubmitOptions& options) {
  const auto log = [&options](const std::string& message) {
    if (options.log) options.log(message);
  };
  if (options.instances == 0) {
    throw SvcError(ErrCode::kSubmitRejected, "instances must be > 0");
  }
  if (!options.run_options.extra_flows.empty()) {
    // Multi-flow workloads are a driver-local construction; the wire
    // format deliberately does not carry them (messages.hpp).
    throw SvcError(ErrCode::kSubmitRejected,
                   "extra_flows cannot travel over the wire");
  }

  Socket socket = Socket::connect_to(options.host, options.port,
                                     options.connect_timeout_ms);
  HelloMsg hello;
  hello.role = PeerRole::kClient;
  hello.name = options.bench_name;
  socket.write_all(encode_frame(hello.to_frame()), options.send_timeout_ms);

  SubmitMsg submit;
  submit.bench_name = options.bench_name;
  submit.scenario_text = exp::to_config_string(options.params);
  submit.instances = options.instances;
  submit.options = RunOptionsWire::from_run_options(options.run_options);
  submit.unit_size = options.unit_size;
  socket.write_all(encode_frame(submit.to_frame()), options.send_timeout_ms);

  FrameDecoder decoder;
  std::string chunk;
  std::int64_t last_activity_ms = steady_now_ms();
  while (true) {
    std::vector<PollItem> items;
    items.push_back(
        {socket.fd(), /*want_read=*/true, false, false, false, false});
    poll_wait(items, /*timeout_ms=*/500);
    const std::int64_t now_ms = steady_now_ms();
    if (!items.front().readable && !items.front().closed) {
      if (now_ms - last_activity_ms > options.idle_timeout_ms) {
        throw SvcError(ErrCode::kTimeout,
                       "coordinator silent for " +
                           std::to_string(now_ms - last_activity_ms) + " ms");
      }
      continue;
    }

    chunk.clear();
    const Socket::ReadStatus status = socket.read_available(chunk);
    if (!chunk.empty()) {
      decoder.feed(chunk);
      last_activity_ms = now_ms;
    }
    while (auto frame = decoder.next()) {
      switch (frame->type) {
        case MsgType::kHelloAck:
          break;
        case MsgType::kSubmitAck: {
          const SubmitAckMsg ack = SubmitAckMsg::from_frame(*frame);
          log("sweep " + std::to_string(ack.sweep_id) + " accepted: " +
              std::to_string(ack.unit_count) + " units");
          break;
        }
        case MsgType::kProgress: {
          const ProgressMsg progress = ProgressMsg::from_frame(*frame);
          if (options.on_progress) options.on_progress(progress);
          break;
        }
        case MsgType::kSweepDone: {
          const SweepDoneMsg done = SweepDoneMsg::from_frame(*frame);
          SweepResultData result;
          result.report_json = done.report_json;
          result.points =
              snap::comparison_points_from_bytes(done.points_blob);
          return result;
        }
        case MsgType::kError: {
          const ErrorMsg err = ErrorMsg::from_frame(*frame);
          throw SvcError(err.code, "coordinator: " + err.detail);
        }
        default:
          throw SvcError(ErrCode::kProtocolViolation,
                         std::string("unexpected ") +
                             to_string(frame->type));
      }
    }
    if (status == Socket::ReadStatus::kEof || items.front().closed) {
      throw SvcError(ErrCode::kIo,
                     "coordinator closed the connection mid-sweep");
    }
  }
}

void request_shutdown(const std::string& host, std::uint16_t port,
                      int timeout_ms) {
  Socket socket = Socket::connect_to(host, port, timeout_ms);
  HelloMsg hello;
  hello.role = PeerRole::kClient;
  hello.name = "shutdown";
  socket.write_all(encode_frame(hello.to_frame()), timeout_ms);
  socket.write_all(encode_frame(make_shutdown()), timeout_ms);
  // Wait for the coordinator to drop the connection so the daemon is
  // actually gone (not merely asked) when this returns.
  FrameDecoder decoder;
  std::string chunk;
  const std::int64_t deadline_ms = steady_now_ms() + timeout_ms;
  while (steady_now_ms() < deadline_ms) {
    std::vector<PollItem> items;
    items.push_back(
        {socket.fd(), /*want_read=*/true, false, false, false, false});
    poll_wait(items, /*timeout_ms=*/100);
    if (!items.front().readable && !items.front().closed) continue;
    chunk.clear();
    if (socket.read_available(chunk) == Socket::ReadStatus::kEof) return;
    if (!chunk.empty()) {
      decoder.feed(chunk);
      while (decoder.next()) {
        // Drain the HelloAck (and anything else) until EOF.
      }
    }
  }
}

}  // namespace imobif::svc
