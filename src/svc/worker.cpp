#include "svc/worker.hpp"

#include <unistd.h>

#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/scenario_io.hpp"
#include "snap/result_io.hpp"
#include "svc/messages.hpp"
#include "svc/socket.hpp"
#include "util/config.hpp"
#include "util/thread_annotations.hpp"

namespace imobif::svc {

namespace {

/// Sends kHeartbeat at a fixed cadence until stop() is called, taking
/// `send_mu` around each write so frames never interleave with the unit's
/// progress/result frames. A single instance can run far longer than the
/// coordinator's heartbeat timeout; without this thread the coordinator
/// would declare the worker hung and requeue the unit mid-compute.
class HeartbeatPump {
 public:
  HeartbeatPump(Socket& socket, util::Mutex& send_mu, int interval_ms,
                int send_timeout_ms) {
    if (interval_ms <= 0) return;
    thread_ = std::thread([this, &socket, &send_mu, interval_ms,
                           send_timeout_ms] {
      util::MutexLock lock(mu_);
      while (!stop_) {
        // A notification (or a spurious wakeup) re-checks stop_; only a
        // full quiet interval emits a heartbeat.
        if (cv_.wait_for_ms(mu_, interval_ms) !=
            util::CondVar::WaitStatus::kTimeout) {
          continue;
        }
        if (stop_) break;
        try {
          const util::MutexLock send_lock(send_mu);
          socket.write_all(encode_frame(make_heartbeat()), send_timeout_ms);
        } catch (const SvcError&) {
          return;  // transport gone; the unit's next send fails the same way
        }
      }
    });
  }

  ~HeartbeatPump() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    {
      const util::MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  bool stop_ IMOBIF_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

void run_unit(Socket& socket, const WorkerOptions& options,
              const AssignUnitMsg& assign,
              std::uint64_t& instances_completed) {
  exp::ScenarioParams params;
  exp::apply_config(util::Config::from_string(assign.scenario_text), params);

  runtime::CheckpointOptions checkpoint = options.checkpoint;
  checkpoint.scope = assign.checkpoint_scope;
  // A farm worker always resumes: finding a lost predecessor's files is
  // the normal case, not an opt-in.
  checkpoint.resume = !checkpoint.dir.empty();

  // Guards the socket's write side: the heartbeat thread and the unit's
  // progress/result frames must never interleave mid-frame.
  util::Mutex send_mu;
  HeartbeatPump heartbeat(socket, send_mu, options.heartbeat_interval_ms,
                          options.send_timeout_ms);

  const auto on_instance_done = [&](std::size_t absolute_index) {
    ++instances_completed;
    if (options.crash_after_instances > 0 &&
        instances_completed >= options.crash_after_instances) {
      // Deterministic stand-in for a worker dying mid-unit: skip atexit
      // handlers and flushes, exactly like a SIGKILL would, but at a
      // reproducible instance boundary. The progress frame for this
      // instance is deliberately never sent.
      _exit(1);
    }
    UnitProgressMsg progress;
    progress.sweep_id = assign.sweep_id;
    progress.unit_index = assign.unit_index;
    progress.instances_done = absolute_index - assign.begin + 1;
    const util::MutexLock send_lock(send_mu);
    socket.write_all(encode_frame(progress.to_frame()),
                     options.send_timeout_ms);
  };

  const std::vector<exp::ComparisonPoint> points =
      runtime::run_comparison_shard(params, assign.begin, assign.end,
                                    assign.options.to_run_options(),
                                    /*workers=*/1, checkpoint,
                                    on_instance_done);
  heartbeat.stop();

  UnitResultMsg result;
  result.sweep_id = assign.sweep_id;
  result.unit_index = assign.unit_index;
  result.points_blob = snap::comparison_points_to_bytes(points);
  socket.write_all(encode_frame(result.to_frame()), options.send_timeout_ms);
}

}  // namespace

int run_worker(const WorkerOptions& options) {
  const auto log = [&options](const std::string& message) {
    if (options.log) options.log(message);
  };

  Socket socket = Socket::connect_to(options.host, options.port,
                                     options.connect_timeout_ms);
  HelloMsg hello;
  hello.role = PeerRole::kWorker;
  hello.name = options.name;
  socket.write_all(encode_frame(hello.to_frame()), options.send_timeout_ms);

  FrameDecoder decoder;
  std::string chunk;
  std::uint64_t instances_completed = 0;
  bool acked = false;
  while (true) {
    std::vector<PollItem> items;
    items.push_back(
        {socket.fd(), /*want_read=*/true, false, false, false, false});
    poll_wait(items, /*timeout_ms=*/500);
    if (!items.front().readable && !items.front().closed) continue;

    chunk.clear();
    const Socket::ReadStatus status = socket.read_available(chunk);
    if (!chunk.empty()) decoder.feed(chunk);
    while (auto frame = decoder.next()) {
      switch (frame->type) {
        case MsgType::kHelloAck: {
          const HelloAckMsg ack = HelloAckMsg::from_frame(*frame);
          acked = true;
          log("registered as peer " + std::to_string(ack.peer_id));
          break;
        }
        case MsgType::kAssignUnit: {
          if (!acked) {
            throw SvcError(ErrCode::kProtocolViolation,
                           "AssignUnit before HelloAck");
          }
          const AssignUnitMsg assign = AssignUnitMsg::from_frame(*frame);
          log("unit " + std::to_string(assign.unit_index) + " of sweep " +
              std::to_string(assign.sweep_id) + ": instances [" +
              std::to_string(assign.begin) + ", " +
              std::to_string(assign.end) + ")");
          try {
            run_unit(socket, options, assign, instances_completed);
          } catch (const SvcError&) {
            throw;  // transport failure: no coordinator to report to
          } catch (const std::exception& e) {
            // The unit itself failed (bad scenario, checkpoint I/O).
            // Report and bail: rerunning a deterministic failure on the
            // same worker would loop forever.
            ErrorMsg err;
            err.code = ErrCode::kRemote;
            err.detail = std::string("unit execution failed: ") + e.what();
            socket.write_all(encode_frame(err.to_frame()),
                             options.send_timeout_ms);
            throw SvcError(ErrCode::kRemote, err.detail);
          }
          break;
        }
        case MsgType::kShutdown:
          log("shutdown from coordinator");
          return 0;
        case MsgType::kError: {
          const ErrorMsg err = ErrorMsg::from_frame(*frame);
          throw SvcError(err.code, "coordinator: " + err.detail);
        }
        default:
          throw SvcError(ErrCode::kProtocolViolation,
                         std::string("unexpected ") + to_string(frame->type));
      }
    }
    if (status == Socket::ReadStatus::kEof || items.front().closed) {
      log("coordinator closed the connection");
      return 0;
    }
  }
}

}  // namespace imobif::svc
