#include "svc/messages.hpp"

#include <utility>

#include "snap/codec.hpp"

namespace imobif::svc {

namespace {

/// Decodes a payload section with typed-error wrapping: a frame of the
/// wrong type is a protocol violation, a payload that fails the codec or
/// leaves trailing bytes is a bad message.
template <typename Fn>
auto decode_payload(const Frame& frame, MsgType expected, Fn&& fn) {
  if (frame.type != expected) {
    throw SvcError(ErrCode::kProtocolViolation,
                   std::string("expected ") + to_string(expected) +
                       " frame, got " + to_string(frame.type));
  }
  try {
    snap::StateReader reader(frame.payload);
    auto msg = fn(reader);
    if (!reader.at_end()) {
      throw std::runtime_error("trailing bytes after message");
    }
    return msg;
  } catch (const SvcError&) {
    throw;
  } catch (const std::exception& err) {
    throw SvcError(ErrCode::kBadMessage, std::string(to_string(expected)) +
                                             " payload: " + err.what());
  }
}

void encode_options(snap::StateWriter& w, const RunOptionsWire& options) {
  w.boolean(options.stop_on_first_death);
  w.f64(options.horizon_factor);
  w.f64(options.horizon_slack_s);
  w.boolean(options.multi_flow_blending);
}

RunOptionsWire decode_options(snap::StateReader& r) {
  RunOptionsWire options;
  options.stop_on_first_death = r.boolean();
  options.horizon_factor = r.f64();
  options.horizon_slack_s = r.f64();
  options.multi_flow_blending = r.boolean();
  return options;
}

}  // namespace

const char* to_string(PeerRole role) {
  switch (role) {
    case PeerRole::kClient:
      return "client";
    case PeerRole::kWorker:
      return "worker";
  }
  return "unknown";
}

exp::RunOptions RunOptionsWire::to_run_options() const {
  exp::RunOptions options;
  options.stop_on_first_death = stop_on_first_death;
  options.horizon_factor = horizon_factor;
  options.horizon_slack_s = util::Seconds{horizon_slack_s};
  options.multi_flow_blending = multi_flow_blending;
  return options;
}

RunOptionsWire RunOptionsWire::from_run_options(
    const exp::RunOptions& options) {
  RunOptionsWire wire;
  wire.stop_on_first_death = options.stop_on_first_death;
  wire.horizon_factor = options.horizon_factor;
  wire.horizon_slack_s = options.horizon_slack_s.value();
  wire.multi_flow_blending = options.multi_flow_blending;
  return wire;
}

Frame HelloMsg::to_frame() const {
  snap::StateWriter w;
  w.begin_section("hello");
  w.u8(static_cast<std::uint8_t>(role));
  w.str(name);
  w.end_section();
  return {MsgType::kHello, w.data()};
}

HelloMsg HelloMsg::from_frame(const Frame& frame) {
  return decode_payload(frame, MsgType::kHello, [](snap::StateReader& r) {
    r.begin_section("hello");
    HelloMsg msg;
    const std::uint8_t raw = r.u8();
    if (raw != static_cast<std::uint8_t>(PeerRole::kClient) &&
        raw != static_cast<std::uint8_t>(PeerRole::kWorker)) {
      throw std::runtime_error("unknown peer role " + std::to_string(raw));
    }
    msg.role = static_cast<PeerRole>(raw);
    msg.name = r.str();
    r.end_section();
    return msg;
  });
}

Frame HelloAckMsg::to_frame() const {
  snap::StateWriter w;
  w.begin_section("hello-ack");
  w.u64(peer_id);
  w.end_section();
  return {MsgType::kHelloAck, w.data()};
}

HelloAckMsg HelloAckMsg::from_frame(const Frame& frame) {
  return decode_payload(frame, MsgType::kHelloAck, [](snap::StateReader& r) {
    r.begin_section("hello-ack");
    HelloAckMsg msg;
    msg.peer_id = r.u64();
    r.end_section();
    return msg;
  });
}

Frame SubmitMsg::to_frame() const {
  snap::StateWriter w;
  w.begin_section("submit");
  w.str(bench_name);
  w.str(scenario_text);
  w.u64(instances);
  encode_options(w, options);
  w.u64(unit_size);
  w.end_section();
  return {MsgType::kSubmit, w.data()};
}

SubmitMsg SubmitMsg::from_frame(const Frame& frame) {
  return decode_payload(frame, MsgType::kSubmit, [](snap::StateReader& r) {
    r.begin_section("submit");
    SubmitMsg msg;
    msg.bench_name = r.str();
    msg.scenario_text = r.str();
    msg.instances = r.u64();
    msg.options = decode_options(r);
    msg.unit_size = r.u64();
    r.end_section();
    return msg;
  });
}

Frame SubmitAckMsg::to_frame() const {
  snap::StateWriter w;
  w.begin_section("submit-ack");
  w.u64(sweep_id);
  w.u64(unit_count);
  w.end_section();
  return {MsgType::kSubmitAck, w.data()};
}

SubmitAckMsg SubmitAckMsg::from_frame(const Frame& frame) {
  return decode_payload(frame, MsgType::kSubmitAck, [](snap::StateReader& r) {
    r.begin_section("submit-ack");
    SubmitAckMsg msg;
    msg.sweep_id = r.u64();
    msg.unit_count = r.u64();
    r.end_section();
    return msg;
  });
}

Frame AssignUnitMsg::to_frame() const {
  snap::StateWriter w;
  w.begin_section("assign-unit");
  w.u64(sweep_id);
  w.u64(unit_index);
  w.u64(begin);
  w.u64(end);
  w.str(scenario_text);
  encode_options(w, options);
  w.str(checkpoint_scope);
  w.end_section();
  return {MsgType::kAssignUnit, w.data()};
}

AssignUnitMsg AssignUnitMsg::from_frame(const Frame& frame) {
  return decode_payload(frame, MsgType::kAssignUnit, [](snap::StateReader& r) {
    r.begin_section("assign-unit");
    AssignUnitMsg msg;
    msg.sweep_id = r.u64();
    msg.unit_index = r.u64();
    msg.begin = r.u64();
    msg.end = r.u64();
    if (msg.end < msg.begin) {
      throw std::runtime_error("unit range end before begin");
    }
    msg.scenario_text = r.str();
    msg.options = decode_options(r);
    msg.checkpoint_scope = r.str();
    r.end_section();
    return msg;
  });
}

Frame UnitProgressMsg::to_frame() const {
  snap::StateWriter w;
  w.begin_section("unit-progress");
  w.u64(sweep_id);
  w.u64(unit_index);
  w.u64(instances_done);
  w.end_section();
  return {MsgType::kUnitProgress, w.data()};
}

UnitProgressMsg UnitProgressMsg::from_frame(const Frame& frame) {
  return decode_payload(
      frame, MsgType::kUnitProgress, [](snap::StateReader& r) {
        r.begin_section("unit-progress");
        UnitProgressMsg msg;
        msg.sweep_id = r.u64();
        msg.unit_index = r.u64();
        msg.instances_done = r.u64();
        r.end_section();
        return msg;
      });
}

Frame UnitResultMsg::to_frame() const {
  snap::StateWriter w;
  w.begin_section("unit-result");
  w.u64(sweep_id);
  w.u64(unit_index);
  w.str(points_blob);
  w.end_section();
  return {MsgType::kUnitResult, w.data()};
}

UnitResultMsg UnitResultMsg::from_frame(const Frame& frame) {
  return decode_payload(frame, MsgType::kUnitResult, [](snap::StateReader& r) {
    r.begin_section("unit-result");
    UnitResultMsg msg;
    msg.sweep_id = r.u64();
    msg.unit_index = r.u64();
    msg.points_blob = r.str();
    r.end_section();
    return msg;
  });
}

Frame ProgressMsg::to_frame() const {
  snap::StateWriter w;
  w.begin_section("progress");
  w.u64(sweep_id);
  w.u64(instances_done);
  w.u64(instances_total);
  w.u64(units_done);
  w.u64(units_total);
  w.end_section();
  return {MsgType::kProgress, w.data()};
}

ProgressMsg ProgressMsg::from_frame(const Frame& frame) {
  return decode_payload(frame, MsgType::kProgress, [](snap::StateReader& r) {
    r.begin_section("progress");
    ProgressMsg msg;
    msg.sweep_id = r.u64();
    msg.instances_done = r.u64();
    msg.instances_total = r.u64();
    msg.units_done = r.u64();
    msg.units_total = r.u64();
    r.end_section();
    return msg;
  });
}

Frame SweepDoneMsg::to_frame() const {
  snap::StateWriter w;
  w.begin_section("sweep-done");
  w.u64(sweep_id);
  w.str(report_json);
  w.str(points_blob);
  w.end_section();
  return {MsgType::kSweepDone, w.data()};
}

SweepDoneMsg SweepDoneMsg::from_frame(const Frame& frame) {
  return decode_payload(frame, MsgType::kSweepDone, [](snap::StateReader& r) {
    r.begin_section("sweep-done");
    SweepDoneMsg msg;
    msg.sweep_id = r.u64();
    msg.report_json = r.str();
    msg.points_blob = r.str();
    r.end_section();
    return msg;
  });
}

Frame ErrorMsg::to_frame() const {
  snap::StateWriter w;
  w.begin_section("error");
  w.u32(static_cast<std::uint32_t>(code));
  w.str(detail);
  w.end_section();
  return {MsgType::kError, w.data()};
}

ErrorMsg ErrorMsg::from_frame(const Frame& frame) {
  return decode_payload(frame, MsgType::kError, [](snap::StateReader& r) {
    r.begin_section("error");
    ErrorMsg msg;
    const std::uint32_t raw = r.u32();
    if (raw < static_cast<std::uint32_t>(ErrCode::kBadMagic) ||
        raw > static_cast<std::uint32_t>(ErrCode::kRemote)) {
      throw std::runtime_error("unknown error code " + std::to_string(raw));
    }
    msg.code = static_cast<ErrCode>(raw);
    msg.detail = r.str();
    r.end_section();
    return msg;
  });
}

Frame make_heartbeat() { return {MsgType::kHeartbeat, std::string()}; }

Frame make_shutdown() { return {MsgType::kShutdown, std::string()}; }

}  // namespace imobif::svc
