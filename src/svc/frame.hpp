// Length-prefixed binary framing for the sweep-service protocol
// (DESIGN.md §11).
//
// Wire layout of one frame, all multi-byte fields little-endian:
//
//   u32 magic   "ISWP" (0x50575349)
//   u32 version kProtocolVersion — rejected on mismatch, so two builds
//               speaking different protocols fail fast and typed instead
//               of misinterpreting each other's payloads
//   u8  type    MsgType
//   u32 length  payload byte count, capped at kMaxFramePayload
//   ...payload  `length` bytes; every message payload is a snap codec
//               stream (snap::StateWriter), so the payload carries its own
//               magic/version and per-value type tags on top of this
//               header's checks
//
// FrameDecoder is incremental: feed() arbitrary byte chunks as they
// arrive from a socket, next() yields complete frames. Malformed input
// (bad magic, foreign version, oversized or unknown-type frames) throws a
// typed SvcError naming the failure; a merely incomplete frame is not an
// error, next() simply returns nothing until more bytes arrive.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "svc/errors.hpp"

namespace imobif::svc {

/// Bumped whenever the frame header or any message layout changes.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// "ISWP" read as a little-endian u32.
inline constexpr std::uint32_t kFrameMagic = 0x50575349u;

/// Hard cap on a single frame's payload; a unit result for a very large
/// sweep fits comfortably, while a garbage length field cannot make the
/// decoder attempt a multi-gigabyte allocation.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

/// Frame header byte count (magic + version + type + length).
inline constexpr std::size_t kFrameHeaderBytes = 13;

enum class MsgType : std::uint8_t {
  kHello = 1,         ///< peer -> coordinator: role handshake
  kHelloAck = 2,      ///< coordinator -> peer: assigned peer id
  kSubmit = 3,        ///< client -> coordinator: scenario + instance count
  kSubmitAck = 4,     ///< coordinator -> client: sweep id + unit count
  kAssignUnit = 5,    ///< coordinator -> worker: run one instance range
  kUnitProgress = 6,  ///< worker -> coordinator: instances done in unit
  kUnitResult = 7,    ///< worker -> coordinator: encoded points of a unit
  kProgress = 8,      ///< coordinator -> client: sweep-level progress
  kSweepDone = 9,     ///< coordinator -> client: final report + points
  kError = 10,        ///< either direction: typed failure
  kHeartbeat = 11,    ///< worker -> coordinator: idle keepalive
  kShutdown = 12,     ///< client -> coordinator: stop serving
};

const char* to_string(MsgType type);

struct Frame {
  MsgType type = MsgType::kHeartbeat;
  std::string payload;
};

/// Serializes header + payload. Throws SvcError(kOversizedFrame) when the
/// payload exceeds kMaxFramePayload.
std::string encode_frame(const Frame& frame);

/// Incremental frame parser over a growing byte buffer.
class FrameDecoder {
 public:
  /// Appends raw bytes received from the transport.
  void feed(std::string_view bytes);

  /// Extracts the next complete frame, or std::nullopt when the buffer
  /// holds only a partial frame. Throws SvcError on malformed input; the
  /// decoder is then poisoned and every further call rethrows (a byte
  /// stream is unrecoverable once framing is lost).
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  [[noreturn]] void poison(ErrCode code, const std::string& reason);

  std::string buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
  ErrCode poison_code_ = ErrCode::kBadFrame;
  std::string poison_reason_;
};

/// "host:port" -> (host, port). Throws SvcError(kBadMessage) on malformed
/// input (missing colon, non-numeric or out-of-range port).
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};
Endpoint parse_endpoint(const std::string& text);

}  // namespace imobif::svc
