// Poll-based POSIX socket layer for the sweep service (DESIGN.md §11).
//
// Every descriptor this layer hands out is non-blocking; readiness always
// comes from poll_wait() with an explicit timeout, never from letting a
// read block. The repo's socket-timeout lint rule enforces exactly that
// discipline for src/svc/: raw blocking-read syscalls are banned outside
// this file's waived call sites.
//
// The simulator's determinism story is untouched by this layer: socket
// scheduling orders *when* frames arrive, but the coordinator's merge is
// keyed on unit indices, so results never depend on arrival order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "svc/errors.hpp"

namespace imobif::svc {

/// Movable RAII wrapper over a non-blocking socket descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Binds 127.0.0.1:<port> (port 0 = kernel-chosen) and listens.
  /// Loopback-only by design: the service trusts its peers and must not
  /// be reachable from outside the host unless deliberately proxied.
  /// Throws SvcError(kIo).
  static Socket listen_on(std::uint16_t port);

  /// Port actually bound (resolves port 0). Throws SvcError(kIo).
  std::uint16_t local_port() const;

  /// Connects to host:port, waiting at most timeout_ms for the handshake.
  /// Throws SvcError(kIo / kTimeout).
  static Socket connect_to(const std::string& host, std::uint16_t port,
                           int timeout_ms);

  /// Accepts one pending connection, or nullopt when none is ready.
  std::optional<Socket> accept_conn();

  enum class ReadStatus {
    kData,        ///< bytes were appended to `out`
    kWouldBlock,  ///< nothing available right now
    kEof,         ///< orderly shutdown or connection reset by the peer
  };

  /// Drains whatever is immediately available into `out` (non-blocking;
  /// call after poll_wait reports readability). Throws SvcError(kIo) on
  /// hard errors other than reset-by-peer, which reads as kEof.
  ReadStatus read_available(std::string& out);

  /// Writes the whole buffer, polling for writability between partial
  /// sends; gives up after timeout_ms. Throws SvcError(kIo / kTimeout).
  void write_all(std::string_view bytes, int timeout_ms);

 private:
  int fd_ = -1;
};

/// One descriptor's poll request/result pair.
struct PollItem {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  // Filled by poll_wait().
  bool readable = false;
  bool writable = false;
  bool closed = false;  ///< HUP/ERR/NVAL: treat as disconnect
};

/// poll(2) over `items` with a bounded timeout; fills the result flags
/// and returns the number of descriptors with any event. Throws
/// SvcError(kIo) on syscall failure (EINTR retries internally).
int poll_wait(std::vector<PollItem>& items, int timeout_ms);

/// Milliseconds on a monotonic clock, for heartbeat bookkeeping and poll
/// deadlines. Service-layer wall time only — simulation time always comes
/// from sim::Simulator.
std::int64_t steady_now_ms();

}  // namespace imobif::svc
