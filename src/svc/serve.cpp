#include "svc/serve.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "svc/frame.hpp"
#include "svc/socket.hpp"

namespace imobif::svc {

namespace {

struct Conn {
  Socket socket;
  FrameDecoder decoder;
};

void write_port_file(const std::string& path, std::uint16_t port) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path());
  }
  // Write to a temp name then rename: readers polling for the file never
  // observe a partial write.
  const std::filesystem::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw SvcError(ErrCode::kIo, "cannot write " + tmp.string());
    out << port << "\n";
  }
  std::filesystem::rename(tmp, target);
}

}  // namespace

int serve(const ServeOptions& options) {
  const auto log = [&options](const std::string& message) {
    if (options.log) options.log(message);
  };

  Socket listener = Socket::listen_on(options.port);
  const std::uint16_t port = listener.local_port();
  if (!options.port_file.empty()) write_port_file(options.port_file, port);
  log("listening on 127.0.0.1:" + std::to_string(port));

  std::map<std::uint64_t, Conn> conns;
  std::uint64_t next_peer_id = 1;
  std::vector<std::uint64_t> dead;

  Coordinator coordinator(
      [&conns, &dead, &options, &log](std::uint64_t peer_id,
                                      const Frame& frame) {
        const auto it = conns.find(peer_id);
        if (it == conns.end()) return;
        try {
          it->second.socket.write_all(encode_frame(frame),
                                      options.send_timeout_ms);
        } catch (const SvcError& e) {
          log("send to peer " + std::to_string(peer_id) +
              " failed: " + e.what());
          dead.push_back(peer_id);
        }
      },
      options.coordinator, options.log);

  const auto drop_peer = [&conns, &coordinator,
                          &log](std::uint64_t peer_id) {
    const auto it = conns.find(peer_id);
    if (it == conns.end()) return;
    conns.erase(it);
    coordinator.on_disconnect(peer_id);
    log("peer " + std::to_string(peer_id) + " disconnected");
  };

  std::string chunk;
  while (!coordinator.shutdown_requested()) {
    std::vector<PollItem> items;
    std::vector<std::uint64_t> item_peers;  // parallel to items[1..]
    items.push_back({listener.fd(), /*want_read=*/true, false, false,
                     false, false});
    for (const auto& [peer_id, conn] : conns) {
      items.push_back({conn.socket.fd(), /*want_read=*/true, false, false,
                       false, false});
      item_peers.push_back(peer_id);
    }
    poll_wait(items, options.poll_interval_ms);

    if (items.front().readable) {
      while (auto accepted = listener.accept_conn()) {
        const std::uint64_t peer_id = next_peer_id++;
        Conn conn;
        conn.socket = std::move(*accepted);
        conns[peer_id] = std::move(conn);
        coordinator.on_connect(peer_id);
        log("peer " + std::to_string(peer_id) + " connected");
      }
    }

    const std::int64_t now_ms = steady_now_ms();
    for (std::size_t i = 0; i < item_peers.size(); ++i) {
      const PollItem& item = items[i + 1];
      const std::uint64_t peer_id = item_peers[i];
      if (!item.readable && !item.closed) continue;
      const auto it = conns.find(peer_id);
      if (it == conns.end()) continue;
      Conn& conn = it->second;
      bool lost = item.closed;
      if (item.readable) {
        chunk.clear();
        const Socket::ReadStatus status = conn.socket.read_available(chunk);
        if (status == Socket::ReadStatus::kEof) lost = true;
        if (!chunk.empty()) {
          conn.decoder.feed(chunk);
          try {
            while (auto frame = conn.decoder.next()) {
              coordinator.on_frame(peer_id, *frame, now_ms);
            }
          } catch (const SvcError& e) {
            log("peer " + std::to_string(peer_id) +
                ": malformed frame: " + e.what());
            lost = true;
          }
        }
      }
      if (lost) dead.push_back(peer_id);
    }

    coordinator.on_tick(now_ms);
    for (const std::uint64_t peer_id : coordinator.take_peers_to_close()) {
      dead.push_back(peer_id);
    }
    // drop_peer -> on_disconnect -> schedule() can fail a send and append
    // to `dead` mid-drain, so index instead of iterating: appended peers
    // are handled in this same pass and no iterator is invalidated.
    for (std::size_t i = 0; i < dead.size(); ++i) drop_peer(dead[i]);
    dead.clear();
  }
  log("shutting down");
  return 0;
}

}  // namespace imobif::svc
