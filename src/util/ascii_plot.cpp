#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace imobif::util {

namespace {

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

Range axis_range(const std::vector<Series>& series, bool x_axis,
                 double extra = std::numeric_limits<double>::quiet_NaN()) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    const auto& v = x_axis ? s.xs : s.ys;
    for (double value : v) {
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
  }
  if (!std::isnan(extra)) {
    lo = std::min(lo, extra);
    hi = std::max(hi, extra);
  }
  if (!std::isfinite(lo) || !std::isfinite(hi)) return {0.0, 1.0};
  if (lo == hi) {
    lo -= 0.5;
    hi += 0.5;
  }
  return {lo, hi};
}

class Grid {
 public:
  Grid(int width, int height) : width_(width), height_(height) {
    cells_.assign(static_cast<std::size_t>(width * height), ' ');
  }

  void put(int col, int row, char ch) {
    if (col < 0 || col >= width_ || row < 0 || row >= height_) return;
    char& cell = cells_[static_cast<std::size_t>(row * width_ + col)];
    // Later series win over reference lines but never blank out markers.
    if (cell == ' ' || cell == '-' || ch != '-') cell = ch;
  }

  std::string row(int r) const {
    return std::string(cells_.begin() + r * width_,
                       cells_.begin() + (r + 1) * width_);
  }

 private:
  int width_;
  int height_;
  std::vector<char> cells_;
};

std::string frame(const Grid& grid, const PlotOptions& opts, Range xr,
                  Range yr, const std::vector<Series>& series) {
  std::ostringstream out;
  if (!opts.title.empty()) out << opts.title << '\n';
  const int label_w = 10;
  for (int r = 0; r < opts.height; ++r) {
    const double frac =
        1.0 - static_cast<double>(r) / std::max(1, opts.height - 1);
    const double yv = yr.lo + frac * (yr.hi - yr.lo);
    out << std::setw(label_w) << std::setprecision(3) << yv << " |"
        << grid.row(r) << '\n';
  }
  out << std::string(label_w + 1, ' ') << '+'
      << std::string(static_cast<std::size_t>(opts.width), '-') << '\n';
  std::ostringstream xl, xr_label;
  xl << std::setprecision(3) << xr.lo;
  xr_label << std::setprecision(3) << xr.hi;
  out << std::string(label_w + 2, ' ') << xl.str()
      << std::string(std::max<std::size_t>(
             1, static_cast<std::size_t>(opts.width) -
                    xl.str().size() - xr_label.str().size()),
         ' ')
      << xr_label.str() << '\n';
  if (!opts.x_label.empty() || !opts.y_label.empty()) {
    out << std::string(label_w + 2, ' ') << "x: " << opts.x_label
        << "   y: " << opts.y_label << '\n';
  }
  for (const auto& s : series) {
    out << std::string(label_w + 2, ' ') << s.marker << " = " << s.name
        << '\n';
  }
  return out.str();
}

}  // namespace

std::string render_scatter(const std::vector<Series>& series,
                           const PlotOptions& opts) {
  const Range xr = axis_range(series, /*x_axis=*/true);
  const Range yr = axis_range(series, /*x_axis=*/false, opts.h_line);
  Grid grid(opts.width, opts.height);

  auto col_of = [&](double x) {
    return static_cast<int>(std::lround((x - xr.lo) / (xr.hi - xr.lo) *
                                        (opts.width - 1)));
  };
  auto row_of = [&](double y) {
    return static_cast<int>(std::lround(
        (1.0 - (y - yr.lo) / (yr.hi - yr.lo)) * (opts.height - 1)));
  };

  if (!std::isnan(opts.h_line)) {
    const int r = row_of(opts.h_line);
    for (int c = 0; c < opts.width; ++c) grid.put(c, r, '-');
  }
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i) {
      grid.put(col_of(s.xs[i]), row_of(s.ys[i]), s.marker);
    }
  }
  return frame(grid, opts, xr, yr, series);
}

std::string render_cdf(const std::vector<Series>& samples,
                       const PlotOptions& opts) {
  // Convert each sample set (stored in ys) into a step-CDF series.
  std::vector<Series> curves;
  curves.reserve(samples.size());
  for (const auto& s : samples) {
    Series curve;
    curve.name = s.name;
    curve.marker = s.marker;
    std::vector<double> sorted = s.ys;
    std::sort(sorted.begin(), sorted.end());
    const auto n = static_cast<double>(sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      curve.xs.push_back(sorted[i]);
      curve.ys.push_back(static_cast<double>(i + 1) / n);
    }
    curves.push_back(std::move(curve));
  }
  PlotOptions o = opts;
  if (o.y_label.empty()) o.y_label = "CDF";
  return render_scatter(curves, o);
}

}  // namespace imobif::util
