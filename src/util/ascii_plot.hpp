// Minimal ASCII plotting so bench binaries can render the paper's figures
// (per-instance scatter series and CDFs) directly on the console.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace imobif::util {

struct Series {
  std::string name;
  char marker = '*';
  std::vector<double> xs;
  std::vector<double> ys;
};

struct PlotOptions {
  int width = 72;    ///< plot-area columns
  int height = 20;   ///< plot-area rows
  std::string title;
  std::string x_label;
  std::string y_label;
  /// Horizontal reference line (e.g. ratio = 1 in Figs 6/8); NaN disables it.
  double h_line = std::numeric_limits<double>::quiet_NaN();
};

/// Renders all series into one character grid with axes and a legend.
std::string render_scatter(const std::vector<Series>& series,
                           const PlotOptions& opts);

/// Renders empirical CDFs of the given samples (step curves), as in Fig 8.
std::string render_cdf(const std::vector<Series>& samples,
                       const PlotOptions& opts);

}  // namespace imobif::util
