// Streaming summary statistics and empirical distributions (CDF, histogram).
//
// Every figure in the paper reports either per-instance scatter series with a
// printed average (Fig 6, 7) or a CDF (Fig 8); these types back both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace imobif::util {

/// Welford streaming mean/variance plus min/max.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical distribution over a stored sample.
class Empirical {
 public:
  void add(double x) { sorted_ = false, data_.push_back(x); }
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Quantile in [0,1] by linear interpolation. Requires non-empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Empirical CDF value P(X <= x).
  double cdf(double x) const;

  double mean() const;
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  /// Fraction of samples strictly below / above a threshold.
  double fraction_below(double x) const;
  double fraction_above(double x) const;

  /// Sorted copy of the sample (for CDF plotting).
  const std::vector<double>& sorted() const;

 private:
  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Least-squares fit of y = c * x^p on log-log axes; used to regress the
/// max-lifetime strategy's alpha' parameter from historical data
/// (paper Section 3.2). All samples must be positive.
struct PowerFit {
  double exponent = 0.0;
  double coefficient = 0.0;
};
PowerFit fit_power_law(const std::vector<double>& xs,
                       const std::vector<double>& ys);

/// Percentile-bootstrap confidence interval for the sample mean: resample
/// with replacement `resamples` times, take the (1-confidence)/2 and
/// 1-(1-confidence)/2 quantiles of the resampled means. Deterministic in
/// `seed`. Requires a non-empty sample and confidence in (0, 1).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval bootstrap_mean_ci(const std::vector<double>& samples,
                           double confidence = 0.95,
                           std::size_t resamples = 2000,
                           std::uint64_t seed = 0x5eed);

/// Two-sample Kolmogorov-Smirnov statistic: the largest vertical distance
/// between the two empirical CDFs, in [0, 1]. Used by the figure benches
/// to report how separated two approaches' ratio distributions are.
/// Requires both samples non-empty.
double ks_statistic(const std::vector<double>& a,
                    const std::vector<double>& b);

}  // namespace imobif::util
