#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace imobif::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void write_csv(const std::string& path, const Table& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  table.print_csv(out);
  if (!out) throw std::runtime_error("write_csv: write failed for " + path);
}

}  // namespace imobif::util
