// Clang Thread Safety Analysis wrappers (DESIGN.md §13).
//
// Locking discipline in this repo is a *compile-time* property: every
// mutex is an imobif::util::Mutex (a capability), every piece of state it
// protects carries IMOBIF_GUARDED_BY(mu), and every function that needs
// the lock held says so with IMOBIF_REQUIRES(mu). On clang,
// -Werror=thread-safety (IMOBIF_THREAD_SAFETY=ON) turns any violation —
// touching guarded state without the lock, releasing a lock that is not
// held, forgetting a REQUIRES on a helper — into a build error. On other
// compilers the annotations expand to nothing and the wrappers are
// zero-overhead shims over <mutex>.
//
// Raw std::mutex / std::condition_variable members are banned everywhere
// in src/ by the AST linter (tools/imobif_astlint.py, rule raw-mutex):
// a raw mutex is invisible to the analysis, so a guard that nobody
// annotates is a guard nobody checks. This header is the single place
// the raw primitives may appear.
//
// The macro set follows the canonical capability vocabulary from the
// clang documentation; only the subset this codebase uses is defined.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define IMOBIF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IMOBIF_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define IMOBIF_CAPABILITY(x) IMOBIF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define IMOBIF_SCOPED_CAPABILITY IMOBIF_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define IMOBIF_GUARDED_BY(x) IMOBIF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define IMOBIF_PT_GUARDED_BY(x) IMOBIF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and keeps
/// them held).
#define IMOBIF_REQUIRES(...) \
  IMOBIF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define IMOBIF_ACQUIRE(...) \
  IMOBIF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (no args on a scoped
/// capability's destructor: releases everything the object holds).
#define IMOBIF_RELEASE(...) \
  IMOBIF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts acquisition; first argument is the success value.
#define IMOBIF_TRY_ACQUIRE(...) \
  IMOBIF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define IMOBIF_EXCLUDES(...) \
  IMOBIF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables the analysis inside one function body. Use only
/// where the analysis cannot follow the code (none needed so far).
#define IMOBIF_NO_THREAD_SAFETY_ANALYSIS \
  IMOBIF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace imobif::util {

/// std::mutex as an annotated capability. Prefer MutexLock over manual
/// lock()/unlock() pairs; the explicit methods exist for the rare
/// split-scope pattern and keep the analysis informed either way.
class IMOBIF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IMOBIF_ACQUIRE() { mu_.lock(); }
  void unlock() IMOBIF_RELEASE() { mu_.unlock(); }
  bool try_lock() IMOBIF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;  // the one blessed raw-mutex member (see file comment)
};

/// RAII lock over a Mutex; the analysis tracks the capability for the
/// scope's extent exactly like std::lock_guard would take it at runtime.
class IMOBIF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IMOBIF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() IMOBIF_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Built on
/// std::condition_variable_any (Mutex is a BasicLockable), which costs an
/// extra internal mutex per CV — irrelevant on the wait paths this repo
/// has (pool idle wait, heartbeat cadence), and in exchange every wait
/// site states its lock requirement in the signature.
///
/// There are deliberately no predicate overloads: a predicate lambda
/// reading guarded state is analyzed as its own function, where the
/// capability is not visibly held, so clang would (correctly) reject it.
/// Write the standard explicit loop instead:
///
///   MutexLock lock(mu_);
///   while (!stop_) cv_.wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires before returning.
  void wait(Mutex& mu) IMOBIF_REQUIRES(mu) { cv_.wait(mu); }

  /// wait() with a timeout; kTimeout after ~`ms` without a notification.
  /// Spurious wakeups surface as kNotified — re-check the condition and
  /// the caller's own deadline logic, exactly as with std::cv_status.
  enum class WaitStatus { kNotified, kTimeout };
  WaitStatus wait_for_ms(Mutex& mu, int ms) IMOBIF_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::milliseconds(ms)) ==
                   std::cv_status::timeout
               ? WaitStatus::kTimeout
               : WaitStatus::kNotified;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace imobif::util
