#include "util/args.hpp"

#include <stdexcept>

namespace imobif::util {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {  // bare "--": everything after is positional
      for (++i; i < argc; ++i) positional_.push_back(argv[i]);
      break;
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` unless the next token is itself a flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: --" + key +
                                " expects a number, got " + it->second);
  }
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: --" + key +
                                " expects an integer, got " + it->second);
  }
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Args: --" + key +
                              " expects a boolean, got " + v);
}

std::vector<std::string> Args::keys() const {
  std::vector<std::string> out;
  out.reserve(flags_.size());
  for (const auto& [key, value] : flags_) out.push_back(key);
  return out;
}

}  // namespace imobif::util
