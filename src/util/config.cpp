#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace imobif::util {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Config Config::from_string(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("Config: missing '=' on line " +
                                  std::to_string(line_no));
    }
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument("Config: empty key on line " +
                                  std::to_string(line_no));
    }
    config.values_[key] = value;
  }
  return config;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_string(buffer.str());
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  // std::from_chars, not std::stod: stod throws out_of_range on subnormal
  // values such as "5e-324", which the shortest-round-trip formatter
  // (util::Json::number_to_string) legitimately emits — the parser must
  // accept everything the formatter produces. from_chars also ignores the
  // locale and accepts a leading '+' not at all, so normalize that here.
  const char* first = text.data();
  const char* last = text.data() + text.size();
  if (first != last && *first == '+') ++first;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::invalid_argument || first == last) {
    throw std::invalid_argument("Config: key '" + key +
                                "' is not a number: " + text);
  }
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument("Config: key '" + key +
                                "' is out of double range: " + text);
  }
  if (ptr != last) {
    throw std::invalid_argument("Config: trailing junk in '" + key +
                                "': " + text);
  }
  return value;
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t consumed = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(it->second, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("Config: key '" + key +
                                "' is not an integer: " + it->second);
  }
  if (consumed != it->second.size()) {
    throw std::invalid_argument("Config: trailing junk in '" + key +
                                "': " + it->second);
  }
  return value;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = lower(it->second);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  throw std::invalid_argument("Config: key '" + key +
                              "' is not a boolean: " + it->second);
}

}  // namespace imobif::util
