// Debug contract macros: machine-checked invariants for the hot layers.
//
// IMOBIF_ASSERT(cond[, msg])  — internal invariant (bug in imobif if false).
// IMOBIF_ENSURE(cond[, msg])  — pre/postcondition at a subsystem boundary.
//
// Both are active when the build defines IMOBIF_ENABLE_CHECKS (the
// -DIMOBIF_CHECKS=ON CMake option) or in any build without NDEBUG (i.e.
// Debug). Otherwise they expand to ((void)0): the condition is *not*
// evaluated, so Release binaries are bit-identical to pre-contract builds.
// Defining IMOBIF_CHECKS_OFF force-disables them regardless of build type
// (used by the self-test to pin the disabled expansion).
//
// On failure they print `kind failed: expr (file:line): msg` to stderr and
// abort() — loud, sanitizer-friendly, and matched by gtest death tests.
#pragma once

namespace imobif::util {

/// Reports a contract violation and aborts. `msg` may be nullptr.
[[noreturn]] void check_fail(const char* kind, const char* expr,
                             const char* file, int line, const char* msg);

}  // namespace imobif::util

#if defined(IMOBIF_CHECKS_OFF)
#define IMOBIF_CHECKS_ENABLED 0
#elif defined(IMOBIF_ENABLE_CHECKS) || !defined(NDEBUG)
#define IMOBIF_CHECKS_ENABLED 1
#else
#define IMOBIF_CHECKS_ENABLED 0
#endif

#if IMOBIF_CHECKS_ENABLED

#define IMOBIF_CHECK_IMPL_(kind, cond, msg)                                 \
  (static_cast<bool>(cond)                                                  \
       ? static_cast<void>(0)                                               \
       : ::imobif::util::check_fail(kind, #cond, __FILE__, __LINE__, msg))

#else  // contracts compiled out: the condition is not evaluated.

#define IMOBIF_CHECK_IMPL_(kind, cond, msg) static_cast<void>(0)

#endif

// Dispatch on 1 vs 2 arguments so both IMOBIF_ASSERT(cond) and
// IMOBIF_ASSERT(cond, "msg") work.
#define IMOBIF_CHECK_SELECT_(a1, a2, name, ...) name
#define IMOBIF_CHECK_1_(kind, cond) IMOBIF_CHECK_IMPL_(kind, cond, nullptr)
#define IMOBIF_CHECK_2_(kind, cond, msg) IMOBIF_CHECK_IMPL_(kind, cond, msg)

#define IMOBIF_ASSERT(...)                                              \
  IMOBIF_CHECK_SELECT_(__VA_ARGS__, IMOBIF_CHECK_2_, IMOBIF_CHECK_1_, ) \
  ("IMOBIF_ASSERT", __VA_ARGS__)

#define IMOBIF_ENSURE(...)                                              \
  IMOBIF_CHECK_SELECT_(__VA_ARGS__, IMOBIF_CHECK_2_, IMOBIF_CHECK_1_, ) \
  ("IMOBIF_ENSURE", __VA_ARGS__)
