// Minimal key = value configuration files for the experiment CLI.
//
// Grammar: one `key = value` pair per line; `#` and `;` start comments;
// blank lines ignored; keys are case-sensitive; later duplicates win.
// Values are retrieved typed, with parse errors reported by exception.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

namespace imobif::util {

class Config {
 public:
  Config() = default;

  /// Parses from text; throws std::invalid_argument with a line number on
  /// malformed input.
  static Config from_string(const std::string& text);

  /// Parses a file; throws std::runtime_error when unreadable.
  static Config from_file(const std::string& path);

  bool has(const std::string& key) const { return values_.count(key) != 0; }
  std::size_t size() const { return values_.size(); }

  /// Typed getters return the default when the key is absent and throw
  /// std::invalid_argument when present but unparsable.
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  /// Accepts true/false, yes/no, on/off, 1/0 (case-insensitive).
  bool get_bool(const std::string& key, bool fallback) const;

  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

 private:
  std::unordered_map<std::string, std::string> values_;
};

}  // namespace imobif::util
