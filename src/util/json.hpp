// Minimal JSON document builder for results export (no external deps).
//
// A `Json` value is a tagged union of null / bool / number / string /
// array / object. Objects preserve insertion order so serialized reports
// are stable and diffable; numbers serialize via std::to_chars shortest
// round-trip form so re-parsing recovers the exact double. Writer only —
// the repo's result artifacts are produced here and parsed elsewhere.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace imobif::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v);
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::int64_t v);
  Json(std::uint64_t v);
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json array() { return Json(Type::kArray); }
  static Json object() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Array append. Requires an array.
  void push_back(Json value);

  /// Object insert; overwrites in place when the key exists, otherwise
  /// appends (insertion order preserved). Requires an object.
  void set(const std::string& key, Json value);

  /// Object lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Element count of an array/object; 0 for scalars.
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Serializes the value. indent == 0 gives compact one-line output;
  /// indent > 0 pretty-prints with that many spaces per nesting level.
  std::string dump(int indent = 0) const;

  /// JSON string escaping (quotes, backslash, control characters) without
  /// the surrounding quotes.
  static std::string escape(const std::string& s);

  /// Shortest round-trip decimal form of `v`; non-finite values serialize
  /// as null (JSON has no NaN/Inf).
  static std::string number_to_string(double v);

 private:
  explicit Json(Type type) : type_(type) {}

  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string number_;  ///< pre-formatted decimal form
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace imobif::util
