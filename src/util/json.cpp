#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/check.hpp"

namespace imobif::util {

Json::Json(double v) : type_(Type::kNumber), number_(number_to_string(v)) {
  // A NaN/Inf reaching the results writer means an upstream metric is
  // garbage; fail loudly in checked builds. Release keeps the documented
  // fallback of emitting null (JSON has no NaN/Inf).
  IMOBIF_ASSERT(std::isfinite(v), "non-finite double written to Json");
  if (number_ == "null") type_ = Type::kNull;
}

Json::Json(std::int64_t v) : type_(Type::kNumber) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  number_.assign(buf, res.ptr);
}

Json::Json(std::uint64_t v) : type_(Type::kNumber) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  number_.assign(buf, res.ptr);
}

void Json::push_back(Json value) {
  if (type_ != Type::kArray)
    throw std::logic_error("Json::push_back on non-array");
  array_.push_back(std::move(value));
}

void Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) throw std::logic_error("Json::set on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return array_.size();
    case Type::kObject:
      return object_.size();
    default:
      return 0;
  }
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Json::number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // Shortest form that round-trips to the same double (C++17 to_chars).
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };

  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      out += number_;
      break;
    case Type::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += pretty ? "," : ",";
        newline_pad(depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ",";
        newline_pad(depth + 1);
        out += '"';
        out += escape(object_[i].first);
        out += pretty ? "\": " : "\":";
        object_[i].second.write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace imobif::util
