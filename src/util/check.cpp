#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace imobif::util {

void check_fail(const char* kind, const char* expr, const char* file, int line,
                const char* msg) {
  std::fprintf(stderr, "%s failed: %s (%s:%d)%s%s\n", kind, expr, file, line,
               msg != nullptr ? ": " : "", msg != nullptr ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace imobif::util
