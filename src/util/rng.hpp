// Deterministic, seedable random number generation.
//
// All stochastic behaviour in the simulator flows through Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256**, seeded via splitmix64 (the recommended pairing); both are
// implemented here so the library has no hidden dependence on the quality or
// stability of std:: engines across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace imobif::util {

/// splitmix64 step — used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1d2c3b4a5f6e7d8cULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Normal variate (Box-Muller; one fresh pair per call, no caching so
  /// the stream stays trivially reproducible).
  double normal(double mean, double sigma);

  /// Derive an independent child generator; used to give each subsystem its
  /// own stream so adding draws in one place does not perturb another.
  Rng fork();

  /// Mid-stream save/restore of the generator state (checkpointing).
  /// set_state rejects the all-zero word, which is a fixed point of
  /// xoshiro256** and would freeze the stream.
  std::array<std::uint64_t, 4> state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace imobif::util
