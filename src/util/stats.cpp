#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace imobif::util {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Empirical::add_all(const std::vector<double>& xs) {
  data_.insert(data_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

const std::vector<double>& Empirical::sorted() const {
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
  return data_;
}

double Empirical::quantile(double q) const {
  if (data_.empty()) throw std::logic_error("quantile of empty sample");
  q = std::clamp(q, 0.0, 1.0);
  const auto& s = sorted();
  if (s.size() == 1) return s.front();
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double Empirical::cdf(double x) const {
  if (data_.empty()) return 0.0;
  const auto& s = sorted();
  const auto it = std::upper_bound(s.begin(), s.end(), x);
  return static_cast<double>(it - s.begin()) / static_cast<double>(s.size());
}

double Empirical::mean() const {
  if (data_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum / static_cast<double>(data_.size());
}

double Empirical::fraction_below(double x) const {
  if (data_.empty()) return 0.0;
  const auto& s = sorted();
  const auto it = std::lower_bound(s.begin(), s.end(), x);
  return static_cast<double>(it - s.begin()) / static_cast<double>(s.size());
}

double Empirical::fraction_above(double x) const {
  if (data_.empty()) return 0.0;
  const auto& s = sorted();
  const auto it = std::upper_bound(s.begin(), s.end(), x);
  return static_cast<double>(s.end() - it) / static_cast<double>(s.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<long>((x - lo_) / width);
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

PowerFit fit_power_law(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_power_law: need >= 2 paired samples");
  }
  // Linear regression of log(y) on log(x).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0) {
      throw std::invalid_argument("fit_power_law: samples must be positive");
    }
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) {
    throw std::invalid_argument("fit_power_law: degenerate x values");
  }
  PowerFit fit;
  fit.exponent = (n * sxy - sx * sy) / denom;
  fit.coefficient = std::exp((sy - fit.exponent * sx) / n);
  return fit;
}

Interval bootstrap_mean_ci(const std::vector<double>& samples,
                           double confidence, std::size_t resamples,
                           std::uint64_t seed) {
  if (samples.empty()) {
    throw std::invalid_argument("bootstrap_mean_ci: empty sample");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("bootstrap_mean_ci: bad confidence");
  }
  if (resamples == 0) {
    throw std::invalid_argument("bootstrap_mean_ci: zero resamples");
  }
  Rng rng(seed);
  Empirical means;
  const std::size_t n = samples.size();
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += samples[rng.uniform_int(0, n - 1)];
    }
    means.add(sum / static_cast<double>(n));
  }
  const double tail = (1.0 - confidence) / 2.0;
  return Interval{means.quantile(tail), means.quantile(1.0 - tail)};
}

double ks_statistic(const std::vector<double>& a,
                    const std::vector<double>& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_statistic: empty sample");
  }
  std::vector<double> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    // Advance whichever CDF steps next; on ties advance both.
    const double xa = sa[ia];
    const double xb = sb[ib];
    if (xa <= xb) {
      while (ia < sa.size() && sa[ia] == xa) ++ia;
    }
    if (xb <= xa) {
      while (ib < sb.size() && sb[ib] == xb) ++ib;
    }
    d = std::max(d, std::fabs(static_cast<double>(ia) / na -
                              static_cast<double>(ib) / nb));
  }
  return d;
}

}  // namespace imobif::util
