// Tiny command-line flag parser for the example/bench executables.
//
// Accepts `--key=value`, `--key value`, boolean `--key`, and positional
// arguments. Unknown flags are kept (callers decide whether to reject);
// `remaining()` exposes positionals in order.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace imobif::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const { return flags_.count(key) != 0; }

  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  /// A bare `--flag` counts as true; `--flag=false` etc. parse normally.
  bool get_bool(const std::string& key, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Keys seen on the command line, for unknown-flag validation.
  std::vector<std::string> keys() const;

 private:
  std::string program_;
  std::unordered_map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace imobif::util
