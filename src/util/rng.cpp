#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace imobif::util {

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span = hi - lo + 1;  // wraps to 0 for the full range
  if (span == 0) return (*this)();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + draw % span;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential: mean <= 0");
  // uniform01() can return exactly 0; 1-u is then 1 and log(1)=0, fine.
  return -mean * std::log(1.0 - uniform01());
}

double Rng::normal(double mean, double sigma) {
  if (sigma < 0.0) throw std::invalid_argument("normal: negative sigma");
  // Box-Muller; u1 in (0, 1] so the log is finite.
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + sigma * z;
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  if ((state[0] | state[1] | state[2] | state[3]) == 0) {
    throw std::invalid_argument("Rng::set_state: all-zero state");
  }
  state_ = state;
}

Rng Rng::fork() {
  Rng child(0);
  child.state_[0] = (*this)();
  child.state_[1] = (*this)();
  child.state_[2] = (*this)();
  child.state_[3] = (*this)();
  // All-zero state would be degenerate for xoshiro; nudge if it happens.
  if ((child.state_[0] | child.state_[1] | child.state_[2] |
       child.state_[3]) == 0) {
    child.state_[0] = 0x9e3779b97f4a7c15ULL;
  }
  return child;
}

}  // namespace imobif::util
