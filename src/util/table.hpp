// Fixed-width console tables and CSV output for bench/experiment results.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace imobif::util {

/// Accumulates rows of strings and renders them as an aligned console table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (fields containing comma/quote are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes a CSV file; throws std::runtime_error on I/O failure.
void write_csv(const std::string& path, const Table& table);

}  // namespace imobif::util
