// Compile-time dimensional analysis for the simulator's physical quantities.
//
// The paper's whole argument is an energy bookkeeping exercise — radio J/bit
// versus mobility J/m folded into per-packet header aggregates — so mixing a
// meter with a joule is the cheapest bug class to eliminate statically.
// Quantity<D> wraps exactly one double and tracks the dimension D (integer
// exponents over the four base dimensions energy/length/time/bits) in the
// type. Arithmetic composes dimensions at compile time:
//
//   Joules / Meters        -> JoulesPerMeter
//   JoulesPerBit * Bits    -> Joules
//   Joules / Joules        -> double        (dimensionless ratios collapse)
//   Joules + Meters        -> compile error
//   Joules < Bits          -> compile error
//
// Construction from a raw double is explicit and the only way out is
// .value(); both are reserved for I/O boundaries (JSON, codec, CLI, text
// parsers) so a unit cannot silently enter or leave the typed layer.
// tests/compile_fail/ proves the forbidden mixings do not compile and
// tools/imobif_lint.py bans raw-double unit-suffixed parameters in the
// energy/core/net public headers so the layer cannot erode.
//
// Deliberately NOT represented: the radio amplifier coefficient b, whose
// unit J * m^-alpha / bit depends on the *runtime* path-loss exponent alpha.
// RadioParams therefore stays raw and RadioEnergyModel converts at its own
// boundary (see energy/radio_model.hpp).
//
// Quantity is zero-overhead: sizeof(Quantity) == sizeof(double), trivially
// copyable, every operation constexpr and inline — bench/micro_hotpaths
// guards the "no regression" claim.
#pragma once

#include <cmath>
#include <compare>

namespace imobif::util {

/// Dimension exponents over the simulator's base dimensions. A structural
/// type so it can be a non-type template parameter (C++20).
struct Dim {
  int energy = 0;
  int length = 0;
  int time = 0;
  int bits = 0;

  constexpr bool operator==(const Dim&) const = default;
};

constexpr Dim operator+(Dim a, Dim b) {
  return {a.energy + b.energy, a.length + b.length, a.time + b.time,
          a.bits + b.bits};
}

constexpr Dim operator-(Dim a, Dim b) {
  return {a.energy - b.energy, a.length - b.length, a.time - b.time,
          a.bits - b.bits};
}

constexpr Dim operator-(Dim a) { return Dim{} - a; }

template <Dim D>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  /// The raw double. I/O boundaries only (JSON/codec/CLI/text parsers);
  /// typed code composes quantities instead of unwrapping them.
  constexpr double value() const { return value_; }

  static constexpr Dim dim() { return D; }

  // Same-dimension linear arithmetic. Cross-dimension +/- does not exist:
  // the operands are different types and there is no conversion.
  constexpr Quantity operator+(Quantity o) const {
    return Quantity(value_ + o.value_);
  }
  constexpr Quantity operator-(Quantity o) const {
    return Quantity(value_ - o.value_);
  }
  constexpr Quantity operator-() const { return Quantity(-value_); }
  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }

  // Dimensionless scaling.
  constexpr Quantity operator*(double s) const { return Quantity(value_ * s); }
  constexpr Quantity operator/(double s) const { return Quantity(value_ / s); }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  // Same-dimension comparison only; comparing against a raw double is a
  // compile error by design (wrap the literal instead). Hand-written rather
  // than a defaulted <=>: spaceship on double routes relational operators
  // through std::partial_ordering, which gcc -O2 does not always collapse
  // back to a bare ucomisd — measurably slower in the evaluate_hop path.
  constexpr bool operator==(Quantity o) const { return value_ == o.value_; }
  constexpr bool operator!=(Quantity o) const { return value_ != o.value_; }
  constexpr bool operator<(Quantity o) const { return value_ < o.value_; }
  constexpr bool operator<=(Quantity o) const { return value_ <= o.value_; }
  constexpr bool operator>(Quantity o) const { return value_ > o.value_; }
  constexpr bool operator>=(Quantity o) const { return value_ >= o.value_; }

 private:
  double value_ = 0.0;
};

template <Dim D>
constexpr Quantity<D> operator*(double s, Quantity<D> q) {
  return Quantity<D>(s * q.value());
}

/// Dimension-composing multiply; a product that cancels every exponent
/// collapses to a plain double so ratios read naturally.
template <Dim A, Dim B>
constexpr auto operator*(Quantity<A> a, Quantity<B> b) {
  constexpr Dim kResult = A + B;
  if constexpr (kResult == Dim{}) {
    return a.value() * b.value();
  } else {
    return Quantity<kResult>(a.value() * b.value());
  }
}

/// Dimension-composing divide; same-dimension division yields a double.
template <Dim A, Dim B>
constexpr auto operator/(Quantity<A> a, Quantity<B> b) {
  constexpr Dim kResult = A - B;
  if constexpr (kResult == Dim{}) {
    return a.value() / b.value();
  } else {
    return Quantity<kResult>(a.value() / b.value());
  }
}

template <Dim D>
constexpr Quantity<-D> operator/(double s, Quantity<D> q) {
  return Quantity<-D>(s / q.value());
}

// Dimension-preserving math helpers, so typed code never needs .value()
// just to clamp or take a magnitude.
template <Dim D>
inline bool isfinite(Quantity<D> q) {
  return std::isfinite(q.value());
}
template <Dim D>
inline bool isnan(Quantity<D> q) {
  return std::isnan(q.value());
}
template <Dim D>
constexpr Quantity<D> abs(Quantity<D> q) {
  return Quantity<D>(q.value() < 0.0 ? -q.value() : q.value());
}
template <Dim D>
constexpr Quantity<D> min(Quantity<D> a, Quantity<D> b) {
  return b < a ? b : a;
}
template <Dim D>
constexpr Quantity<D> max(Quantity<D> a, Quantity<D> b) {
  return a < b ? b : a;
}
template <Dim D>
constexpr Quantity<D> clamp(Quantity<D> q, Quantity<D> lo, Quantity<D> hi) {
  return q < lo ? lo : (hi < q ? hi : q);
}

// The simulator's working set of units.
using Joules = Quantity<Dim{1, 0, 0, 0}>;
using Meters = Quantity<Dim{0, 1, 0, 0}>;
using Seconds = Quantity<Dim{0, 0, 1, 0}>;
using Bits = Quantity<Dim{0, 0, 0, 1}>;
using JoulesPerMeter = Quantity<Dim{1, -1, 0, 0}>;   ///< mobility k
using JoulesPerBit = Quantity<Dim{1, 0, 0, -1}>;     ///< radio P(d)
using Watts = Quantity<Dim{1, 0, -1, 0}>;            ///< J/s
using MetersPerSecond = Quantity<Dim{0, 1, -1, 0}>;  ///< node speed
using BitsPerSecond = Quantity<Dim{0, 0, -1, 1}>;    ///< flow rate

static_assert(sizeof(Joules) == sizeof(double),
              "Quantity must add no storage over a raw double");
static_assert(sizeof(JoulesPerBit) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Joules>);
static_assert(std::is_trivially_destructible_v<Meters>);

// Spot-check the dimension algebra at compile time. The three
// float-equality waivers below are exact constexpr checks on values
// (6/2, 0.5*8) that are representable without rounding.
static_assert((Joules{6.0} / Meters{2.0}).value() == 3.0);  // lint:allow(float-equality)
static_assert(Joules{6.0} / Joules{2.0} == 3.0);  // lint:allow(float-equality)
static_assert((JoulesPerBit{0.5} * Bits{8.0}).value() == 4.0);  // lint:allow(float-equality)
static_assert((Meters{3.0} / Seconds{2.0}).dim() == MetersPerSecond::dim());
static_assert((Joules{4.0} / Seconds{2.0}).dim() == Watts::dim());
static_assert((Bits{8.0} / BitsPerSecond{2.0}).dim() == Seconds::dim());

inline namespace literals {

constexpr Joules operator""_J(long double v) {
  return Joules{static_cast<double>(v)};
}
constexpr Meters operator""_m(long double v) {
  return Meters{static_cast<double>(v)};
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Bits operator""_bits(long double v) {
  return Bits{static_cast<double>(v)};
}
constexpr JoulesPerMeter operator""_J_per_m(long double v) {
  return JoulesPerMeter{static_cast<double>(v)};
}
constexpr JoulesPerBit operator""_J_per_bit(long double v) {
  return JoulesPerBit{static_cast<double>(v)};
}
constexpr Watts operator""_W(long double v) {
  return Watts{static_cast<double>(v)};
}
constexpr MetersPerSecond operator""_mps(long double v) {
  return MetersPerSecond{static_cast<double>(v)};
}
constexpr BitsPerSecond operator""_bps(long double v) {
  return BitsPerSecond{static_cast<double>(v)};
}

constexpr Joules operator""_J(unsigned long long v) {
  return Joules{static_cast<double>(v)};
}
constexpr Meters operator""_m(unsigned long long v) {
  return Meters{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Bits operator""_bits(unsigned long long v) {
  return Bits{static_cast<double>(v)};
}

}  // namespace literals

static_assert(5.0_J + 3.0_J == 8.0_J);
static_assert(100.0_m > 50.0_m);

}  // namespace imobif::util
