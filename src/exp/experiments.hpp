// Figure-level experiment drivers (paper Section 4). Each driver replays N
// sampled flow instances under the three approaches the paper compares —
// no mobility (baseline), cost-unaware mobility, and iMobif — and returns
// per-instance series shaped like the corresponding figure.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/runner.hpp"

namespace imobif::exp {

/// One flow instance's outcome under all three approaches.
struct ComparisonPoint {
  util::Bits flow_bits{0.0};
  std::size_t hops = 0;

  RunResult baseline;      // no mobility
  RunResult cost_unaware;  // strategy always on, no cost/benefit check
  RunResult informed;      // full iMobif

  /// Fig 6: total-energy ratio vs the no-mobility baseline.
  double energy_ratio_cost_unaware() const;
  double energy_ratio_informed() const;

  /// Fig 8: system-lifetime ratio vs the no-mobility baseline.
  double lifetime_ratio_cost_unaware() const;
  double lifetime_ratio_informed() const;
};

/// Runs `flow_count` instances of the scenario; deterministic in
/// (params.seed, flow_count). `options` applies to every run.
std::vector<ComparisonPoint> run_comparison(const ScenarioParams& params,
                                            std::size_t flow_count,
                                            const RunOptions& options = {});

/// Fig 5: one instance run to steady state under a given mode+strategy;
/// exposes the flow path with initial/final positions and energies.
// snap:transient(experiment output value, not live run state)
struct PlacementSnapshot {
  std::vector<net::NodeId> path;
  std::vector<geom::Vec2> initial_positions;  ///< path nodes, in order
  std::vector<geom::Vec2> final_positions;    ///< path nodes, in order
  std::vector<util::Joules> initial_energies;
  std::vector<util::Joules> final_energies;
  RunResult run;
};

PlacementSnapshot run_placement(const ScenarioParams& params,
                                core::MobilityMode mode,
                                const RunOptions& options = {});

}  // namespace imobif::exp
