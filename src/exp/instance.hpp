// A flow instance: one sampled topology + source/destination pair + flow
// length + initial energies. The same instance is replayed under each
// mobility mode so Fig-6/8 ratios compare identical workloads.
#pragma once

#include <vector>

#include "exp/scenario.hpp"
#include "geom/vec2.hpp"
#include "net/ids.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace imobif::exp {

struct FlowInstance {
  std::vector<geom::Vec2> positions;
  std::vector<util::Joules> energies;
  net::NodeId source = net::kInvalidNode;
  net::NodeId destination = net::kInvalidNode;
  util::Bits flow_bits{0.0};
  /// Greedy path over the initial placement (oracle), source..destination.
  std::vector<net::NodeId> initial_path;
  /// Seeds for the background mobility model and traffic generators
  /// (DESIGN.md §14). Drawn from the sampler's RNG only when the scenario
  /// enables the respective model — legacy scenarios consume an unchanged
  /// draw stream — so all comparison modes replay identical ambient
  /// randomness for the same instance.
  std::uint64_t mobility_seed = 0;
  std::uint64_t traffic_seed = 0;
};

/// Samples a routable instance: uniform node placement, a random
/// greedy-routable (source, destination) pair with >= min_hops hops, an
/// exponential flow length, and initial energies per the scenario.
/// Re-samples the topology when no admissible pair exists.
FlowInstance sample_instance(const ScenarioParams& params, util::Rng& rng);

}  // namespace imobif::exp
