// TraceRecorder: captures the network's event stream (deliveries,
// notifications, deaths, drops) as timestamped rows for post-hoc analysis
// or CSV export. Install with Network::set_event_tap().
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/table.hpp"

namespace imobif::exp {

// snap:transient(diagnostic trace output, not restored by snapshots)
class TraceRecorder : public net::NetworkEvents {
 public:
  enum class Kind {
    kDelivered,
    kNotificationInitiated,
    kNotificationRetry,
    kNotificationAtSource,
    kNodeDepleted,
    kDrop,
    kRecruited,
  };

  // snap:transient(trace record value type)
  struct Entry {
    double time_s = 0.0;
    Kind kind = Kind::kDelivered;
    net::NodeId node = net::kInvalidNode;
    net::FlowId flow = net::kInvalidFlow;
    std::string detail;
  };

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t count(Kind kind) const;
  void clear() { entries_.clear(); }

  /// Renders all entries as a table (time, event, node, flow, detail).
  util::Table to_table() const;

  /// Serializes all entries as JSON Lines: one compact object per entry,
  /// {"time_s":…,"event":…,"node":…,"flow":…,"detail":…}, where flow is
  /// null for events not tied to a flow. Machine-readable counterpart of
  /// to_table() for post-hoc analysis pipelines.
  std::string to_jsonl() const;

  /// Parses a to_jsonl() dump back into entries (exact round trip for
  /// recorder-produced lines; blank lines are skipped). Throws
  /// std::invalid_argument on malformed lines or unknown event names.
  static std::vector<Entry> parse_jsonl(const std::string& text);

  static const char* to_string(Kind kind);
  /// Inverse of to_string; throws std::invalid_argument on unknown names.
  static Kind kind_from_string(const std::string& name);

  // net::NetworkEvents
  void on_delivered(net::Node& dest, const net::DataBody& data) override;
  void on_notification_initiated(net::Node& dest,
                                 const net::NotificationBody& body) override;
  void on_notification_retry(net::Node& dest,
                             const net::NotificationBody& body) override;
  void on_notification_at_source(net::Node& source,
                                 const net::NotificationBody& body) override;
  void on_node_depleted(net::Node& node) override;
  void on_drop(net::Node& where, net::PacketType type,
               net::DropReason reason) override;
  void on_recruited(net::Node& recruit,
                    const net::RecruitBody& body) override;

 private:
  void record(net::Node& node, Kind kind, net::FlowId flow,
              std::string detail);

  std::vector<Entry> entries_;
};

}  // namespace imobif::exp
