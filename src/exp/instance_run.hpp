// InstanceRun: one FlowInstance replay as a pausable object.
//
// run_instance() historically built the network, ran the chunked flow loop,
// and assembled the RunResult in one call. InstanceRun splits that into
// construction (create), incremental execution (advance, optionally capped
// at an event count), and result assembly — which is what checkpointing
// needs: src/snap serializes a paused run and reconstructs it in a fresh
// process via create_shell + its restore accessors. The advance() loop
// replicates Network::run_flows() chunk-for-chunk, so an uninterrupted
// InstanceRun is bit-identical to the legacy path.
//
// Layering: exp knows nothing about snap. The checkpoint hook is a plain
// callback fired at chunk boundaries (the only points where a run may be
// suspended with no chunk bookkeeping in flight); snap::Checkpointer
// installs it.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/imobif_policy.hpp"
#include "exp/instance.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "mob/driver.hpp"
#include "net/network.hpp"

namespace imobif::exp {

class InstanceRun {
 public:
  /// The flow every RunResult describes (extra_flows ride alongside).
  static constexpr net::FlowId kMainFlowId = 1;

  /// Full construction: validate, build the network, warm up, start the
  /// main flow (and options.extra_flows). Equivalent to the setup phase of
  /// the legacy run_instance().
  static std::unique_ptr<InstanceRun> create(const FlowInstance& instance,
                                             const ScenarioParams& params,
                                             core::MobilityMode mode,
                                             const RunOptions& options = {});

  /// Restore-path construction: identical wiring (routing, policy, radio,
  /// nodes at their *initial* sampled positions/energies) but NO warmup,
  /// NO flow start, and NO fault-plan installation — the snapshot supplies
  /// all of that state through the restore accessors below and on the net
  /// layer. The run is unusable until snap::restore() finishes.
  static std::unique_ptr<InstanceRun> create_shell(
      const FlowInstance& instance, const ScenarioParams& params,
      core::MobilityMode mode, const RunOptions& options = {});

  /// Advances the run. With max_events == 0, runs to completion (legacy
  /// behaviour) and returns true. With a cap, executes at most that many
  /// simulator events and returns whether the run finished; a capped
  /// return may pause mid-chunk and is resumed by the next call.
  bool advance(std::size_t max_events = 0);

  bool done() const { return done_; }

  /// True when the next advance() would declare the run finished without
  /// executing another event: either done() already, or the run is paused
  /// between chunks with the completion condition (horizon reached, flows
  /// complete, first death under stop_on_first_death, stall) satisfied.
  /// Unlike done(), this does not lag behind an event-capped advance that
  /// stopped exactly at the finish line — replay bisection compares it so
  /// two runs in identical states never disagree on "finished".
  bool at_completion() const;

  /// Assembles the RunResult for the main flow; meaningful once done()
  /// (callable earlier for progress inspection).
  RunResult result();

  // Accessors (snapshot encoding + tests).
  net::Network& network() { return *network_; }
  const net::Network& network() const { return *network_; }
  core::ImobifPolicy& policy() { return *policy_; }
  const core::ImobifPolicy& policy() const { return *policy_; }
  /// Background-motion driver; null unless params.mob is enabled.
  mob::MotionDriver* motion() { return motion_.get(); }
  const mob::MotionDriver* motion() const { return motion_.get(); }
  const FlowInstance& instance() const { return instance_; }
  const ScenarioParams& params() const { return params_; }
  core::MobilityMode mode() const { return mode_; }
  const RunOptions& options() const { return options_; }
  util::Joules warmup_consumed_j() const { return warmup_consumed_; }
  sim::Time flow_start() const { return flow_start_; }
  sim::Time horizon() const { return horizon_; }
  bool in_chunk() const { return in_chunk_; }
  sim::Time chunk_end() const { return chunk_end_; }

  /// State of the RNG stream that sampled this instance, captured by the
  /// sweep layer so a checkpoint records where the sampler stream stood.
  const std::optional<std::array<std::uint64_t, 4>>& sampler_rng_state()
      const {
    return sampler_rng_state_;
  }
  void set_sampler_rng_state(const std::array<std::uint64_t, 4>& state) {
    sampler_rng_state_ = state;
  }

  /// Invoked at every chunk boundary before the next chunk starts (never
  /// mid-chunk); src/snap uses it to write periodic checkpoints.
  void set_checkpoint_hook(std::function<void(InstanceRun&)> hook) {
    checkpoint_hook_ = std::move(hook);
  }

  /// Checkpoint restore: overwrites the loop bookkeeping that is not
  /// derivable from the network (src/snap only).
  void restore_run_state(util::Joules warmup_consumed, sim::Time flow_start,
                         bool in_chunk, sim::Time chunk_end, bool done);

 private:
  InstanceRun(const FlowInstance& instance, const ScenarioParams& params,
              core::MobilityMode mode, const RunOptions& options);

  void build_network();
  void compute_horizon();

  FlowInstance instance_;
  ScenarioParams params_;
  core::MobilityMode mode_;
  RunOptions options_;

  /// Owned here because the policy keeps a reference to it for the run's
  /// whole lifetime.
  // snap:derived(create_shell)
  energy::MobilityEnergyModel mobility_model_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<core::ImobifPolicy> policy_;
  std::unique_ptr<mob::MotionDriver> motion_;

  util::Joules warmup_consumed_{0.0};
  sim::Time flow_start_ = sim::Time::zero();
  sim::Time horizon_ = sim::Time::zero();
  sim::Time stall_window_ = sim::Time::zero();
  sim::Time chunk_end_ = sim::Time::zero();
  bool in_chunk_ = false;
  bool done_ = false;

  std::optional<std::array<std::uint64_t, 4>> sampler_rng_state_;
  std::function<void(InstanceRun&)> checkpoint_hook_;
};

}  // namespace imobif::exp
