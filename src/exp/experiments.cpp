#include "exp/experiments.hpp"

#include <stdexcept>

namespace imobif::exp {

namespace {
double safe_ratio(double numerator, double denominator) {
  if (denominator <= 0.0) return 0.0;
  return numerator / denominator;
}
}  // namespace

double ComparisonPoint::energy_ratio_cost_unaware() const {
  return safe_ratio(cost_unaware.total_energy_j.value(),
                    baseline.total_energy_j.value());
}

double ComparisonPoint::energy_ratio_informed() const {
  return safe_ratio(informed.total_energy_j.value(),
                    baseline.total_energy_j.value());
}

double ComparisonPoint::lifetime_ratio_cost_unaware() const {
  return safe_ratio(cost_unaware.lifetime_s.value(),
                    baseline.lifetime_s.value());
}

double ComparisonPoint::lifetime_ratio_informed() const {
  return safe_ratio(informed.lifetime_s.value(), baseline.lifetime_s.value());
}

std::vector<ComparisonPoint> run_comparison(const ScenarioParams& params,
                                            std::size_t flow_count,
                                            const RunOptions& options) {
  params.validate();
  util::Rng rng(params.seed);
  std::vector<ComparisonPoint> points;
  points.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    util::Rng instance_rng = rng.fork();
    const FlowInstance instance = sample_instance(params, instance_rng);

    ComparisonPoint point;
    point.flow_bits = instance.flow_bits;
    point.hops = instance.initial_path.size() - 1;
    point.baseline = run_instance(instance, params,
                                  core::MobilityMode::kNoMobility, options);
    point.cost_unaware = run_instance(
        instance, params, core::MobilityMode::kCostUnaware, options);
    point.informed = run_instance(instance, params,
                                  core::MobilityMode::kInformed, options);
    points.push_back(std::move(point));
  }
  return points;
}

PlacementSnapshot run_placement(const ScenarioParams& params,
                                core::MobilityMode mode,
                                const RunOptions& options) {
  params.validate();
  util::Rng rng(params.seed);
  const FlowInstance instance = sample_instance(params, rng);

  PlacementSnapshot snap;
  snap.run = run_instance(instance, params, mode, options);
  snap.path = snap.run.path.empty() ? instance.initial_path : snap.run.path;
  for (const net::NodeId id : snap.path) {
    snap.initial_positions.push_back(instance.positions[id]);
    snap.final_positions.push_back(snap.run.final_positions[id]);
    snap.initial_energies.push_back(instance.energies[id]);
    snap.final_energies.push_back(snap.run.final_energies[id]);
  }
  return snap;
}

}  // namespace imobif::exp
