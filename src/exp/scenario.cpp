#include "exp/scenario.hpp"

#include <stdexcept>

namespace imobif::exp {

void ScenarioParams::validate() const {
  using util::Bits;
  using util::BitsPerSecond;
  using util::Joules;
  using util::Meters;
  using util::Seconds;
  if (area_m <= Meters{0.0}) {
    throw std::invalid_argument("Scenario: area <= 0");
  }
  if (node_count < 2) throw std::invalid_argument("Scenario: < 2 nodes");
  if (comm_range_m <= Meters{0.0}) {
    throw std::invalid_argument("Scenario: comm_range <= 0");
  }
  radio.validate();
  mobility.validate();
  mob.validate();
  traffic.validate();
  if (initial_energy_j <= Joules{0.0}) {
    throw std::invalid_argument("Scenario: initial energy <= 0");
  }
  if (random_energy &&
      !(energy_lo_j > Joules{0.0} && energy_hi_j >= energy_lo_j)) {
    throw std::invalid_argument("Scenario: bad random energy range");
  }
  if (mean_flow_bits <= Bits{0.0} || packet_bits <= Bits{0.0} ||
      rate_bps <= BitsPerSecond{0.0}) {
    throw std::invalid_argument("Scenario: bad flow parameters");
  }
  if (hello_interval_s <= Seconds{0.0} || warmup_s < Seconds{0.0}) {
    throw std::invalid_argument("Scenario: bad control-plane timing");
  }
  if (length_estimate_factor < 0.0) {
    throw std::invalid_argument("Scenario: negative estimate factor");
  }
  fault.validate();
  if (notify_retry_timeout_s <= Seconds{0.0}) {
    throw std::invalid_argument("Scenario: notify retry timeout <= 0");
  }
}

}  // namespace imobif::exp
