#include "exp/scenario.hpp"

#include <stdexcept>

namespace imobif::exp {

void ScenarioParams::validate() const {
  if (area_m <= 0.0) throw std::invalid_argument("Scenario: area <= 0");
  if (node_count < 2) throw std::invalid_argument("Scenario: < 2 nodes");
  if (comm_range_m <= 0.0) {
    throw std::invalid_argument("Scenario: comm_range <= 0");
  }
  radio.validate();
  mobility.validate();
  if (initial_energy_j <= 0.0) {
    throw std::invalid_argument("Scenario: initial energy <= 0");
  }
  if (random_energy && !(energy_lo_j > 0.0 && energy_hi_j >= energy_lo_j)) {
    throw std::invalid_argument("Scenario: bad random energy range");
  }
  if (mean_flow_bits <= 0.0 || packet_bits <= 0.0 || rate_bps <= 0.0) {
    throw std::invalid_argument("Scenario: bad flow parameters");
  }
  if (hello_interval_s <= 0.0 || warmup_s < 0.0) {
    throw std::invalid_argument("Scenario: bad control-plane timing");
  }
  if (length_estimate_factor < 0.0) {
    throw std::invalid_argument("Scenario: negative estimate factor");
  }
  fault.validate();
  if (notify_retry_timeout_s <= 0.0) {
    throw std::invalid_argument("Scenario: notify retry timeout <= 0");
  }
}

}  // namespace imobif::exp
