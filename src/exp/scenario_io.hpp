// Config-file / command-line binding for ScenarioParams, used by the
// imobif_sim CLI. Key names mirror the field names in scenario.hpp.
#pragma once

#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "util/config.hpp"

namespace imobif::exp {

/// Overrides fields of `params` from config keys (unknown keys are left to
/// the caller to validate; absent keys keep their current value).
/// Recognized keys: area_m, node_count, comm_range_m, min_hops, radio_a,
/// radio_b, radio_alpha, k, max_step_m, initial_energy_j, random_energy,
/// energy_lo_j, energy_hi_j, mean_flow_kb, packet_bits, rate_bps,
/// length_estimate_factor, hello_interval_s, warmup_s,
/// charge_hello_energy, strategy (min-energy|max-lifetime), alpha_prime,
/// line_bias_weight, cap_bits, paper_local_estimator,
/// exact_lifetime_split, notification_min_gap, recruit_margin,
/// multi_flow_blending, position_error_m, loss_rate, gilbert_elliott,
/// p_good_to_bad, p_bad_to_good, loss_good, loss_bad, fault_seed, crashes,
/// notify_retry_cap, notify_retry_timeout_s, seed.
void apply_config(const util::Config& config, ScenarioParams& params);

/// Human-readable dump of every scenario field (one `key = value` line
/// each) — valid as a config file, closing the round trip.
std::string to_config_string(const ScenarioParams& params);

/// Crash-schedule encoding for the `crashes` config key: comma-separated
/// `node:at_s:duration_s` triples (duration < 0 = permanent), e.g.
/// "7:120:30,12:300:-1". Whitespace around separators is ignored. The
/// parser also accepts legacy ';' separators, but only outside config
/// files (';' starts a comment in the config grammar).
std::string format_crashes(
    const std::vector<net::FaultPlan::CrashEvent>& crashes);
std::vector<net::FaultPlan::CrashEvent> parse_crashes(
    const std::string& text);

}  // namespace imobif::exp
