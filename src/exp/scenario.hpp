// Scenario parameters for the paper's evaluation (Section 4), with the
// OCR-reconstructed defaults documented in DESIGN.md:
//
//   100 nodes uniform in a 1000 m x 1000 m area, communication range 180 m
//   (~10 neighbors/node), P(d) = a + b d^alpha with a = 1e-7 J/bit,
//   b = 1e-10 J m^-alpha / bit, E_M(d) = k d, max step 1 m, flow rate
//   1 KB/s (8 Kbps), 1 KB packets, mobility initially disabled.
#pragma once

#include <cstdint>

#include "energy/mobility_model.hpp"
#include "energy/radio_model.hpp"
#include "mob/params.hpp"
#include "net/fault.hpp"
#include "net/packet.hpp"
#include "traffic/params.hpp"
#include "util/units.hpp"

namespace imobif::exp {

// snap:transient(persisted wholesale as config text in the meta section via to_config_string and apply_config)
struct ScenarioParams {
  // Topology.
  util::Meters area_m{1000.0};
  std::size_t node_count = 100;
  util::Meters comm_range_m{180.0};
  /// Sampled (source, destination) pairs must be greedy-routable with at
  /// least this many hops (a 1-hop "flow" has no relays to move).
  std::size_t min_hops = 3;

  // Models. The amplifier coefficient b is unreadable in the OCR of the
  // paper (and its unit J*m^-alpha/bit depends on alpha, so one value
  // cannot serve both exponents); these values are calibrated so the
  // paper's k-sweep crossovers land inside the evaluated flow-length range
  // (see DESIGN.md). For alpha = 3 use b ~ 3e-12.
  energy::RadioParams radio{1e-7, 5e-10, 2.0};  // a, b, alpha
  energy::MobilityParams mobility;              // k, max_step

  // Node energy. When `random_energy`, initial charge ~ U[lo, hi]
  // (Fig 8: U[5, 100] J, "intentionally low"); otherwise every node starts
  // at `initial_energy_j` (Fig 6: ample, so no node dies mid-flow).
  util::Joules initial_energy_j{2000.0};
  bool random_energy = false;
  util::Joules energy_lo_j{5.0};
  util::Joules energy_hi_j{100.0};

  // Flow workload. Lengths are exponential with this mean (Fig 6: 100 KB
  // short / 1 MB long; 8 bits per byte).
  util::Bits mean_flow_bits{100.0 * 1024.0 * 8.0};
  util::Bits packet_bits{8192.0};
  util::BitsPerSecond rate_bps{8192.0};
  double length_estimate_factor = 1.0;  ///< ablation A2

  // Control plane.
  util::Seconds hello_interval_s{10.0};
  util::Seconds warmup_s{25.0};
  /// Localization error radius for advertised positions (Assumption 2
  /// backed by src/loc instead of GPS); 0 = perfect (ablation A9).
  util::Meters position_error_m{0.0};
  /// HELLO beacons are free by default in experiments so the measured
  /// energy isolates the paper's E_T + E_M terms; the protocol itself
  /// always runs.
  bool charge_hello_energy = false;

  // Strategy knobs.
  net::StrategyId strategy = net::StrategyId::kMinTotalEnergy;
  double alpha_prime = 0.0;       ///< 0 = use radio alpha (ablation A1)
  double line_bias_weight = 0.0;  ///< >0 = line-biased greedy (ablation A3)
  bool cap_bits = true;           ///< see core/cost_benefit.hpp (ablation)
  /// Use the literal Figure-1 per-sender estimator instead of the default
  /// hop-receiver estimator (see core/imobif_policy.hpp; ablation A5).
  bool paper_local_estimator = false;
  /// Solve the Theorem-1 hop balance exactly (bisection) instead of the
  /// paper's power-law approximation (ablation A6).
  bool exact_lifetime_split = false;
  /// Destination-side notification damping in packets (ablation A7);
  /// 0 = the paper's immediate per-packet re-evaluation.
  std::uint32_t notification_min_gap = 0;
  /// Relay recruitment margin (extension E2); 0 disables recruitment,
  /// > 0 enables it with that relocation-cost margin.
  double recruit_margin = 0.0;
  /// Blend strategy targets across flows at shared relays (extension E1);
  /// effective when this OR RunOptions::multi_flow_blending is set.
  bool multi_flow_blending = false;

  // Background mobility and traffic models (DESIGN.md §14). Both default
  // to disabled/legacy (kNone motion, kCbr traffic), in which case no
  // events are scheduled, no extra RNG is drawn, and every existing
  // scenario replays byte-identically.
  mob::ModelParams mob;
  traffic::Params traffic;

  // Fault model (DESIGN.md §7). The default plan is disabled and injects
  // nothing; with loss/crashes configured, every fault sequence is
  // deterministic in fault.seed alone (independent of the scenario seed).
  net::FaultPlan fault;
  /// Destination-side notification reliability: retransmit an unconfirmed
  /// status-change request up to this many times with doubling backoff.
  /// 0 = the paper's fire-and-forget notification (default).
  std::uint32_t notify_retry_cap = 0;
  util::Seconds notify_retry_timeout_s{2.0};

  std::uint64_t seed = 1;

  void validate() const;
};

}  // namespace imobif::exp
