#include "exp/instance.hpp"

#include <algorithm>
#include <stdexcept>

#include "mob/trace.hpp"
#include "net/grid_index.hpp"

namespace imobif::exp {

namespace {

/// Greedy geographic path over raw positions (the same rule the in-network
/// GreedyRouting applies, evaluated on ground truth for admission checks).
/// Candidates come from a grid index over the topology instead of an O(N)
/// scan per hop — the admission check is itself a hot path when sampling
/// 10^5-10^6-node scenarios. The query radius carries a relative pad so
/// the grid's squared-distance cut can never exclude a point the exact
/// linear check admits; distance ties break to the lowest id, matching
/// the historical ascending-id scan.
std::vector<net::NodeId> greedy_path(const std::vector<geom::Vec2>& pos,
                                     const net::GridIndex& grid, double range,
                                     net::NodeId src, net::NodeId dst) {
  std::vector<net::NodeId> path{src};
  net::NodeId current = src;
  while (current != dst && path.size() <= pos.size()) {
    const double cur_dist = geom::distance(pos[current], pos[dst]);
    if (cur_dist <= range) {
      path.push_back(dst);
      return path;
    }
    net::NodeId best = net::kInvalidNode;
    double best_dist = cur_dist;
    grid.for_each_in_range(
        pos[current], range * (1.0 + 1e-9),
        [&](net::NodeId cand, geom::Vec2 cand_pos) {
          if (cand == current) return;
          if (geom::distance(pos[current], cand_pos) > range) return;
          const double d = geom::distance(cand_pos, pos[dst]);
          const bool better =
              best == net::kInvalidNode
                  ? d < best_dist
                  : d < best_dist || (!(best_dist < d) && cand < best);
          if (better) {
            best_dist = d;
            best = cand;
          }
        });
    if (best == net::kInvalidNode) return {};
    path.push_back(best);
    current = best;
  }
  return current == dst ? path : std::vector<net::NodeId>{};
}

}  // namespace

FlowInstance sample_instance(const ScenarioParams& params, util::Rng& rng) {
  params.validate();
  constexpr int kTopologyAttempts = 64;
  constexpr int kPairAttempts = 256;

  // Trace-driven scenarios pin covered nodes to their t=0 trace position.
  // The file is read once, outside the re-sampling loops.
  mob::Trace trace;
  const bool trace_driven = params.mob.model == mob::ModelId::kTrace;
  if (trace_driven) trace = mob::load_trace(params.mob.trace_file);

  for (int topo = 0; topo < kTopologyAttempts; ++topo) {
    FlowInstance inst;
    inst.positions.reserve(params.node_count);
    for (std::size_t i = 0; i < params.node_count; ++i) {
      inst.positions.emplace_back(rng.uniform(0.0, params.area_m.value()),
                                  rng.uniform(0.0, params.area_m.value()));
    }
    if (trace_driven) {
      // Overwrite AFTER drawing, so the RNG stream length (and every later
      // draw) matches the untraced scenario with the same seed; admission
      // then runs against the positions the run will actually start from.
      for (std::size_t i = 0; i < params.node_count; ++i) {
        if (trace.has(i)) {
          inst.positions[i] = trace.position_at(i, util::Seconds{0.0});
        }
      }
    }
    // One grid per topology; every pair attempt reuses it.
    net::GridIndex grid(params.comm_range_m.value());
    for (std::size_t i = 0; i < params.node_count; ++i) {
      grid.insert(static_cast<net::NodeId>(i), inst.positions[i]);
    }
    for (int pair = 0; pair < kPairAttempts; ++pair) {
      const auto src = static_cast<net::NodeId>(
          rng.uniform_int(0, params.node_count - 1));
      const auto dst = static_cast<net::NodeId>(
          rng.uniform_int(0, params.node_count - 1));
      if (src == dst) continue;
      auto path = greedy_path(inst.positions, grid,
                              params.comm_range_m.value(), src, dst);
      if (path.empty() || path.size() < params.min_hops + 1) continue;

      inst.source = src;
      inst.destination = dst;
      inst.initial_path = std::move(path);
      // At least one packet worth of data.
      inst.flow_bits = util::max(
          params.packet_bits,
          util::Bits{rng.exponential(params.mean_flow_bits.value())});
      inst.energies.reserve(params.node_count);
      for (std::size_t i = 0; i < params.node_count; ++i) {
        inst.energies.push_back(
            params.random_energy
                ? util::Joules{rng.uniform(params.energy_lo_j.value(),
                                           params.energy_hi_j.value())}
                : params.initial_energy_j);
      }
      // Model-zoo seeds come last, and only when enabled: a legacy
      // scenario's draw sequence ends exactly where it always did.
      if (params.mob.enabled()) inst.mobility_seed = rng();
      if (params.traffic.enabled()) inst.traffic_seed = rng();
      return inst;
    }
  }
  throw std::runtime_error(
      "sample_instance: no routable source/destination pair found "
      "(node density too low for greedy routing?)");
}

}  // namespace imobif::exp
