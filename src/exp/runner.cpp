#include "exp/runner.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/imobif.hpp"
#include "exp/instance_run.hpp"

namespace imobif::exp {

std::vector<net::NodeId> trace_flow_path(net::Network& network,
                                         net::FlowId flow) {
  std::vector<net::NodeId> path;
  std::unordered_set<net::NodeId> visited;
  const net::FlowProgress& prog = network.progress(flow);
  net::NodeId current = prog.spec.source;
  const net::NodeId dest = prog.spec.destination;
  // A routing cycle revisits a node before reaching the destination; treat
  // that as a broken path explicitly rather than walking until the
  // node-count bound trips.
  while (current != net::kInvalidNode && path.size() <= network.node_count()) {
    if (!visited.insert(current).second) return {};
    path.push_back(current);
    if (current == dest) return path;
    const net::FlowEntry* entry = network.node(current).flows().find(flow);
    if (entry == nullptr) break;
    current = entry->next;
  }
  return {};
}

RunResult run_instance(const FlowInstance& instance,
                       const ScenarioParams& params, core::MobilityMode mode,
                       const RunOptions& options) {
  auto run = InstanceRun::create(instance, params, mode, options);
  run->advance();
  return run->result();
}

}  // namespace imobif::exp
