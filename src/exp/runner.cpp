#include "exp/runner.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/imobif.hpp"

namespace imobif::exp {

std::vector<net::NodeId> trace_flow_path(net::Network& network,
                                         net::FlowId flow) {
  std::vector<net::NodeId> path;
  std::unordered_set<net::NodeId> visited;
  const net::FlowProgress& prog = network.progress(flow);
  net::NodeId current = prog.spec.source;
  const net::NodeId dest = prog.spec.destination;
  // A routing cycle revisits a node before reaching the destination; treat
  // that as a broken path explicitly rather than walking until the
  // node-count bound trips.
  while (current != net::kInvalidNode && path.size() <= network.node_count()) {
    if (!visited.insert(current).second) return {};
    path.push_back(current);
    if (current == dest) return path;
    const net::FlowEntry* entry = network.node(current).flows().find(flow);
    if (entry == nullptr) break;
    current = entry->next;
  }
  return {};
}

RunResult run_instance(const FlowInstance& instance,
                       const ScenarioParams& params, core::MobilityMode mode,
                       const RunOptions& options) {
  params.validate();

  net::NetworkConfig config;
  config.medium.comm_range_m = params.comm_range_m;
  config.node.hello_interval =
      sim::Time::from_seconds(params.hello_interval_s);
  config.node.neighbor_timeout =
      sim::Time::from_seconds(4.5 * params.hello_interval_s);
  config.node.charge_hello_energy = params.charge_hello_energy;
  config.node.position_error_m = params.position_error_m;
  config.node.notify_retry_cap = params.notify_retry_cap;
  config.node.notify_retry_timeout =
      sim::Time::from_seconds(params.notify_retry_timeout_s);
  config.radio = params.radio;

  net::Network network(config);
  for (std::size_t i = 0; i < instance.positions.size(); ++i) {
    network.add_node(instance.positions[i], instance.energies[i]);
  }
  if (params.line_bias_weight > 0.0) {
    network.set_routing(std::make_unique<net::LineBiasedGreedyRouting>(
        network.medium(), params.line_bias_weight));
  } else {
    network.set_routing(
        std::make_unique<net::GreedyRouting>(network.medium()));
  }

  const energy::MobilityEnergyModel mobility_model(params.mobility);
  auto policy = core::make_default_policy(network.radio(), mobility_model,
                                          mode, params.alpha_prime);
  policy->set_multi_flow_blending(options.multi_flow_blending);
  policy->set_cap_bits(params.cap_bits);
  policy->set_estimator(params.paper_local_estimator
                            ? core::BenefitEstimator::kPaperLocal
                            : core::BenefitEstimator::kHopReceiver);
  policy->set_notification_min_gap(params.notification_min_gap);
  if (params.recruit_margin > 0.0) {
    policy->enable_recruitment(params.recruit_margin);
  }
  if (params.exact_lifetime_split) {
    policy->register_strategy(
        std::make_unique<core::MaxLifetimeStrategy>(params.radio));
  }
  network.set_policy(policy.get());
  network.set_stop_on_first_death(options.stop_on_first_death);
  network.medium().install_fault_plan(params.fault);

  network.warmup(params.warmup_s);
  const double warmup_consumed = network.total_consumed_energy();
  const sim::Time flow_start = network.simulator().now();

  net::FlowSpec spec;
  spec.id = 1;
  spec.source = instance.source;
  spec.destination = instance.destination;
  spec.length_bits = instance.flow_bits;
  spec.packet_bits = params.packet_bits;
  spec.rate_bps = params.rate_bps;
  spec.strategy = params.strategy;
  // Cost-unaware mobility moves from the first packet on; iMobif starts
  // disabled (paper Section 4) and the baseline never moves at all.
  spec.initially_enabled = (mode == core::MobilityMode::kCostUnaware);
  spec.length_estimate_factor = params.length_estimate_factor;
  network.start_flow(spec);

  const double ideal_duration_s = instance.flow_bits / params.rate_bps;
  const double horizon_s =
      ideal_duration_s * options.horizon_factor + options.horizon_slack_s;
  network.run_flows(horizon_s);

  const net::FlowProgress& prog = network.progress(spec.id);
  RunResult result;
  result.mode = mode;
  result.completed = prog.completed;
  result.delivered_bits = prog.delivered_bits;
  result.completion_s =
      prog.completion_time.has_value()
          ? (*prog.completion_time - flow_start).seconds()
          : (network.simulator().now() - flow_start).seconds();

  result.transmit_energy_j = network.total_transmit_energy();
  result.movement_energy_j = network.total_movement_energy();
  result.total_energy_j = network.total_consumed_energy() - warmup_consumed;

  result.notifications = prog.notifications_from_dest;
  result.notify_retries = prog.notification_retries;
  result.notifications_applied = prog.notifications_at_source;
  result.medium = network.medium().counters();
  result.recruits = prog.recruits;
  result.movements = policy->movements_applied();
  result.moved_distance_m = policy->total_distance_moved();

  result.any_death = network.first_death_time().has_value();
  result.lifetime_s =
      result.any_death
          ? (*network.first_death_time() - flow_start).seconds()
          : (network.simulator().now() - flow_start).seconds();

  result.path = trace_flow_path(network, spec.id);
  result.final_positions = network.positions();
  result.final_energies.reserve(network.node_count());
  for (std::size_t i = 0; i < network.node_count(); ++i) {
    result.final_energies.push_back(
        network.node(static_cast<net::NodeId>(i)).battery().residual());
  }
  return result;
}

}  // namespace imobif::exp
