#include "exp/trace.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <stdexcept>

#include "net/node.hpp"
#include "util/json.hpp"

namespace imobif::exp {

const char* TraceRecorder::to_string(Kind kind) {
  switch (kind) {
    case Kind::kDelivered:
      return "delivered";
    case Kind::kNotificationInitiated:
      return "notify-sent";
    case Kind::kNotificationRetry:
      return "notify-retry";
    case Kind::kNotificationAtSource:
      return "notify-at-source";
    case Kind::kNodeDepleted:
      return "node-depleted";
    case Kind::kDrop:
      return "drop";
    case Kind::kRecruited:
      return "recruited";
  }
  return "?";
}

std::size_t TraceRecorder::count(Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [kind](const Entry& e) { return e.kind == kind; }));
}

void TraceRecorder::record(net::Node& node, Kind kind, net::FlowId flow,
                           std::string detail) {
  Entry entry;
  entry.time_s = node.now().seconds();
  entry.kind = kind;
  entry.node = node.id();
  entry.flow = flow;
  entry.detail = std::move(detail);
  entries_.push_back(std::move(entry));
}

void TraceRecorder::on_delivered(net::Node& dest,
                                 const net::DataBody& data) {
  record(dest, Kind::kDelivered, data.flow_id,
         "seq=" + std::to_string(data.seq) +
             " mob=" + (data.mobility_enabled ? "on" : "off"));
}

void TraceRecorder::on_notification_initiated(
    net::Node& dest, const net::NotificationBody& body) {
  record(dest, Kind::kNotificationInitiated, body.flow_id,
         body.enable ? "enable" : "disable");
}

void TraceRecorder::on_notification_retry(
    net::Node& dest, const net::NotificationBody& body) {
  record(dest, Kind::kNotificationRetry, body.flow_id,
         std::string(body.enable ? "enable" : "disable") +
             " attempt=" + std::to_string(body.attempt));
}

void TraceRecorder::on_notification_at_source(
    net::Node& source, const net::NotificationBody& body) {
  record(source, Kind::kNotificationAtSource, body.flow_id,
         body.enable ? "enable" : "disable");
}

void TraceRecorder::on_node_depleted(net::Node& node) {
  record(node, Kind::kNodeDepleted, net::kInvalidFlow, "");
}

void TraceRecorder::on_drop(net::Node& where, net::PacketType type,
                            net::DropReason reason) {
  record(where, Kind::kDrop, net::kInvalidFlow,
         std::string(net::to_string(type)) + "/" + net::to_string(reason));
}

void TraceRecorder::on_recruited(net::Node& recruit,
                                 const net::RecruitBody& body) {
  record(recruit, Kind::kRecruited, body.flow_id,
         "between " + std::to_string(body.upstream) + " and " +
             std::to_string(body.downstream));
}

TraceRecorder::Kind TraceRecorder::kind_from_string(const std::string& name) {
  static constexpr std::array<Kind, 7> kKinds = {
      Kind::kDelivered,         Kind::kNotificationInitiated,
      Kind::kNotificationRetry, Kind::kNotificationAtSource,
      Kind::kNodeDepleted,      Kind::kDrop,
      Kind::kRecruited};
  for (const Kind kind : kKinds) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("TraceRecorder: unknown event name '" + name +
                              "'");
}

std::string TraceRecorder::to_jsonl() const {
  std::string out;
  for (const Entry& e : entries_) {
    util::Json row = util::Json::object();
    row.set("time_s", util::Json(e.time_s));
    row.set("event", util::Json(to_string(e.kind)));
    row.set("node", util::Json(static_cast<std::uint64_t>(e.node)));
    row.set("flow", e.flow == net::kInvalidFlow
                        ? util::Json(nullptr)
                        : util::Json(static_cast<std::uint64_t>(e.flow)));
    row.set("detail", util::Json(e.detail));
    out += row.dump();
    out += '\n';
  }
  return out;
}

namespace {

// Minimal field extraction for the fixed JSONL schema emitted above. The
// writer escapes every interior quote, so a bare "key": pattern can only
// match the real key.
std::size_t value_pos(const std::string& line, const std::string& key) {
  const std::string pattern = "\"" + key + "\":";
  const std::size_t pos = line.find(pattern);
  if (pos == std::string::npos) {
    throw std::invalid_argument("TraceRecorder: missing key '" + key +
                                "' in: " + line);
  }
  return pos + pattern.size();
}

double number_field(const std::string& line, const std::string& key) {
  try {
    return std::stod(line.substr(value_pos(line, key)));
  } catch (const std::logic_error&) {
    throw std::invalid_argument("TraceRecorder: bad number for '" + key +
                                "' in: " + line);
  }
}

std::string string_field(const std::string& line, const std::string& key) {
  std::size_t pos = value_pos(line, key);
  if (pos >= line.size() || line[pos] != '"') {
    throw std::invalid_argument("TraceRecorder: expected string for '" + key +
                                "' in: " + line);
  }
  std::string out;
  for (++pos; pos < line.size(); ++pos) {
    const char c = line[pos];
    if (c == '"') return out;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++pos >= line.size()) break;
    switch (line[pos]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (pos + 4 >= line.size()) {
          throw std::invalid_argument("TraceRecorder: truncated \\u escape");
        }
        const unsigned long code =
            std::stoul(line.substr(pos + 1, 4), nullptr, 16);
        // The writer only \u-escapes ASCII control characters.
        out += static_cast<char>(code);
        pos += 4;
        break;
      }
      default:
        throw std::invalid_argument("TraceRecorder: bad escape in: " + line);
    }
  }
  throw std::invalid_argument("TraceRecorder: unterminated string in: " +
                              line);
}

}  // namespace

std::vector<TraceRecorder::Entry> TraceRecorder::parse_jsonl(
    const std::string& text) {
  std::vector<Entry> out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Entry e;
    e.time_s = number_field(line, "time_s");
    e.kind = kind_from_string(string_field(line, "event"));
    e.node = static_cast<net::NodeId>(number_field(line, "node"));
    const std::size_t flow_pos = value_pos(line, "flow");
    e.flow = line.compare(flow_pos, 4, "null") == 0
                 ? net::kInvalidFlow
                 : static_cast<net::FlowId>(number_field(line, "flow"));
    e.detail = string_field(line, "detail");
    out.push_back(std::move(e));
  }
  return out;
}

util::Table TraceRecorder::to_table() const {
  util::Table table({"time s", "event", "node", "flow", "detail"});
  for (const Entry& e : entries_) {
    table.add_row({util::Table::num(e.time_s, 6), to_string(e.kind),
                   std::to_string(e.node),
                   e.flow == net::kInvalidFlow ? "-" : std::to_string(e.flow),
                   e.detail});
  }
  return table;
}

}  // namespace imobif::exp
