#include "exp/trace.hpp"

#include <algorithm>

#include "net/node.hpp"

namespace imobif::exp {

const char* TraceRecorder::to_string(Kind kind) {
  switch (kind) {
    case Kind::kDelivered:
      return "delivered";
    case Kind::kNotificationInitiated:
      return "notify-sent";
    case Kind::kNotificationRetry:
      return "notify-retry";
    case Kind::kNotificationAtSource:
      return "notify-at-source";
    case Kind::kNodeDepleted:
      return "node-depleted";
    case Kind::kDrop:
      return "drop";
    case Kind::kRecruited:
      return "recruited";
  }
  return "?";
}

std::size_t TraceRecorder::count(Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [kind](const Entry& e) { return e.kind == kind; }));
}

void TraceRecorder::record(net::Node& node, Kind kind, net::FlowId flow,
                           std::string detail) {
  Entry entry;
  entry.time_s = node.now().seconds();
  entry.kind = kind;
  entry.node = node.id();
  entry.flow = flow;
  entry.detail = std::move(detail);
  entries_.push_back(std::move(entry));
}

void TraceRecorder::on_delivered(net::Node& dest,
                                 const net::DataBody& data) {
  record(dest, Kind::kDelivered, data.flow_id,
         "seq=" + std::to_string(data.seq) +
             " mob=" + (data.mobility_enabled ? "on" : "off"));
}

void TraceRecorder::on_notification_initiated(
    net::Node& dest, const net::NotificationBody& body) {
  record(dest, Kind::kNotificationInitiated, body.flow_id,
         body.enable ? "enable" : "disable");
}

void TraceRecorder::on_notification_retry(
    net::Node& dest, const net::NotificationBody& body) {
  record(dest, Kind::kNotificationRetry, body.flow_id,
         std::string(body.enable ? "enable" : "disable") +
             " attempt=" + std::to_string(body.attempt));
}

void TraceRecorder::on_notification_at_source(
    net::Node& source, const net::NotificationBody& body) {
  record(source, Kind::kNotificationAtSource, body.flow_id,
         body.enable ? "enable" : "disable");
}

void TraceRecorder::on_node_depleted(net::Node& node) {
  record(node, Kind::kNodeDepleted, net::kInvalidFlow, "");
}

void TraceRecorder::on_drop(net::Node& where, net::PacketType type,
                            net::DropReason reason) {
  record(where, Kind::kDrop, net::kInvalidFlow,
         std::string(net::to_string(type)) + "/" + net::to_string(reason));
}

void TraceRecorder::on_recruited(net::Node& recruit,
                                 const net::RecruitBody& body) {
  record(recruit, Kind::kRecruited, body.flow_id,
         "between " + std::to_string(body.upstream) + " and " +
             std::to_string(body.downstream));
}

util::Table TraceRecorder::to_table() const {
  util::Table table({"time s", "event", "node", "flow", "detail"});
  for (const Entry& e : entries_) {
    table.add_row({util::Table::num(e.time_s, 6), to_string(e.kind),
                   std::to_string(e.node),
                   e.flow == net::kInvalidFlow ? "-" : std::to_string(e.flow),
                   e.detail});
  }
  return table;
}

}  // namespace imobif::exp
