#include "exp/scenario_io.hpp"

#include <cstddef>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace imobif::exp {

namespace {
// Shortest decimal form that re-parses to the exact double: the config
// round trip (to_config_string -> apply_config) must be lossless because
// snapshots embed the scenario through it (src/snap).
std::string num(double v) { return util::Json::number_to_string(v); }
}  // namespace

std::string format_crashes(
    const std::vector<net::FaultPlan::CrashEvent>& crashes) {
  // Comma-separated: `;` starts a comment in the config grammar, so a
  // semicolon-joined list would silently truncate after the first crash
  // when round-tripped through util::Config (snapshot meta embedding).
  std::ostringstream os;
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    if (i != 0) os << ",";
    os << crashes[i].node << ":" << num(crashes[i].at_s) << ":"
       << num(crashes[i].duration_s);
  }
  return os.str();
}

namespace {
/// Splits on ',' (canonical) or ';' (legacy, config-hostile) separators.
std::vector<std::string> split_crash_items(const std::string& text) {
  std::vector<std::string> items;
  std::string current;
  for (const char c : text) {
    if (c == ',' || c == ';') {
      items.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  items.push_back(current);
  return items;
}
}  // namespace

std::vector<net::FaultPlan::CrashEvent> parse_crashes(
    const std::string& text) {
  std::vector<net::FaultPlan::CrashEvent> out;
  for (const std::string& item : split_crash_items(text)) {
    // Skip blank segments (trailing separators, all-whitespace input).
    if (item.find_first_not_of(" \t") == std::string::npos) continue;
    const std::size_t c1 = item.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : item.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      throw std::invalid_argument(
          "parse_crashes: expected node:at_s:duration_s, got '" + item + "'");
    }
    try {
      net::FaultPlan::CrashEvent crash;
      crash.node = static_cast<net::NodeId>(std::stoul(item.substr(0, c1)));
      crash.at_s = std::stod(item.substr(c1 + 1, c2 - c1 - 1));
      crash.duration_s = std::stod(item.substr(c2 + 1));
      out.push_back(crash);
    } catch (const std::logic_error&) {
      throw std::invalid_argument("parse_crashes: bad number in '" + item +
                                  "'");
    }
  }
  return out;
}

void apply_config(const util::Config& config, ScenarioParams& params) {
  // This parser is the raw-double I/O boundary: every typed quantity is
  // unwrapped with .value() for defaulting and re-wrapped on assignment.
  using util::Bits;
  using util::BitsPerSecond;
  using util::Joules;
  using util::Meters;
  using util::Seconds;
  params.area_m = Meters{config.get_double("area_m", params.area_m.value())};
  params.node_count = static_cast<std::size_t>(
      config.get_int("node_count",
                     static_cast<std::int64_t>(params.node_count)));
  params.comm_range_m =
      Meters{config.get_double("comm_range_m", params.comm_range_m.value())};
  params.min_hops = static_cast<std::size_t>(
      config.get_int("min_hops", static_cast<std::int64_t>(params.min_hops)));

  params.radio.a = config.get_double("radio_a", params.radio.a);
  params.radio.b = config.get_double("radio_b", params.radio.b);
  params.radio.alpha = config.get_double("radio_alpha", params.radio.alpha);
  params.radio.rx_per_bit =
      config.get_double("radio_rx_per_bit", params.radio.rx_per_bit);
  params.mobility.k = config.get_double("k", params.mobility.k);
  params.mobility.max_step_m =
      config.get_double("max_step_m", params.mobility.max_step_m);

  params.initial_energy_j = Joules{
      config.get_double("initial_energy_j", params.initial_energy_j.value())};
  params.random_energy =
      config.get_bool("random_energy", params.random_energy);
  params.energy_lo_j =
      Joules{config.get_double("energy_lo_j", params.energy_lo_j.value())};
  params.energy_hi_j =
      Joules{config.get_double("energy_hi_j", params.energy_hi_j.value())};

  if (config.has("mean_flow_kb")) {
    params.mean_flow_bits =
        Bits{config.get_double("mean_flow_kb", 0.0) * 1024.0 * 8.0};
  }
  params.packet_bits =
      Bits{config.get_double("packet_bits", params.packet_bits.value())};
  params.rate_bps =
      BitsPerSecond{config.get_double("rate_bps", params.rate_bps.value())};
  params.length_estimate_factor = config.get_double(
      "length_estimate_factor", params.length_estimate_factor);

  params.hello_interval_s = Seconds{
      config.get_double("hello_interval_s", params.hello_interval_s.value())};
  params.warmup_s =
      Seconds{config.get_double("warmup_s", params.warmup_s.value())};
  params.charge_hello_energy =
      config.get_bool("charge_hello_energy", params.charge_hello_energy);
  params.position_error_m = Meters{
      config.get_double("position_error_m", params.position_error_m.value())};

  if (config.has("strategy")) {
    const std::string name = config.get_string("strategy");
    if (name == "min-energy" || name == "min-total-energy") {
      params.strategy = net::StrategyId::kMinTotalEnergy;
    } else if (name == "max-lifetime" || name == "lifetime") {
      params.strategy = net::StrategyId::kMaxLifetime;
    } else {
      throw std::invalid_argument("apply_config: unknown strategy " + name);
    }
  }
  params.alpha_prime = config.get_double("alpha_prime", params.alpha_prime);
  params.line_bias_weight =
      config.get_double("line_bias_weight", params.line_bias_weight);
  params.cap_bits = config.get_bool("cap_bits", params.cap_bits);
  params.paper_local_estimator = config.get_bool(
      "paper_local_estimator", params.paper_local_estimator);
  params.exact_lifetime_split = config.get_bool(
      "exact_lifetime_split", params.exact_lifetime_split);
  params.notification_min_gap = static_cast<std::uint32_t>(config.get_int(
      "notification_min_gap",
      static_cast<std::int64_t>(params.notification_min_gap)));
  params.recruit_margin =
      config.get_double("recruit_margin", params.recruit_margin);
  params.multi_flow_blending =
      config.get_bool("multi_flow_blending", params.multi_flow_blending);

  params.fault.loss_rate =
      config.get_double("loss_rate", params.fault.loss_rate);
  params.fault.gilbert_elliott =
      config.get_bool("gilbert_elliott", params.fault.gilbert_elliott);
  params.fault.p_good_to_bad =
      config.get_double("p_good_to_bad", params.fault.p_good_to_bad);
  params.fault.p_bad_to_good =
      config.get_double("p_bad_to_good", params.fault.p_bad_to_good);
  params.fault.loss_good =
      config.get_double("loss_good", params.fault.loss_good);
  params.fault.loss_bad = config.get_double("loss_bad", params.fault.loss_bad);
  params.fault.seed = static_cast<std::uint64_t>(config.get_int(
      "fault_seed", static_cast<std::int64_t>(params.fault.seed)));
  if (config.has("crashes")) {
    params.fault.crashes = parse_crashes(config.get_string("crashes"));
  }
  params.notify_retry_cap = static_cast<std::uint32_t>(config.get_int(
      "notify_retry_cap", static_cast<std::int64_t>(params.notify_retry_cap)));
  params.notify_retry_timeout_s = Seconds{config.get_double(
      "notify_retry_timeout_s", params.notify_retry_timeout_s.value())};

  // Background mobility / traffic models (DESIGN.md §14). Absent keys keep
  // the disabled/legacy defaults, so pre-zoo scenario files parse to
  // byte-identical ScenarioParams.
  if (config.has("mobility.model")) {
    params.mob.model = mob::model_from_string(config.get_string(
        "mobility.model"));
  }
  params.mob.update_s = Seconds{
      config.get_double("mobility.update_s", params.mob.update_s.value())};
  params.mob.speed_min = util::MetersPerSecond{config.get_double(
      "mobility.speed_min_mps", params.mob.speed_min.value())};
  params.mob.speed_max = util::MetersPerSecond{config.get_double(
      "mobility.speed_max_mps", params.mob.speed_max.value())};
  params.mob.pause_s = Seconds{
      config.get_double("mobility.pause_s", params.mob.pause_s.value())};
  params.mob.gm_alpha =
      config.get_double("mobility.gm_alpha", params.mob.gm_alpha);
  params.mob.gm_speed_sigma = util::MetersPerSecond{config.get_double(
      "mobility.gm_speed_sigma_mps", params.mob.gm_speed_sigma.value())};
  params.mob.gm_dir_sigma_rad = config.get_double(
      "mobility.gm_dir_sigma_rad", params.mob.gm_dir_sigma_rad);
  params.mob.group_count = static_cast<std::size_t>(
      config.get_int("mobility.group_count",
                     static_cast<std::int64_t>(params.mob.group_count)));
  params.mob.group_radius_m = Meters{config.get_double(
      "mobility.group_radius_m", params.mob.group_radius_m.value())};
  if (config.has("mobility.trace_file")) {
    params.mob.trace_file = config.get_string("mobility.trace_file");
  }
  params.mob.charge_energy =
      config.get_bool("mobility.charge_energy", params.mob.charge_energy);

  if (config.has("traffic.model")) {
    params.traffic.model = traffic::model_from_string(config.get_string(
        "traffic.model"));
  }
  params.traffic.on_mean_s = Seconds{config.get_double(
      "traffic.on_mean_s", params.traffic.on_mean_s.value())};
  params.traffic.off_mean_s = Seconds{config.get_double(
      "traffic.off_mean_s", params.traffic.off_mean_s.value())};
  params.traffic.pareto_shape = config.get_double(
      "traffic.pareto_shape", params.traffic.pareto_shape);

  params.seed = static_cast<std::uint64_t>(
      config.get_int("seed", static_cast<std::int64_t>(params.seed)));
}

std::string to_config_string(const ScenarioParams& p) {
  std::ostringstream os;
  os << "area_m = " << num(p.area_m.value()) << "\n"
     << "node_count = " << p.node_count << "\n"
     << "comm_range_m = " << num(p.comm_range_m.value()) << "\n"
     << "min_hops = " << p.min_hops << "\n"
     << "radio_a = " << num(p.radio.a) << "\n"
     << "radio_b = " << num(p.radio.b) << "\n"
     << "radio_alpha = " << num(p.radio.alpha) << "\n"
     << "radio_rx_per_bit = " << num(p.radio.rx_per_bit) << "\n"
     << "k = " << num(p.mobility.k) << "\n"
     << "max_step_m = " << num(p.mobility.max_step_m) << "\n"
     << "initial_energy_j = " << num(p.initial_energy_j.value()) << "\n"
     << "random_energy = " << (p.random_energy ? "true" : "false") << "\n"
     << "energy_lo_j = " << num(p.energy_lo_j.value()) << "\n"
     << "energy_hi_j = " << num(p.energy_hi_j.value()) << "\n"
     // Division by 2^13 is exact in binary floating point, so the
     // kb <-> bits conversion round-trips losslessly.
     << "mean_flow_kb = " << num(p.mean_flow_bits.value() / (1024.0 * 8.0))
     << "\n"
     << "packet_bits = " << num(p.packet_bits.value()) << "\n"
     << "rate_bps = " << num(p.rate_bps.value()) << "\n"
     << "length_estimate_factor = " << num(p.length_estimate_factor) << "\n"
     << "hello_interval_s = " << num(p.hello_interval_s.value()) << "\n"
     << "warmup_s = " << num(p.warmup_s.value()) << "\n"
     << "charge_hello_energy = "
     << (p.charge_hello_energy ? "true" : "false") << "\n"
     << "position_error_m = " << num(p.position_error_m.value()) << "\n"
     << "strategy = "
     << (p.strategy == net::StrategyId::kMaxLifetime ? "max-lifetime"
                                                     : "min-energy")
     << "\n"
     << "alpha_prime = " << num(p.alpha_prime) << "\n"
     << "line_bias_weight = " << num(p.line_bias_weight) << "\n"
     << "cap_bits = " << (p.cap_bits ? "true" : "false") << "\n"
     << "paper_local_estimator = "
     << (p.paper_local_estimator ? "true" : "false") << "\n"
     << "exact_lifetime_split = "
     << (p.exact_lifetime_split ? "true" : "false") << "\n"
     << "notification_min_gap = " << p.notification_min_gap << "\n"
     << "recruit_margin = " << num(p.recruit_margin) << "\n"
     << "multi_flow_blending = "
     << (p.multi_flow_blending ? "true" : "false") << "\n"
     << "loss_rate = " << num(p.fault.loss_rate) << "\n"
     << "gilbert_elliott = " << (p.fault.gilbert_elliott ? "true" : "false")
     << "\n"
     << "p_good_to_bad = " << num(p.fault.p_good_to_bad) << "\n"
     << "p_bad_to_good = " << num(p.fault.p_bad_to_good) << "\n"
     << "loss_good = " << num(p.fault.loss_good) << "\n"
     << "loss_bad = " << num(p.fault.loss_bad) << "\n"
     << "fault_seed = " << p.fault.seed << "\n";
  if (!p.fault.crashes.empty()) {
    os << "crashes = " << format_crashes(p.fault.crashes) << "\n";
  }
  os << "notify_retry_cap = " << p.notify_retry_cap << "\n"
     << "notify_retry_timeout_s = " << num(p.notify_retry_timeout_s.value())
     << "\n";
  // Model-zoo keys are emitted only when a model is enabled: disabled
  // scenarios keep the pre-zoo config text byte-for-byte, which also keeps
  // svc checkpoint-scope digests (content-derived from this string) stable
  // for every legacy sweep.
  if (p.mob.enabled()) {
    os << "mobility.model = " << mob::to_string(p.mob.model) << "\n"
       << "mobility.update_s = " << num(p.mob.update_s.value()) << "\n"
       << "mobility.speed_min_mps = " << num(p.mob.speed_min.value()) << "\n"
       << "mobility.speed_max_mps = " << num(p.mob.speed_max.value()) << "\n"
       << "mobility.pause_s = " << num(p.mob.pause_s.value()) << "\n"
       << "mobility.gm_alpha = " << num(p.mob.gm_alpha) << "\n"
       << "mobility.gm_speed_sigma_mps = " << num(p.mob.gm_speed_sigma.value())
       << "\n"
       << "mobility.gm_dir_sigma_rad = " << num(p.mob.gm_dir_sigma_rad)
       << "\n"
       << "mobility.group_count = " << p.mob.group_count << "\n"
       << "mobility.group_radius_m = " << num(p.mob.group_radius_m.value())
       << "\n";
    if (!p.mob.trace_file.empty()) {
      os << "mobility.trace_file = " << p.mob.trace_file << "\n";
    }
    os << "mobility.charge_energy = "
       << (p.mob.charge_energy ? "true" : "false") << "\n";
  }
  if (p.traffic.enabled()) {
    os << "traffic.model = " << traffic::to_string(p.traffic.model) << "\n"
       << "traffic.on_mean_s = " << num(p.traffic.on_mean_s.value()) << "\n"
       << "traffic.off_mean_s = " << num(p.traffic.off_mean_s.value()) << "\n"
       << "traffic.pareto_shape = " << num(p.traffic.pareto_shape) << "\n";
  }
  os << "seed = " << p.seed << "\n";
  return os.str();
}

}  // namespace imobif::exp
