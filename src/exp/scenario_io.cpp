#include "exp/scenario_io.hpp"

#include <sstream>
#include <stdexcept>

namespace imobif::exp {

void apply_config(const util::Config& config, ScenarioParams& params) {
  params.area_m = config.get_double("area_m", params.area_m);
  params.node_count = static_cast<std::size_t>(
      config.get_int("node_count", static_cast<std::int64_t>(params.node_count)));
  params.comm_range_m = config.get_double("comm_range_m", params.comm_range_m);
  params.min_hops = static_cast<std::size_t>(
      config.get_int("min_hops", static_cast<std::int64_t>(params.min_hops)));

  params.radio.a = config.get_double("radio_a", params.radio.a);
  params.radio.b = config.get_double("radio_b", params.radio.b);
  params.radio.alpha = config.get_double("radio_alpha", params.radio.alpha);
  params.radio.rx_per_bit =
      config.get_double("radio_rx_per_bit", params.radio.rx_per_bit);
  params.mobility.k = config.get_double("k", params.mobility.k);
  params.mobility.max_step_m =
      config.get_double("max_step_m", params.mobility.max_step_m);

  params.initial_energy_j =
      config.get_double("initial_energy_j", params.initial_energy_j);
  params.random_energy =
      config.get_bool("random_energy", params.random_energy);
  params.energy_lo_j = config.get_double("energy_lo_j", params.energy_lo_j);
  params.energy_hi_j = config.get_double("energy_hi_j", params.energy_hi_j);

  if (config.has("mean_flow_kb")) {
    params.mean_flow_bits =
        config.get_double("mean_flow_kb", 0.0) * 1024.0 * 8.0;
  }
  params.packet_bits = config.get_double("packet_bits", params.packet_bits);
  params.rate_bps = config.get_double("rate_bps", params.rate_bps);
  params.length_estimate_factor = config.get_double(
      "length_estimate_factor", params.length_estimate_factor);

  params.hello_interval_s =
      config.get_double("hello_interval_s", params.hello_interval_s);
  params.warmup_s = config.get_double("warmup_s", params.warmup_s);
  params.charge_hello_energy =
      config.get_bool("charge_hello_energy", params.charge_hello_energy);
  params.position_error_m =
      config.get_double("position_error_m", params.position_error_m);

  if (config.has("strategy")) {
    const std::string name = config.get_string("strategy");
    if (name == "min-energy" || name == "min-total-energy") {
      params.strategy = net::StrategyId::kMinTotalEnergy;
    } else if (name == "max-lifetime" || name == "lifetime") {
      params.strategy = net::StrategyId::kMaxLifetime;
    } else {
      throw std::invalid_argument("apply_config: unknown strategy " + name);
    }
  }
  params.alpha_prime = config.get_double("alpha_prime", params.alpha_prime);
  params.line_bias_weight =
      config.get_double("line_bias_weight", params.line_bias_weight);
  params.cap_bits = config.get_bool("cap_bits", params.cap_bits);
  params.paper_local_estimator = config.get_bool(
      "paper_local_estimator", params.paper_local_estimator);
  params.exact_lifetime_split = config.get_bool(
      "exact_lifetime_split", params.exact_lifetime_split);
  params.notification_min_gap = static_cast<std::uint32_t>(config.get_int(
      "notification_min_gap",
      static_cast<std::int64_t>(params.notification_min_gap)));
  params.recruit_margin =
      config.get_double("recruit_margin", params.recruit_margin);

  params.fault.loss_rate =
      config.get_double("loss_rate", params.fault.loss_rate);
  params.fault.gilbert_elliott =
      config.get_bool("gilbert_elliott", params.fault.gilbert_elliott);
  params.fault.p_good_to_bad =
      config.get_double("p_good_to_bad", params.fault.p_good_to_bad);
  params.fault.p_bad_to_good =
      config.get_double("p_bad_to_good", params.fault.p_bad_to_good);
  params.fault.loss_good = config.get_double("loss_good", params.fault.loss_good);
  params.fault.loss_bad = config.get_double("loss_bad", params.fault.loss_bad);
  params.fault.seed = static_cast<std::uint64_t>(config.get_int(
      "fault_seed", static_cast<std::int64_t>(params.fault.seed)));
  params.notify_retry_cap = static_cast<std::uint32_t>(config.get_int(
      "notify_retry_cap", static_cast<std::int64_t>(params.notify_retry_cap)));
  params.notify_retry_timeout_s = config.get_double(
      "notify_retry_timeout_s", params.notify_retry_timeout_s);

  params.seed = static_cast<std::uint64_t>(
      config.get_int("seed", static_cast<std::int64_t>(params.seed)));
}

std::string to_config_string(const ScenarioParams& p) {
  std::ostringstream os;
  os << "area_m = " << p.area_m << "\n"
     << "node_count = " << p.node_count << "\n"
     << "comm_range_m = " << p.comm_range_m << "\n"
     << "min_hops = " << p.min_hops << "\n"
     << "radio_a = " << p.radio.a << "\n"
     << "radio_b = " << p.radio.b << "\n"
     << "radio_alpha = " << p.radio.alpha << "\n"
     << "radio_rx_per_bit = " << p.radio.rx_per_bit << "\n"
     << "k = " << p.mobility.k << "\n"
     << "max_step_m = " << p.mobility.max_step_m << "\n"
     << "initial_energy_j = " << p.initial_energy_j << "\n"
     << "random_energy = " << (p.random_energy ? "true" : "false") << "\n"
     << "energy_lo_j = " << p.energy_lo_j << "\n"
     << "energy_hi_j = " << p.energy_hi_j << "\n"
     << "mean_flow_kb = " << p.mean_flow_bits / (1024.0 * 8.0) << "\n"
     << "packet_bits = " << p.packet_bits << "\n"
     << "rate_bps = " << p.rate_bps << "\n"
     << "length_estimate_factor = " << p.length_estimate_factor << "\n"
     << "hello_interval_s = " << p.hello_interval_s << "\n"
     << "warmup_s = " << p.warmup_s << "\n"
     << "charge_hello_energy = "
     << (p.charge_hello_energy ? "true" : "false") << "\n"
     << "position_error_m = " << p.position_error_m << "\n"
     << "strategy = "
     << (p.strategy == net::StrategyId::kMaxLifetime ? "max-lifetime"
                                                     : "min-energy")
     << "\n"
     << "alpha_prime = " << p.alpha_prime << "\n"
     << "line_bias_weight = " << p.line_bias_weight << "\n"
     << "cap_bits = " << (p.cap_bits ? "true" : "false") << "\n"
     << "paper_local_estimator = "
     << (p.paper_local_estimator ? "true" : "false") << "\n"
     << "exact_lifetime_split = "
     << (p.exact_lifetime_split ? "true" : "false") << "\n"
     << "notification_min_gap = " << p.notification_min_gap << "\n"
     << "recruit_margin = " << p.recruit_margin << "\n"
     << "loss_rate = " << p.fault.loss_rate << "\n"
     << "gilbert_elliott = " << (p.fault.gilbert_elliott ? "true" : "false")
     << "\n"
     << "p_good_to_bad = " << p.fault.p_good_to_bad << "\n"
     << "p_bad_to_good = " << p.fault.p_bad_to_good << "\n"
     << "loss_good = " << p.fault.loss_good << "\n"
     << "loss_bad = " << p.fault.loss_bad << "\n"
     << "fault_seed = " << p.fault.seed << "\n"
     << "notify_retry_cap = " << p.notify_retry_cap << "\n"
     << "notify_retry_timeout_s = " << p.notify_retry_timeout_s << "\n"
     << "seed = " << p.seed << "\n";
  return os.str();
}

}  // namespace imobif::exp
