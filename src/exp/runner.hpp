// Replays one FlowInstance under a given mobility mode and collects the
// metrics the paper's figures report.
#pragma once

#include <optional>
#include <vector>

#include "core/imobif_policy.hpp"
#include "exp/instance.hpp"
#include "exp/scenario.hpp"
#include "net/network.hpp"
#include "util/units.hpp"

namespace imobif::exp {

struct RunResult {
  core::MobilityMode mode = core::MobilityMode::kNoMobility;
  bool completed = false;
  util::Bits delivered_bits{0.0};
  util::Seconds completion_s{0.0};  ///< simulated seconds from flow start

  util::Joules transmit_energy_j{0.0};  ///< data + notification transmissions
  util::Joules movement_energy_j{0.0};
  util::Joules total_energy_j{0.0};

  std::uint64_t notifications = 0;  ///< status-change packets from the dest
  std::uint64_t notify_retries = 0; ///< notification retransmissions
  std::uint64_t notifications_applied = 0;  ///< flips applied at the source
  std::uint64_t recruits = 0;       ///< relays recruited into the flow (E2)
  std::uint64_t movements = 0;
  util::Meters moved_distance_m{0.0};

  /// Medium-level drop counters (out-of-range, dead/faulted receivers,
  /// injected channel loss, ...) accumulated over warmup + flow.
  net::Medium::Counters medium;

  /// Simulated time (from flow start) until the first node died; equals the
  /// run duration when nobody died (censored).
  util::Seconds lifetime_s{0.0};
  bool any_death = false;

  /// Flow path (source..destination) pinned by the first packet, and the
  /// path nodes' final positions / residual energies (Fig 5 snapshots).
  std::vector<net::NodeId> path;
  std::vector<geom::Vec2> final_positions;    ///< all nodes
  std::vector<util::Joules> final_energies;   ///< all nodes
};

struct RunOptions {
  /// Stop the run at the first node death (lifetime experiments).
  bool stop_on_first_death = false;
  /// Wall on simulated time, as a multiple of the ideal flow duration.
  double horizon_factor = 4.0;
  util::Seconds horizon_slack_s{600.0};
  /// Extension toggle: blend targets across flows at shared relays.
  bool multi_flow_blending = false;
  /// Additional flows started alongside the main flow (multi-flow runs).
  /// The RunResult still reports the main flow; extra flows contribute to
  /// the run's energy totals, horizon checks, and completion condition.
  std::vector<net::FlowSpec> extra_flows;
};

/// Runs `instance` under `mode`; deterministic given (instance, params).
RunResult run_instance(const FlowInstance& instance,
                       const ScenarioParams& params, core::MobilityMode mode,
                       const RunOptions& options = {});

/// Walks a flow's pinned path source -> destination via the nodes' flow
/// tables. Returns an empty vector when the path is broken.
std::vector<net::NodeId> trace_flow_path(net::Network& network,
                                         net::FlowId flow);

}  // namespace imobif::exp
