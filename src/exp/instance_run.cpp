#include "exp/instance_run.hpp"

#include <algorithm>
#include <utility>

#include "core/imobif.hpp"

namespace imobif::exp {

namespace {
/// Chunk length and stall window of the legacy Network::run_flows() loop;
/// advance() must match them exactly for bit-identical replays.
const sim::Time kChunk = sim::Time::from_seconds(5.0);
const sim::Time kStallWindow = sim::Time::from_seconds(120.0);
}  // namespace

InstanceRun::InstanceRun(const FlowInstance& instance,
                         const ScenarioParams& params, core::MobilityMode mode,
                         const RunOptions& options)
    : instance_(instance),
      params_(params),
      mode_(mode),
      options_(options),
      mobility_model_(params.mobility),
      stall_window_(kStallWindow) {}

void InstanceRun::build_network() {
  net::NetworkConfig config;
  config.medium.comm_range_m = params_.comm_range_m.value();
  config.node.hello_interval =
      sim::Time::from_seconds(params_.hello_interval_s.value());
  config.node.neighbor_timeout =
      sim::Time::from_seconds(4.5 * params_.hello_interval_s.value());
  config.node.charge_hello_energy = params_.charge_hello_energy;
  config.node.position_error_m = params_.position_error_m;
  config.node.notify_retry_cap = params_.notify_retry_cap;
  config.node.notify_retry_timeout =
      sim::Time::from_seconds(params_.notify_retry_timeout_s.value());
  config.radio = params_.radio;
  config.traffic = params_.traffic;
  config.traffic_seed = instance_.traffic_seed;

  network_ = std::make_unique<net::Network>(config);
  for (std::size_t i = 0; i < instance_.positions.size(); ++i) {
    network_->add_node(instance_.positions[i], instance_.energies[i]);
  }
  if (params_.line_bias_weight > 0.0) {
    network_->set_routing(std::make_unique<net::LineBiasedGreedyRouting>(
        network_->medium(), params_.line_bias_weight));
  } else {
    network_->set_routing(
        std::make_unique<net::GreedyRouting>(network_->medium()));
  }

  policy_ = core::make_default_policy(network_->radio(), mobility_model_,
                                      mode_, params_.alpha_prime);
  policy_->set_multi_flow_blending(options_.multi_flow_blending ||
                                   params_.multi_flow_blending);
  policy_->set_cap_bits(params_.cap_bits);
  policy_->set_estimator(params_.paper_local_estimator
                             ? core::BenefitEstimator::kPaperLocal
                             : core::BenefitEstimator::kHopReceiver);
  policy_->set_notification_min_gap(params_.notification_min_gap);
  if (params_.recruit_margin > 0.0) {
    policy_->enable_recruitment(params_.recruit_margin);
  }
  if (params_.exact_lifetime_split) {
    policy_->register_strategy(
        std::make_unique<core::MaxLifetimeStrategy>(params_.radio));
  }
  network_->set_policy(policy_.get());
  network_->set_stop_on_first_death(options_.stop_on_first_death);

  if (params_.mob.enabled()) {
    // Construct only — create() starts the tick; create_shell leaves it to
    // the snapshot restore, which re-arms the pending tick event.
    motion_ = std::make_unique<mob::MotionDriver>(
        *network_, params_.mob, instance_.mobility_seed, params_.area_m,
        util::JoulesPerMeter{params_.mobility.k});
  }
}

void InstanceRun::compute_horizon() {
  const util::Seconds ideal_duration = instance_.flow_bits / params_.rate_bps;
  const util::Seconds horizon_s =
      ideal_duration * options_.horizon_factor + options_.horizon_slack_s;
  horizon_ = flow_start_ + sim::Time::from_seconds(horizon_s.value());
}

std::unique_ptr<InstanceRun> InstanceRun::create(const FlowInstance& instance,
                                                 const ScenarioParams& params,
                                                 core::MobilityMode mode,
                                                 const RunOptions& options) {
  params.validate();
  std::unique_ptr<InstanceRun> run(
      new InstanceRun(instance, params, mode, options));
  run->build_network();
  net::Network& network = *run->network_;
  network.medium().install_fault_plan(params.fault);

  // Ambient motion runs from t = 0, like fault schedules: nodes drift
  // during warmup too, so neighbor tables form over the moving topology.
  if (run->motion_) run->motion_->start();
  network.warmup(params.warmup_s);
  run->warmup_consumed_ = network.total_consumed_energy();
  run->flow_start_ = network.simulator().now();

  net::FlowSpec spec;
  spec.id = kMainFlowId;
  spec.source = instance.source;
  spec.destination = instance.destination;
  spec.length_bits = instance.flow_bits;
  spec.packet_bits = params.packet_bits;
  spec.rate_bps = params.rate_bps;
  spec.strategy = params.strategy;
  // Cost-unaware mobility moves from the first packet on; iMobif starts
  // disabled (paper Section 4) and the baseline never moves at all.
  spec.initially_enabled = (mode == core::MobilityMode::kCostUnaware);
  spec.length_estimate_factor = params.length_estimate_factor;
  network.start_flow(spec);
  for (const net::FlowSpec& extra : options.extra_flows) {
    network.start_flow(extra);
  }

  run->compute_horizon();
  // Matches the last_progress reset at the top of run_flows().
  network.restore_last_progress(run->flow_start_);
  return run;
}

std::unique_ptr<InstanceRun> InstanceRun::create_shell(
    const FlowInstance& instance, const ScenarioParams& params,
    core::MobilityMode mode, const RunOptions& options) {
  params.validate();
  std::unique_ptr<InstanceRun> run(
      new InstanceRun(instance, params, mode, options));
  run->build_network();
  return run;
}

void InstanceRun::restore_run_state(util::Joules warmup_consumed,
                                    sim::Time flow_start, bool in_chunk,
                                    sim::Time chunk_end, bool done) {
  warmup_consumed_ = warmup_consumed;
  flow_start_ = flow_start;
  in_chunk_ = in_chunk;
  chunk_end_ = chunk_end;
  done_ = done;
  compute_horizon();
}

bool InstanceRun::at_completion() const {
  if (done_) return true;
  if (in_chunk_) return false;
  // Between-chunk checks, in the exact order of run_flows().
  const sim::Simulator& sim = network_->simulator();
  return sim.now() >= horizon_ || network_->all_flows_complete() ||
         (network_->stop_on_first_death() &&
          network_->first_death_time().has_value()) ||
         sim.now() - network_->last_progress() > stall_window_;
}

bool InstanceRun::advance(std::size_t max_events) {
  if (done_) return true;
  sim::Simulator& sim = network_->simulator();
  std::size_t remaining = max_events;
  for (;;) {
    if (!in_chunk_) {
      if (at_completion()) {
        done_ = true;
        return true;
      }
      if (checkpoint_hook_) checkpoint_hook_(*this);
      chunk_end_ = std::min(horizon_, sim.now() + kChunk);
      in_chunk_ = true;
    }
    const std::size_t executed = sim.run(chunk_end_, remaining);
    if (max_events != 0) {
      remaining = executed >= remaining ? 0 : remaining - executed;
    }
    // The chunk is over when the simulator stopped itself (completion /
    // first death), reached the chunk horizon, or drained the queue; an
    // event-capped return with none of those is a mid-chunk pause.
    const bool chunk_over = sim.stop_requested() ||
                            sim.now() >= chunk_end_ ||
                            sim.pending_events() == 0;
    if (!chunk_over) return false;
    in_chunk_ = false;
    if (sim.pending_events() == 0) {
      done_ = true;
      return true;
    }
    if (max_events != 0 && remaining == 0) return false;
  }
}

RunResult InstanceRun::result() {
  net::Network& network = *network_;
  const net::FlowProgress& prog = network.progress(kMainFlowId);
  RunResult result;
  result.mode = mode_;
  result.completed = prog.completed;
  result.delivered_bits = prog.delivered_bits;
  result.completion_s = util::Seconds{
      prog.completion_time.has_value()
          ? (*prog.completion_time - flow_start_).seconds()
          : (network.simulator().now() - flow_start_).seconds()};

  result.transmit_energy_j = network.total_transmit_energy();
  result.movement_energy_j = network.total_movement_energy();
  result.total_energy_j = network.total_consumed_energy() - warmup_consumed_;

  result.notifications = prog.notifications_from_dest;
  result.notify_retries = prog.notification_retries;
  result.notifications_applied = prog.notifications_at_source;
  result.medium = network.medium().counters();
  result.recruits = prog.recruits;
  result.movements = policy_->movements_applied();
  result.moved_distance_m = policy_->total_distance_moved();

  result.any_death = network.first_death_time().has_value();
  result.lifetime_s = util::Seconds{
      result.any_death
          ? (*network.first_death_time() - flow_start_).seconds()
          : (network.simulator().now() - flow_start_).seconds()};

  result.path = trace_flow_path(network, kMainFlowId);
  result.final_positions = network.positions();
  result.final_energies.reserve(network.node_count());
  for (std::size_t i = 0; i < network.node_count(); ++i) {
    result.final_energies.push_back(
        network.node(static_cast<net::NodeId>(i)).battery().residual());
  }
  return result;
}

}  // namespace imobif::exp
