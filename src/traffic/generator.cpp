#include "traffic/generator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace imobif::traffic {

using util::Seconds;

Generator::~Generator() = default;

void Generator::restore_state(const std::vector<double>& state) {
  if (!state.empty()) {
    throw std::invalid_argument("traffic: unexpected generator state");
  }
}

namespace {

/// The legacy packet train: the base interval verbatim, no RNG draws.
class CbrGenerator final : public Generator {
 public:
  using Generator::Generator;
  ModelId id() const override { return ModelId::kCbr; }
  Seconds next_interval(Seconds base) override { return base; }
};

/// Exponential ON/OFF bursts. During an ON period packets leave at the
/// boosted peak interval base * duty (duty = on / (on + off)), so the
/// long-run mean interval stays the nominal `base`; when the ON budget
/// runs out, an exponential OFF gap precedes the next burst.
class OnOffGenerator final : public Generator {
 public:
  OnOffGenerator(const Params& params, std::uint64_t seed)
      : Generator(seed), params_(params) {}
  ModelId id() const override { return ModelId::kOnOff; }

  Seconds next_interval(Seconds base) override {
    const double duty =
        params_.on_mean_s.value() /
        (params_.on_mean_s.value() + params_.off_mean_s.value());
    const Seconds peak = base * duty;
    if (remaining_on_ >= peak) {
      remaining_on_ -= peak;
      return peak;
    }
    const Seconds gap{rng().exponential(params_.off_mean_s.value())};
    remaining_on_ = Seconds{rng().exponential(params_.on_mean_s.value())};
    return peak + gap;
  }

  std::vector<double> state() const override {
    return {remaining_on_.value()};
  }
  void restore_state(const std::vector<double>& state) override {
    if (state.size() != 1) {
      throw std::invalid_argument("traffic: bad on/off generator state");
    }
    remaining_on_ = Seconds{state[0]};
  }

 private:
  Params params_;
  /// Unspent ON-period budget; the first call draws the first burst.
  Seconds remaining_on_{0.0};
};

/// Heavy-tailed Pareto gaps, mean-normalized to `base`:
/// X = base * (shape - 1) / shape * (1 - U)^(-1 / shape).
class ParetoGenerator final : public Generator {
 public:
  ParetoGenerator(const Params& params, std::uint64_t seed)
      : Generator(seed), shape_(params.pareto_shape) {}
  ModelId id() const override { return ModelId::kPareto; }

  Seconds next_interval(Seconds base) override {
    const double u = rng().uniform01();
    const double sample = std::pow(1.0 - u, -1.0 / shape_);
    return base * ((shape_ - 1.0) / shape_ * sample);
  }

 private:
  double shape_;
};

}  // namespace

std::unique_ptr<Generator> make_generator(const Params& params,
                                          std::uint64_t seed) {
  params.validate();
  switch (params.model) {
    case ModelId::kCbr:
      return std::make_unique<CbrGenerator>(seed);
    case ModelId::kOnOff:
      return std::make_unique<OnOffGenerator>(params, seed);
    case ModelId::kPareto:
      return std::make_unique<ParetoGenerator>(params, seed);
  }
  throw std::invalid_argument("traffic: unknown model id");
}

}  // namespace imobif::traffic
