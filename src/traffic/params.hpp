// Traffic model parameters: which inter-packet arrival process drives a
// flow's source (src/traffic replaces the single hard-coded CBR packet
// train with a small model zoo — DESIGN.md §14).
//
// kCbr is the legacy train and is byte-identical to a build without this
// layer: it never draws randomness and never carries checkpoint state, so
// every committed figure keeps its exact bytes under the defaults.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace imobif::traffic {

enum class ModelId : std::uint8_t {
  kCbr = 0,     ///< constant bit rate: the legacy packet train
  kOnOff = 1,   ///< exponential ON/OFF bursts at a boosted peak rate
  kPareto = 2,  ///< heavy-tailed Pareto inter-arrival gaps
};

const char* to_string(ModelId id);
ModelId model_from_string(const std::string& name);

// snap:transient(config struct, persisted wholesale as scenario text in the meta section)
struct Params {
  ModelId model = ModelId::kCbr;
  /// Mean lengths of the exponential ON and OFF periods (kOnOff).
  util::Seconds on_mean_s{5.0};
  util::Seconds off_mean_s{5.0};
  /// Pareto tail index (kPareto); must exceed 1 so the mean gap exists.
  double pareto_shape = 1.5;

  /// True when the model deviates from the legacy CBR source — the only
  /// case that consumes a traffic seed or carries checkpoint state.
  bool enabled() const { return model != ModelId::kCbr; }

  void validate() const;
};

}  // namespace imobif::traffic
