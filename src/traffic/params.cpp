#include "traffic/params.hpp"

#include <stdexcept>

namespace imobif::traffic {

const char* to_string(ModelId id) {
  switch (id) {
    case ModelId::kCbr:
      return "cbr";
    case ModelId::kOnOff:
      return "onoff";
    case ModelId::kPareto:
      return "pareto";
  }
  return "?";
}

ModelId model_from_string(const std::string& name) {
  if (name == "cbr") return ModelId::kCbr;
  if (name == "onoff" || name == "on-off") return ModelId::kOnOff;
  if (name == "pareto") return ModelId::kPareto;
  throw std::invalid_argument("traffic: unknown model '" + name + "'");
}

void Params::validate() const {
  using util::Seconds;
  if (!enabled()) return;
  if (model == ModelId::kOnOff &&
      !(on_mean_s > Seconds{0.0} && off_mean_s > Seconds{0.0})) {
    throw std::invalid_argument("traffic: on/off means must be > 0");
  }
  if (model == ModelId::kPareto && !(pareto_shape > 1.0)) {
    throw std::invalid_argument(
        "traffic: pareto shape must exceed 1 (finite mean)");
  }
}

}  // namespace imobif::traffic
