// TrafficGenerator: a flow's inter-packet interval process.
//
// Network::start_flow historically scheduled every emission at the constant
// interval packet_bits / rate_bps. A generator replaces that constant with a
// stochastic process whose long-run mean equals the same base interval, so
// every model carries the flow's nominal rate and figures stay comparable
// across the traffic grid. The network only installs a generator for a
// non-CBR model; the legacy inline computation otherwise runs untouched and
// committed artifacts keep their exact bytes.
//
// Determinism: each generator owns one RNG stream seeded from the
// instance's traffic seed and the flow id (DESIGN.md §14), so the draw
// sequence is a pure function of (params, seed) — bit-identical replays for
// any worker count. Checkpointing: a generator is (rng state, scalar state
// vector); src/snap encodes both and re-seats them through rng() and
// restore_state().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "traffic/params.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace imobif::traffic {

class Generator {
 public:
  explicit Generator(std::uint64_t seed) : rng_(seed) {}
  virtual ~Generator();
  Generator(const Generator&) = delete;
  Generator& operator=(const Generator&) = delete;

  virtual ModelId id() const = 0;

  /// Interval from now until the next packet emission. `base` is the
  /// flow's nominal CBR interval (packet_bits / rate_bps); every model is
  /// mean-preserving around it.
  virtual util::Seconds next_interval(util::Seconds base) = 0;

  /// Model-specific scalar state beyond the RNG (checkpoints). The layout
  /// is private to each model; restore_state consumes exactly what state()
  /// produced and throws std::invalid_argument on a mismatch.
  virtual std::vector<double> state() const { return {}; }
  virtual void restore_state(const std::vector<double>& state);

  util::Rng& rng() { return rng_; }
  const util::Rng& rng() const { return rng_; }

 private:
  util::Rng rng_;
};

/// Builds the generator for `params`. CBR callers normally skip the
/// generator entirely (Params::enabled() is false), but the factory still
/// serves all three models so tests can exercise the CBR object.
std::unique_ptr<Generator> make_generator(const Params& params,
                                          std::uint64_t seed);

}  // namespace imobif::traffic
