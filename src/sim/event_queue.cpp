#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace imobif::sim {

EventId EventQueue::schedule(Time when, Callback fn, EventTag tag) {
  IMOBIF_ENSURE(fn != nullptr, "scheduled a null callback");
  IMOBIF_ENSURE(when != Time::infinity(),
                "infinity is the empty-queue sentinel, not a schedulable time");
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  callbacks_.emplace(id, Scheduled{std::move(fn), std::move(tag)});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::drop_dead_heap_top() const {
  while (!heap_.empty() && !entry_live(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void EventQueue::drop_dead_due_front() const {
  while (due_head_ < due_.size() && !entry_live(due_[due_head_].id)) {
    ++due_head_;
  }
  if (due_head_ == due_.size() && due_head_ != 0) {
    due_.clear();
    due_head_ = 0;
  }
}

Time EventQueue::next_time() const {
  drop_dead_due_front();
  drop_dead_heap_top();
  if (due_head_ < due_.size()) {
    // Anything still staged was earliest when the batch was drained; only a
    // schedule() issued *after* staging could have put an earlier time on
    // the heap (the simulator never does — its clock already passed it).
    if (!heap_.empty() && heap_.front().when < due_[due_head_].when) {
      return heap_.front().when;
    }
    return due_[due_head_].when;
  }
  return heap_.empty() ? Time::infinity() : heap_.front().when;
}

std::size_t EventQueue::stage_due_batch() {
  drop_dead_due_front();
  if (due_head_ < due_.size()) return due_.size() - due_head_;
  drop_dead_heap_top();
  if (heap_.empty()) return 0;
  const Time batch_time = heap_.front().when;
  // One pass over the heap: pop_heap yields ascending (time, seq), so the
  // staged vector is already in execution order.
  while (!heap_.empty() && heap_.front().when == batch_time) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = heap_.back();
    heap_.pop_back();
    if (entry_live(entry.id)) due_.push_back(entry);
    drop_dead_heap_top();
  }
  return due_.size();
}

EventQueue::Popped EventQueue::pop() {
  stage_due_batch();
  if (live_count_ == 0) {
    throw std::logic_error("EventQueue::pop on empty queue");
  }
  drop_dead_due_front();
  drop_dead_heap_top();
  // Serve whichever source holds the earliest (time, seq). The heap can
  // only win when a post-staging schedule() targeted an earlier time than
  // the staged batch (legal for a standalone queue, unreachable through
  // the simulator).
  Entry next{};
  const bool due_has = due_head_ < due_.size();
  if (due_has && (heap_.empty() || !Later{}(due_[due_head_], heap_.front()))) {
    next = due_[due_head_++];
    if (due_head_ == due_.size()) {
      due_.clear();
      due_head_ = 0;
    }
  } else {
    IMOBIF_ASSERT(!heap_.empty(), "pop with live events but no entries");
    next = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
  IMOBIF_ASSERT(next.when >= last_popped_,
                "event times must be popped in non-decreasing order");
  last_popped_ = next.when;
  const auto it = callbacks_.find(next.id);
  Popped out{next.when, std::move(it->second.fn)};
  callbacks_.erase(it);
  --live_count_;
  return out;
}

std::vector<EventQueue::PendingEvent> EventQueue::pending_tagged() const {
  std::vector<PendingEvent> out;
  out.reserve(live_count_);
  const auto collect = [&](const Entry& entry) {
    const auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) return;  // cancelled, not yet dropped
    out.push_back(PendingEvent{entry.when, entry.seq, &it->second.tag});
  };
  for (std::size_t i = due_head_; i < due_.size(); ++i) collect(due_[i]);
  for (const Entry& entry : heap_) collect(entry);
  std::sort(out.begin(), out.end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              return a.seq < b.seq;
            });
  return out;
}

std::size_t EventQueue::approx_bytes() const {
  // Vector storage plus a flat estimate of the node-based callback map;
  // std::function targets are not walked, so this is a floor.
  return heap_.capacity() * sizeof(Entry) + due_.capacity() * sizeof(Entry) +
         callbacks_.size() *
             (sizeof(std::pair<const EventId, Scheduled>) + 2 * sizeof(void*));
}

}  // namespace imobif::sim
