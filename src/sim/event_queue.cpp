#include "sim/event_queue.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace imobif::sim {

EventId EventQueue::schedule(Time when, Callback fn) {
  IMOBIF_ENSURE(fn != nullptr, "scheduled a null callback");
  IMOBIF_ENSURE(when != Time::infinity(),
                "infinity is the empty-queue sentinel, not a schedulable time");
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? Time::infinity() : heap_.top().when;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  const Entry top = heap_.top();
  IMOBIF_ASSERT(top.when >= last_popped_,
                "event times must be popped in non-decreasing order");
  last_popped_ = top.when;
  heap_.pop();
  const auto it = callbacks_.find(top.id);
  Popped out{top.when, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return out;
}

}  // namespace imobif::sim
