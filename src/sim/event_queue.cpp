#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace imobif::sim {

EventId EventQueue::schedule(Time when, Callback fn, EventTag tag) {
  IMOBIF_ENSURE(fn != nullptr, "scheduled a null callback");
  IMOBIF_ENSURE(when != Time::infinity(),
                "infinity is the empty-queue sentinel, not a schedulable time");
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  callbacks_.emplace(id, Scheduled{std::move(fn), std::move(tag)});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && cancelled_.count(heap_.front().id) > 0) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? Time::infinity() : heap_.front().when;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  const Entry top = heap_.front();
  IMOBIF_ASSERT(top.when >= last_popped_,
                "event times must be popped in non-decreasing order");
  last_popped_ = top.when;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  const auto it = callbacks_.find(top.id);
  Popped out{top.when, std::move(it->second.fn)};
  callbacks_.erase(it);
  --live_count_;
  return out;
}

std::vector<EventQueue::PendingEvent> EventQueue::pending_tagged() const {
  std::vector<PendingEvent> out;
  out.reserve(live_count_);
  for (const Entry& entry : heap_) {
    const auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) continue;  // cancelled, not yet dropped
    out.push_back(PendingEvent{entry.when, entry.seq, &it->second.tag});
  }
  std::sort(out.begin(), out.end(),
            [](const PendingEvent& a, const PendingEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace imobif::sim
