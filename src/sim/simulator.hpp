// Simulator: the event loop that owns the clock.
//
// Components schedule callbacks at absolute or relative times; run() drains
// events in order, advancing the clock monotonically. A stop flag and event
// budget guard against runaway protocols in tests.
#pragma once

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace imobif::sim {

// snap:transient(event plumbing; the events section re-arms the queue and restore_clock restores the clock)
class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedules at absolute time `when`; must not be in the past. The
  /// optional tag describes the event for checkpointing (event_tag.hpp).
  EventId at(Time when, EventQueue::Callback fn, EventTag tag = {});

  /// Schedules `delay` after the current time.
  EventId after(Time delay, EventQueue::Callback fn, EventTag tag = {}) {
    return at(now_ + delay, std::move(fn), std::move(tag));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue is empty, `until` is passed, stop() is called, or
  /// (max_events > 0) that many events have executed — whichever is first.
  /// Returns the number of events executed by this call.
  std::size_t run(Time until = Time::infinity(), std::size_t max_events = 0);

  /// Executes at most one pending event (if due before `until`).
  /// Returns true when an event ran.
  bool step(Time until = Time::infinity());

  /// Request run() to return after the current event completes.
  void stop() { stopped_ = true; }

  /// True when stop() was called during the last (or current) run(); run()
  /// clears the flag on entry, so after a return this tells why it ended.
  bool stop_requested() const { return stopped_; }

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t executed_events() const { return executed_; }

  /// Lower-bound estimate of the event queue's heap bytes (scale
  /// accounting; see EventQueue::approx_bytes).
  std::size_t queue_approx_bytes() const { return queue_.approx_bytes(); }

  /// Time of the earliest pending event; Time::infinity() when none.
  Time next_event_time() const { return queue_.next_time(); }

  /// Every pending event's (time, seq, tag) in execution order, for
  /// checkpointing (see event_tag.hpp).
  std::vector<EventQueue::PendingEvent> pending_tagged() const {
    return queue_.pending_tagged();
  }

  /// Checkpoint restore: re-seats the clock and the executed-event count.
  /// Only valid on a pristine simulator (no pending events, nothing
  /// executed) — restore re-schedules events *after* the clock is seated so
  /// their absolute times are never "in the past".
  void restore_clock(Time now, std::size_t executed);

  /// Aborts run() with an exception after this many events (0 = unlimited).
  void set_event_budget(std::size_t budget) { event_budget_ = budget; }

 private:
  EventQueue queue_;
  Time now_ = Time::zero();
  bool stopped_ = false;
  // snap:derived(restore_clock)
  std::size_t executed_ = 0;
  std::size_t event_budget_ = 0;
};

}  // namespace imobif::sim
