// Simulator: the event loop that owns the clock.
//
// Components schedule callbacks at absolute or relative times; run() drains
// events in order, advancing the clock monotonically. A stop flag and event
// budget guard against runaway protocols in tests.
#pragma once

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace imobif::sim {

class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedules at absolute time `when`; must not be in the past.
  EventId at(Time when, EventQueue::Callback fn);

  /// Schedules `delay` after the current time.
  EventId after(Time delay, EventQueue::Callback fn) {
    return at(now_ + delay, std::move(fn));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue is empty, `until` is passed, or stop() is called.
  /// Returns the number of events executed.
  std::size_t run(Time until = Time::infinity());

  /// Executes at most one pending event (if due before `until`).
  /// Returns true when an event ran.
  bool step(Time until = Time::infinity());

  /// Request run() to return after the current event completes.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return queue_.size(); }
  std::size_t executed_events() const { return executed_; }

  /// Aborts run() with an exception after this many events (0 = unlimited).
  void set_event_budget(std::size_t budget) { event_budget_ = budget; }

 private:
  EventQueue queue_;
  Time now_ = Time::zero();
  bool stopped_ = false;
  std::size_t executed_ = 0;
  std::size_t event_budget_ = 0;
};

}  // namespace imobif::sim
