// Discrete-event queue: a binary heap of (time, sequence, callback) with
// O(log n) push/pop, lazy cancellation, and batched same-tick draining.
//
// Ties in time are broken by insertion sequence, so same-tick events run in
// the order they were scheduled — this determinism is what makes the
// packet-by-packet mobility protocol of the paper reproducible in tests.
//
// The heap is a std::vector managed with std::push_heap/pop_heap (not a
// std::priority_queue) so live events can be *enumerated* for
// checkpointing: pending_tagged() returns every live event's (time, seq,
// tag) in execution order without disturbing the queue.
//
// Batching (the 10^5-10^6-node scaling path, DESIGN.md §12): instead of a
// per-event pop/push cycle against the full heap, pop() drains every event
// scheduled at next_time() into a staged "due" batch in one heap pass and
// then serves from that batch with plain vector reads. Events scheduled
// *during* a batch go to the heap without disturbing the staged entries;
// because any same-tick newcomer carries a larger sequence number, global
// (time, seq) execution order — and thus bit-identical replays — is
// preserved. Staged events remain cancellable and visible to
// pending_tagged() until they are popped.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/event_tag.hpp"
#include "sim/time.hpp"

namespace imobif::sim {

using EventId = std::uint64_t;

// snap:transient(pending events are re-armed through the schedule path from the snapshot events section)
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `when`; returns a handle for cancel().
  /// The optional tag describes the event for checkpointing (event_tag.hpp).
  EventId schedule(Time when, Callback fn, EventTag tag = {});

  /// Cancels a pending event — staged-but-not-yet-popped events included.
  /// Returns false when the event already ran, was already cancelled, or
  /// never existed.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; Time::infinity() when empty.
  Time next_time() const;

  // snap:transient(pop result value type carrying the callback)
  struct Popped {
    Time when;
    Callback fn;
  };
  /// Removes and returns the earliest live event. Requires !empty().
  /// Internally drains the whole earliest-time batch on the first pop of a
  /// tick (see stage_due_batch) and serves the rest from the batch.
  Popped pop();

  /// Drains every live event at next_time() into the staged batch in one
  /// heap pass; no-op when a batch is already staged (a batch never mixes
  /// two distinct times). Returns the number of staged events not yet
  /// popped, 0 when the queue is empty. pop() calls this implicitly — the
  /// method is public so tests and benchmarks can exercise the batch
  /// machinery directly.
  std::size_t stage_due_batch();

  /// Staged-but-not-yet-popped events (liveness of individual entries is
  /// resolved lazily; recently cancelled stragglers may still be counted).
  std::size_t staged() const { return due_.size() - due_head_; }

  /// A live event's schedule entry, for checkpoint enumeration.
  struct PendingEvent {
    Time when;
    std::uint64_t seq = 0;
    const EventTag* tag = nullptr;  ///< owned by the queue; never null
  };
  /// Every live event in execution order (time, then insertion sequence),
  /// staged batch included. Tags point into the queue and are invalidated
  /// by any mutation.
  std::vector<PendingEvent> pending_tagged() const;

  /// Lower-bound estimate of heap-allocated bytes (scale accounting).
  std::size_t approx_bytes() const;

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  // snap:transient(schedule-slot value type carrying the callback)
  struct Scheduled {
    Callback fn;
    EventTag tag;
  };

  /// An entry (heap or staged) is live iff its callback is still registered;
  /// cancel() only erases the callback and the entry is skipped lazily.
  bool entry_live(EventId id) const { return callbacks_.count(id) != 0; }
  void drop_dead_heap_top() const;
  void drop_dead_due_front() const;

  mutable std::vector<Entry> heap_;  ///< max-heap under Later (min-time first)
  /// Staged same-tick batch, ascending (time, seq) from due_head_ on.
  mutable std::vector<Entry> due_;
  mutable std::size_t due_head_ = 0;
  std::unordered_map<EventId, Scheduled> callbacks_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  // Time of the last event handed out by pop(); pop() contracts that the
  // stream of popped times never regresses.
  Time last_popped_ = Time::zero();
};

}  // namespace imobif::sim
