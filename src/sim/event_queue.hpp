// Discrete-event queue: a binary heap of (time, sequence, callback) with
// O(log n) push/pop and lazy cancellation.
//
// Ties in time are broken by insertion sequence, so same-tick events run in
// the order they were scheduled — this determinism is what makes the
// packet-by-packet mobility protocol of the paper reproducible in tests.
//
// The heap is a std::vector managed with std::push_heap/pop_heap (not a
// std::priority_queue) so live events can be *enumerated* for
// checkpointing: pending_tagged() returns every live event's (time, seq,
// tag) in execution order without disturbing the queue.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/event_tag.hpp"
#include "sim/time.hpp"

namespace imobif::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `when`; returns a handle for cancel().
  /// The optional tag describes the event for checkpointing (event_tag.hpp).
  EventId schedule(Time when, Callback fn, EventTag tag = {});

  /// Cancels a pending event. Returns false when the event already ran,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; Time::infinity() when empty.
  Time next_time() const;

  struct Popped {
    Time when;
    Callback fn;
  };
  /// Removes and returns the earliest live event. Requires !empty().
  Popped pop();

  /// A live event's schedule entry, for checkpoint enumeration.
  struct PendingEvent {
    Time when;
    std::uint64_t seq = 0;
    const EventTag* tag = nullptr;  ///< owned by the queue; never null
  };
  /// Every live event in execution order (time, then insertion sequence).
  /// Tags point into the queue and are invalidated by any mutation.
  std::vector<PendingEvent> pending_tagged() const;

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  struct Scheduled {
    Callback fn;
    EventTag tag;
  };

  void drop_cancelled() const;

  mutable std::vector<Entry> heap_;  ///< max-heap under Later (min-time first)
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, Scheduled> callbacks_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  // Time of the last event handed out by pop(); pop() contracts that the
  // stream of popped times never regresses.
  Time last_popped_ = Time::zero();
};

}  // namespace imobif::sim
