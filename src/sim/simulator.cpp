#include "sim/simulator.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace imobif::sim {

EventId Simulator::at(Time when, EventQueue::Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::at: scheduling in the past");
  }
  return queue_.schedule(when, std::move(fn));
}

bool Simulator::step(Time until) {
  if (queue_.empty() || queue_.next_time() > until) return false;
  auto [when, fn] = queue_.pop();
  IMOBIF_ASSERT(when >= now_, "simulation clock must advance monotonically");
  now_ = when;
  ++executed_;
  if (event_budget_ != 0 && executed_ > event_budget_) {
    throw std::runtime_error("Simulator: event budget exceeded");
  }
  fn();
  return true;
}

std::size_t Simulator::run(Time until) {
  stopped_ = false;
  const std::size_t start = executed_;
  while (!stopped_ && step(until)) {
  }
  // When stopping on the time horizon, advance the clock to it so callers
  // observe a consistent "simulated until" time.
  if (until != Time::infinity() && now_ < until &&
      (queue_.empty() || queue_.next_time() > until)) {
    now_ = until;
  }
  return executed_ - start;
}

}  // namespace imobif::sim
