#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace imobif::sim {

EventId Simulator::at(Time when, EventQueue::Callback fn, EventTag tag) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::at: scheduling in the past");
  }
  return queue_.schedule(when, std::move(fn), std::move(tag));
}

bool Simulator::step(Time until) {
  if (queue_.empty() || queue_.next_time() > until) return false;
  auto [when, fn] = queue_.pop();
  IMOBIF_ASSERT(when >= now_, "simulation clock must advance monotonically");
  now_ = when;
  ++executed_;
  if (event_budget_ != 0 && executed_ > event_budget_) {
    throw std::runtime_error("Simulator: event budget exceeded");
  }
  fn();
  return true;
}

std::size_t Simulator::run(Time until, std::size_t max_events) {
  stopped_ = false;
  const std::size_t start = executed_;
  while (!stopped_ && (max_events == 0 || executed_ - start < max_events) &&
         step(until)) {
  }
  // When stopping on the time horizon, advance the clock to it so callers
  // observe a consistent "simulated until" time. An event-capped return
  // with due events still pending leaves the clock where it is (the
  // next_time() > until guard below).
  if (until != Time::infinity() && now_ < until &&
      (queue_.empty() || queue_.next_time() > until)) {
    now_ = until;
  }
  return executed_ - start;
}

void Simulator::restore_clock(Time now, std::size_t executed) {
  if (!queue_.empty() || executed_ != 0 || now_ != Time::zero()) {
    throw std::logic_error(
        "Simulator::restore_clock: simulator already in use");
  }
  now_ = now;
  executed_ = executed;
}

}  // namespace imobif::sim
