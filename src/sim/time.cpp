#include "sim/time.hpp"

#include <ostream>

namespace imobif::sim {

std::ostream& operator<<(std::ostream& os, Time t) {
  return os << t.seconds() << "s";
}

}  // namespace imobif::sim
