// Simulation time as an integer microsecond count.
//
// Integer ticks keep event ordering exact and runs bit-reproducible; doubles
// are converted only at the API edge (seconds in, seconds out).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

#include "util/check.hpp"

namespace imobif::sim {

class Time {
 public:
  static constexpr std::int64_t kTicksPerSecond = 1'000'000;

  constexpr Time() = default;

  static constexpr Time from_ticks(std::int64_t ticks) { return Time(ticks); }
  static Time from_seconds(double seconds) {
    IMOBIF_ENSURE(std::isfinite(seconds),
                  "non-finite seconds cannot convert to ticks");
    return Time(static_cast<std::int64_t>(
        std::llround(seconds * static_cast<double>(kTicksPerSecond))));
  }
  static constexpr Time zero() { return Time(0); }
  /// Sentinel later than any schedulable event.
  static constexpr Time infinity() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ticks() const { return ticks_; }
  constexpr double seconds() const {
    return static_cast<double>(ticks_) / static_cast<double>(kTicksPerSecond);
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time operator+(Time o) const { return Time(ticks_ + o.ticks_); }
  constexpr Time operator-(Time o) const { return Time(ticks_ - o.ticks_); }
  constexpr Time& operator+=(Time o) {
    ticks_ += o.ticks_;
    return *this;
  }

 private:
  constexpr explicit Time(std::int64_t ticks) : ticks_(ticks) {}
  std::int64_t ticks_ = 0;
};

std::ostream& operator<<(std::ostream& os, Time t);

}  // namespace imobif::sim
