// EventTag: a serializable description of a scheduled event.
//
// Pending events are type-erased callbacks, which a checkpoint cannot
// serialize. Every *domain* scheduling site therefore attaches a tag naming
// the event's kind and its identifying operands; restore() re-materializes
// the callback from the tag (src/snap/snapshot.cpp owns that mapping). The
// sim layer stays network-agnostic: kinds are a closed enum shared with the
// net layer by convention, and bulky payloads (an in-flight packet) ride in
// a std::any the tagging layer alone understands.
//
// Events scheduled without a tag (tests, ad-hoc callers) remain fully
// functional; they are merely rejected by the snapshot encoder, which
// refuses to checkpoint state it cannot reconstruct.
#pragma once

#include <any>
#include <cstdint>

namespace imobif::sim {

struct EventTag {
  enum class Kind : std::uint8_t {
    kUntagged = 0,
    kHelloTick = 1,     ///< a = node id
    kEmitPacket = 2,    ///< a = flow id
    kDeliver = 3,       ///< a = receiver node id; payload = the packet
    kNotifyRetry = 4,   ///< a = node id, b = flow id
    kFaultSet = 5,      ///< a = node id, b = 1 (crash) / 0 (resume)
    kMobTick = 6,       ///< background-motion tick (src/mob)
  };

  Kind kind = Kind::kUntagged;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  /// Kind-specific payload; kDeliver carries a
  /// std::shared_ptr<const net::Packet> (shared with the closure so the
  /// packet is stored once).
  std::any payload;

  bool tagged() const { return kind != Kind::kUntagged; }

  // Named constructors (the net layer's scheduling sites use these).
  static EventTag hello_tick(std::uint64_t node) {
    return EventTag{Kind::kHelloTick, node, 0, {}};
  }
  static EventTag emit_packet(std::uint64_t flow) {
    return EventTag{Kind::kEmitPacket, flow, 0, {}};
  }
  static EventTag deliver(std::uint64_t receiver, std::any packet) {
    return EventTag{Kind::kDeliver, receiver, 0, std::move(packet)};
  }
  static EventTag notify_retry(std::uint64_t node, std::uint64_t flow) {
    return EventTag{Kind::kNotifyRetry, node, flow, {}};
  }
  static EventTag fault_set(std::uint64_t node, bool on) {
    return EventTag{Kind::kFaultSet, node, on ? 1u : 0u, {}};
  }
  static EventTag mob_tick() { return EventTag{Kind::kMobTick, 0, 0, {}}; }
};

}  // namespace imobif::sim
