// 2-D vector / point arithmetic used throughout the simulator.
//
// Positions are in meters. Vec2 is a plain value type with no invariant
// (Core Guidelines C.2), so it is a struct with public members.
#pragma once

#include <cmath>
#include <iosfwd>

namespace imobif::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; sign gives orientation.
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  constexpr double norm_sq() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm_sq()); }

  /// Unit vector in the same direction; the zero vector maps to itself.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Euclidean distance between two points.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline constexpr double distance_sq(Vec2 a, Vec2 b) {
  return (a - b).norm_sq();
}

/// Point at parameter t on the segment a->b (t=0 -> a, t=1 -> b).
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

/// Midpoint of a and b — the min-total-energy relay target of Goldenberg
/// et al. adopted by the paper's Figure 3.
constexpr Vec2 midpoint(Vec2 a, Vec2 b) { return lerp(a, b, 0.5); }

/// True when a and b differ by at most eps in each coordinate.
inline bool almost_equal(Vec2 a, Vec2 b, double eps = 1e-9) {
  return std::fabs(a.x - b.x) <= eps && std::fabs(a.y - b.y) <= eps;
}

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace imobif::geom
