#include "geom/segment.hpp"

#include <algorithm>

namespace imobif::geom {

double Segment::project_clamped(Vec2 p) const {
  const Vec2 d = b - a;
  const double len_sq = d.norm_sq();
  // Exact zero only for a truly degenerate (a == b) segment.
  if (len_sq == 0.0) return 0.0;  // lint:allow(float-equality)
  const double t = (p - a).dot(d) / len_sq;
  return std::clamp(t, 0.0, 1.0);
}

Vec2 step_towards(Vec2 from, Vec2 to, double max_step) {
  if (max_step <= 0.0) return from;
  const double d = distance(from, to);
  if (d <= max_step) return to;
  return from + (to - from) * (max_step / d);
}

double max_offline_distance(const Segment& seg, const Vec2* points,
                            std::size_t count) {
  double worst = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    worst = std::max(worst, seg.distance_to(points[i]));
  }
  return worst;
}

double polyline_length(const Vec2* points, std::size_t count) {
  double length = 0.0;
  for (std::size_t i = 0; i + 1 < count; ++i) {
    length += distance(points[i], points[i + 1]);
  }
  return length;
}

double tortuosity(const Vec2* points, std::size_t count) {
  if (count < 2) return 1.0;
  const double direct = distance(points[0], points[count - 1]);
  if (direct <= 0.0) return 1.0;
  return polyline_length(points, count) / direct;
}

}  // namespace imobif::geom
