// Line-segment primitives: projection, distance to segment, clamped motion.
//
// These support the paper's optimality statements (all relays of a one-to-one
// flow end up *on the source-destination segment*) and the bounded-step mover
// (a node moves at most max_step meters toward its target per packet).
#pragma once

#include "geom/vec2.hpp"

namespace imobif::geom {

struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const { return distance(a, b); }

  /// Parameter t in [0,1] of the point on the segment closest to p.
  double project_clamped(Vec2 p) const;

  /// Point on the segment closest to p.
  Vec2 closest_point(Vec2 p) const { return lerp(a, b, project_clamped(p)); }

  /// Distance from p to the segment.
  double distance_to(Vec2 p) const { return distance(p, closest_point(p)); }
};

/// Move from `from` toward `to`, traveling at most `max_step` meters.
/// Returns `to` itself when it is within reach.
Vec2 step_towards(Vec2 from, Vec2 to, double max_step);

/// Maximum distance of any of the points to the segment — used by tests and
/// benches to verify the "relays converge onto the flow line" property.
double max_offline_distance(const Segment& seg, const Vec2* points,
                            std::size_t count);

/// Total length of the polyline through the given points (0 for fewer
/// than two points).
double polyline_length(const Vec2* points, std::size_t count);

/// Tortuosity of a path: polyline length / straight endpoint distance
/// (>= 1; exactly 1 for a straight path). Degenerate paths (coincident
/// endpoints or < 2 points) report 1. The min-energy strategy drives a
/// flow path's tortuosity toward 1 — the Fig-5 benches print it.
double tortuosity(const Vec2* points, std::size_t count);

}  // namespace imobif::geom
