#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace imobif::runtime {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = std::max<std::size_t>(1, workers);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  IMOBIF_ASSERT(!workers_.empty(), "pool must own at least one worker");
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    util::MutexLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) available_.wait(mutex_);
      // Graceful shutdown: drain the queue before exiting.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured by the packaged_task wrapper
  }
}

}  // namespace imobif::runtime
