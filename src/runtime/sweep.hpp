// SweepEngine: fans independent experiment jobs out across a ThreadPool
// with deterministic per-job RNG seeding, so a sweep's results are
// bit-identical regardless of worker count or completion order.
//
// Each job's instance is sampled from a seed derived statelessly from the
// sweep's base seed and the job's index (splitmix64), and results are
// collected back in submission order. `run_instance` builds a fully
// self-contained Network per call and the exp:: entry points share no
// mutable globals, so no simulator-core changes are needed for
// parallelism.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exp/experiments.hpp"
#include "exp/instance.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "runtime/checkpoint.hpp"
#include "util/units.hpp"

namespace imobif::runtime {

/// Stateless per-job seed: splitmix64 of (base_seed + job_index). Job i
/// gets the same seed no matter how many workers run the sweep or in what
/// order jobs complete.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index);

/// One unit of sweep work: sample an instance under `params` (from the
/// job's derived seed) and replay it under `mode`.
struct SweepJob {
  exp::ScenarioParams params;
  core::MobilityMode mode = core::MobilityMode::kInformed;
  exp::RunOptions options;
};

struct SweepOutcome {
  std::uint64_t seed = 0;  ///< derived seed the instance was sampled with
  util::Bits flow_bits{0.0};
  std::size_t hops = 0;
  exp::RunResult result;
};

class SweepEngine {
 public:
  /// `workers` == 1 runs jobs inline (no threads); > 1 uses a ThreadPool.
  explicit SweepEngine(std::size_t workers);

  std::size_t workers() const { return workers_; }

  /// Runs every job; outcome i corresponds to jobs[i] and was sampled from
  /// derive_seed(base_seed, i). With checkpointing enabled, job i persists
  /// under unit name "job-<i>" (see runtime/checkpoint.hpp); the outcomes
  /// are bit-identical to an uncheckpointed run.
  std::vector<SweepOutcome> run(const std::vector<SweepJob>& jobs,
                                std::uint64_t base_seed,
                                const CheckpointOptions& checkpoint = {}) const;

 private:
  std::size_t workers_;
};

/// Parallel equivalent of exp::run_comparison: same (params.seed,
/// flow_count) -> bit-identical ComparisonPoints for any worker count,
/// including the sequential implementation's fork chain. With
/// checkpointing enabled, instance i's three mode runs persist as units
/// "cmp-<i>-baseline" / "cmp-<i>-cost_unaware" / "cmp-<i>-informed".
std::vector<exp::ComparisonPoint> run_comparison_parallel(
    const exp::ScenarioParams& params, std::size_t flow_count,
    const exp::RunOptions& options = {}, std::size_t workers = 1,
    const CheckpointOptions& checkpoint = {});

/// Shard-level entry point for distributed sweeps: runs instances
/// [begin, end) of the same sweep run_comparison_parallel(params, N, ...)
/// would run, reproducing the fork chain so point i is bit-identical no
/// matter how the instance range is sharded across processes or machines.
/// Checkpoint unit names keep their absolute instance index ("cmp-<i>"),
/// so any worker sharing the checkpoint directory (and scope) resumes
/// exactly the files a dead worker left behind. `on_instance_done(i)` (may
/// be empty) fires after each instance completes, in order — the hook the
/// service worker uses to stream progress.
std::vector<exp::ComparisonPoint> run_comparison_shard(
    const exp::ScenarioParams& params, std::size_t begin, std::size_t end,
    const exp::RunOptions& options = {}, std::size_t workers = 1,
    const CheckpointOptions& checkpoint = {},
    const std::function<void(std::size_t)>& on_instance_done = {});

}  // namespace imobif::runtime
