#include "runtime/comparison_report.hpp"

#include <cstdint>

#include "net/packet.hpp"

namespace imobif::runtime {

void add_comparison_counters(SweepReport& report,
                             const std::vector<exp::ComparisonPoint>& points) {
  net::Medium::Counters medium;
  std::uint64_t notify_retries = 0;
  std::uint64_t notifications_applied = 0;
  const auto accumulate = [&](const exp::RunResult& run) {
    medium.broadcasts += run.medium.broadcasts;
    medium.unicasts += run.medium.unicasts;
    medium.delivered += run.medium.delivered;
    medium.dropped_out_of_range += run.medium.dropped_out_of_range;
    medium.dropped_dead += run.medium.dropped_dead;
    medium.dropped_unknown += run.medium.dropped_unknown;
    medium.dropped_injected += run.medium.dropped_injected;
    medium.dropped_faulted += run.medium.dropped_faulted;
    notify_retries += run.notify_retries;
    notifications_applied += run.notifications_applied;
  };
  for (const exp::ComparisonPoint& point : points) {
    accumulate(point.baseline);
    accumulate(point.cost_unaware);
    accumulate(point.informed);
  }
  report.set_counter("unicasts", medium.unicasts);
  report.set_counter("delivered", medium.delivered);
  report.set_counter("dropped_out_of_range", medium.dropped_out_of_range);
  report.set_counter("dropped_dead", medium.dropped_dead);
  report.set_counter("dropped_unknown", medium.dropped_unknown);
  report.set_counter("dropped_injected", medium.dropped_injected);
  report.set_counter("dropped_faulted", medium.dropped_faulted);
  report.set_counter("notify_retries", notify_retries);
  report.set_counter("notifications_applied", notifications_applied);
}

SweepReport make_comparison_report(
    const std::string& bench_name, const exp::ScenarioParams& params,
    const std::vector<exp::ComparisonPoint>& points) {
  SweepReport report(bench_name);
  report.set_meta("instances", static_cast<std::uint64_t>(points.size()));
  report.set_meta("seed", params.seed);
  report.set_meta("node_count", static_cast<std::uint64_t>(params.node_count));
  report.set_meta("strategy", net::to_string(params.strategy));

  std::vector<double> energy_cu, energy_in, lifetime_cu, lifetime_in;
  std::vector<double> flow_kb, notifications;
  energy_cu.reserve(points.size());
  energy_in.reserve(points.size());
  lifetime_cu.reserve(points.size());
  lifetime_in.reserve(points.size());
  flow_kb.reserve(points.size());
  notifications.reserve(points.size());
  for (const exp::ComparisonPoint& point : points) {
    energy_cu.push_back(point.energy_ratio_cost_unaware());
    energy_in.push_back(point.energy_ratio_informed());
    lifetime_cu.push_back(point.lifetime_ratio_cost_unaware());
    lifetime_in.push_back(point.lifetime_ratio_informed());
    flow_kb.push_back(point.flow_bits.value() / 8192.0);
    notifications.push_back(
        static_cast<double>(point.informed.notifications));
  }
  report.add_series("energy_ratio_cost_unaware", energy_cu);
  report.add_series("energy_ratio_informed", energy_in);
  report.add_series("lifetime_ratio_cost_unaware", lifetime_cu);
  report.add_series("lifetime_ratio_informed", lifetime_in);
  report.add_series("flow_kb", flow_kb);
  report.add_series("notifications_informed", notifications);
  add_comparison_counters(report, points);
  return report;
}

}  // namespace imobif::runtime
