#include "runtime/report.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/stats.hpp"

namespace imobif::runtime {

SweepReport::SweepReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void SweepReport::set_meta(const std::string& key, util::Json value) {
  meta_.set(key, std::move(value));
}

void SweepReport::set_counter(const std::string& key, std::uint64_t value) {
  counters_.set(key, value);
}

void SweepReport::add_series(const std::string& name,
                             const std::vector<double>& values,
                             bool include_values) {
  series_.push_back({name, values, include_values});
}

util::Json SweepReport::to_json() const {
  util::Json root = util::Json::object();
  root.set("bench", bench_name_);
  if (wall_ms_ >= 0.0) root.set("wall_ms", wall_ms_);
  if (!meta_.empty()) root.set("meta", meta_);
  // "counters" is always present (possibly empty): merge/diff tooling —
  // the sweep-service coordinator in particular — must never special-case
  // its absence.
  root.set("counters", counters_);

  util::Json series = util::Json::object();
  for (const SeriesEntry& entry : series_) {
    util::Summary summary;
    for (const double v : entry.values) summary.add(v);

    util::Json s = util::Json::object();
    s.set("count", static_cast<std::uint64_t>(summary.count()));
    s.set("mean", summary.mean());
    s.set("stddev", summary.stddev());
    s.set("min", summary.min());
    s.set("max", summary.max());
    if (!entry.values.empty()) {
      const util::Interval ci = util::bootstrap_mean_ci(entry.values);
      util::Json ci_json = util::Json::object();
      ci_json.set("lo", ci.lo);
      ci_json.set("hi", ci.hi);
      s.set("ci95", ci_json);
    }
    if (entry.include_values) {
      util::Json values = util::Json::array();
      for (const double v : entry.values) values.push_back(v);
      s.set("values", values);
    }
    series.set(entry.name, s);
  }
  root.set("series", series);
  return root;
}

void SweepReport::write_file(const std::string& path) const {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path());
  }
  std::ofstream out(target);
  if (!out) {
    throw std::runtime_error("SweepReport: cannot open " + path);
  }
  out << to_string();
  if (!out) {
    throw std::runtime_error("SweepReport: write failed for " + path);
  }
}

}  // namespace imobif::runtime
