// Crash-resumable sweep units (DESIGN.md §9).
//
// A checkpointed sweep maps every unit of work to two files in the
// checkpoint directory:
//
//   <unit>.result  — the finished unit's RunResult (snap codec); written
//                    atomically when the unit completes, after which its
//                    checkpoint is deleted.
//   <unit>.ckpt    — a periodic mid-flight snapshot (snap::Checkpointer),
//                    refreshed at chunk boundaries while the unit runs.
//
// Resuming (--resume) walks the same unit names: a .result short-circuits
// the unit entirely, a .ckpt restores the paused run and finishes it, and
// neither means the unit starts fresh. Because every unit is seeded
// statelessly from (base seed, index) and a restored run replays the exact
// event stream of the original, a killed-and-resumed sweep produces a
// byte-identical report (wall_ms aside) at any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "exp/instance_run.hpp"
#include "exp/runner.hpp"

namespace imobif::runtime {

struct CheckpointOptions {
  /// Directory for <unit>.result / <unit>.ckpt files; empty disables
  /// checkpointing entirely (the sweep takes its legacy in-memory path).
  std::string dir;

  /// Reuse files found in `dir` instead of recomputing their units.
  bool resume = false;

  /// Prefix prepended to every unit's file stem. A process that runs
  /// several sweeps against the same directory (bench panels, ablation
  /// variants) must give each sweep a distinct scope, or the second
  /// sweep's `cmp-0-baseline` resolves to the first sweep's files and a
  /// resume silently returns the wrong results. Must be deterministic
  /// across processes (e.g. a per-process sweep counter), never derived
  /// from time or randomness.
  std::string scope;

  /// Checkpoint cadence, forwarded to snap::CheckpointPolicy. Zero
  /// disables the respective trigger; with both zero, only .result files
  /// are written (checkpoint-on-completion only).
  double every_sim_s = 30.0;
  std::uint64_t every_delivered_packets = 0;

  bool enabled() const { return !dir.empty(); }
};

/// Runs one named unit under checkpoint control: short-circuits from
/// <unit>.result, resumes from <unit>.ckpt, or starts fresh via
/// `make_fresh`; periodically checkpoints while running; atomically writes
/// the result file and removes the stale checkpoint on completion.
/// Requires options.enabled().
exp::RunResult run_checkpointed_unit(
    const CheckpointOptions& options, const std::string& unit,
    const std::function<std::unique_ptr<exp::InstanceRun>()>& make_fresh);

/// Creates options.dir (and parents) if needed; call once per sweep
/// before fanning units out. No-op when checkpointing is disabled.
void prepare_checkpoint_dir(const CheckpointOptions& options);

}  // namespace imobif::runtime
