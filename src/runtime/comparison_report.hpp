// Canonical SweepReport for a comparison sweep (DESIGN.md §11).
//
// One function builds the report from the ordered ComparisonPoint list,
// and every path that claims to run "the same sweep" — the in-process
// reference run, the sweep-service coordinator merging unit results from
// remote workers — goes through it. Byte-identical reports then reduce to
// byte-identical points, which the sharded runtime guarantees.
//
// The report is fully deterministic: wall_ms is never set here (callers
// comparing artifacts across runs would have to exclude it anyway), and
// the "counters" block is always present so downstream merge/diff logic
// never special-cases its absence.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/experiments.hpp"
#include "exp/scenario.hpp"
#include "runtime/report.hpp"

namespace imobif::runtime {

/// Sums the medium drop counters and notification-reliability totals of
/// every mode run of every point into `report`'s "counters" block.
void add_comparison_counters(SweepReport& report,
                             const std::vector<exp::ComparisonPoint>& points);

/// Builds the canonical report: meta (instances, seed, node_count,
/// strategy), the energy/lifetime ratio series, per-instance flow sizes
/// and notification counts, and the aggregated counters.
SweepReport make_comparison_report(
    const std::string& bench_name, const exp::ScenarioParams& params,
    const std::vector<exp::ComparisonPoint>& points);

}  // namespace imobif::runtime
