// SweepReport: aggregates named per-instance series from a sweep into a
// machine-readable JSON artifact (BENCH_*.json). Each series carries
// count / mean / stddev / min / max and a 95% bootstrap confidence
// interval (util::Summary + util::bootstrap_mean_ci), plus the raw values
// so downstream tooling can recompute anything.
//
// Everything in the report is deterministic in the input series; the only
// non-deterministic field is the optional wall-clock time, which callers
// comparing artifacts across runs must exclude.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace imobif::runtime {

class SweepReport {
 public:
  explicit SweepReport(std::string bench_name);

  /// Attaches a scenario/config datum under "meta" (insertion-ordered).
  void set_meta(const std::string& key, util::Json value);

  /// Attaches an event counter under "counters" (insertion-ordered). The
  /// "counters" object is always emitted — empty when nothing was set —
  /// so report consumers never special-case its absence.
  void set_counter(const std::string& key, std::uint64_t value);

  /// Adds a result series. `include_values` false drops the raw values
  /// from the artifact (summary stats only), for very large sweeps.
  void add_series(const std::string& name, const std::vector<double>& values,
                  bool include_values = true);

  /// Wall-clock duration of the sweep. The ONE field excluded from
  /// determinism comparisons; unset (< 0) is omitted from the JSON.
  void set_wall_ms(double wall_ms) { wall_ms_ = wall_ms; }

  std::size_t series_count() const { return series_.size(); }

  util::Json to_json() const;
  std::string to_string() const { return to_json().dump(2) + "\n"; }

  /// Writes the pretty-printed JSON to `path`, creating parent
  /// directories as needed. Throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  struct SeriesEntry {
    std::string name;
    std::vector<double> values;
    bool include_values = true;
  };

  std::string bench_name_;
  util::Json meta_ = util::Json::object();
  util::Json counters_ = util::Json::object();
  std::vector<SeriesEntry> series_;
  double wall_ms_ = -1.0;
};

}  // namespace imobif::runtime
