#include "runtime/sweep.hpp"

#include <array>
#include <future>
#include <string>
#include <utility>

#include "runtime/thread_pool.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace imobif::runtime {

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  std::uint64_t state = base_seed + job_index;
  return util::splitmix64(state);
}

SweepEngine::SweepEngine(std::size_t workers)
    : workers_(workers == 0 ? 1 : workers) {
  IMOBIF_ASSERT(workers_ >= 1, "sweep engine needs at least one worker");
}

namespace {

/// One mode replay of a sampled instance, routed through the checkpoint
/// layer when enabled; otherwise the legacy direct path.
exp::RunResult run_one_mode(const exp::FlowInstance& instance,
                            const exp::ScenarioParams& params,
                            core::MobilityMode mode,
                            const exp::RunOptions& options,
                            const std::array<std::uint64_t, 4>& sampler_state,
                            const CheckpointOptions& checkpoint,
                            const std::string& unit) {
  if (!checkpoint.enabled()) {
    return exp::run_instance(instance, params, mode, options);
  }
  return run_checkpointed_unit(checkpoint, unit, [&] {
    auto run = exp::InstanceRun::create(instance, params, mode, options);
    run->set_sampler_rng_state(sampler_state);
    return run;
  });
}

SweepOutcome run_sweep_job(const SweepJob& job, std::uint64_t seed,
                           const CheckpointOptions& checkpoint,
                           const std::string& unit) {
  util::Rng rng(seed);
  const exp::FlowInstance instance = exp::sample_instance(job.params, rng);
  SweepOutcome outcome;
  outcome.seed = seed;
  outcome.flow_bits = instance.flow_bits;
  outcome.hops = instance.initial_path.size() - 1;
  outcome.result = run_one_mode(instance, job.params, job.mode, job.options,
                                rng.state(), checkpoint, unit);
  return outcome;
}

exp::ComparisonPoint run_comparison_point(const exp::ScenarioParams& params,
                                          const exp::RunOptions& options,
                                          util::Rng rng,
                                          const CheckpointOptions& checkpoint,
                                          const std::string& unit_prefix) {
  const exp::FlowInstance instance = exp::sample_instance(params, rng);
  exp::ComparisonPoint point;
  point.flow_bits = instance.flow_bits;
  point.hops = instance.initial_path.size() - 1;
  point.baseline =
      run_one_mode(instance, params, core::MobilityMode::kNoMobility, options,
                   rng.state(), checkpoint, unit_prefix + "-baseline");
  point.cost_unaware =
      run_one_mode(instance, params, core::MobilityMode::kCostUnaware, options,
                   rng.state(), checkpoint, unit_prefix + "-cost_unaware");
  point.informed =
      run_one_mode(instance, params, core::MobilityMode::kInformed, options,
                   rng.state(), checkpoint, unit_prefix + "-informed");
  return point;
}

std::string job_unit(std::size_t index) {
  return "job-" + std::to_string(index);
}

}  // namespace

std::vector<SweepOutcome> SweepEngine::run(
    const std::vector<SweepJob>& jobs, std::uint64_t base_seed,
    const CheckpointOptions& checkpoint) const {
  for (const SweepJob& job : jobs) job.params.validate();
  prepare_checkpoint_dir(checkpoint);

  std::vector<SweepOutcome> outcomes(jobs.size());
  if (workers_ <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      outcomes[i] = run_sweep_job(jobs[i], derive_seed(base_seed, i),
                                  checkpoint, job_unit(i));
    }
    return outcomes;
  }

  ThreadPool pool(workers_);
  std::vector<std::future<SweepOutcome>> futures;
  futures.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::uint64_t seed = derive_seed(base_seed, i);
    futures.push_back(pool.submit([&job = jobs[i], seed, &checkpoint, i] {
      return run_sweep_job(job, seed, checkpoint, job_unit(i));
    }));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    outcomes[i] = futures[i].get();  // ordered collection
    // Reproducibility contract: the seed a job ran with must be a pure
    // function of (base_seed, job index) — never of scheduling, worker
    // count, or completion order.
    IMOBIF_ASSERT(outcomes[i].seed == derive_seed(base_seed, i),
                  "sweep outcome seed depends on something other than "
                  "base seed and job index");
  }
  return outcomes;
}

std::vector<exp::ComparisonPoint> run_comparison_shard(
    const exp::ScenarioParams& params, std::size_t begin, std::size_t end,
    const exp::RunOptions& options, std::size_t workers,
    const CheckpointOptions& checkpoint,
    const std::function<void(std::size_t)>& on_instance_done) {
  IMOBIF_ASSERT(begin <= end, "shard range is inverted");
  params.validate();
  prepare_checkpoint_dir(checkpoint);

  // Replay the full-sweep fork chain up to `end`: instance i's generator
  // is the i-th fork of Rng(params.seed) regardless of which shard runs
  // it, which is the whole determinism argument for sharding.
  util::Rng root(params.seed);
  std::vector<util::Rng> instance_rngs;
  instance_rngs.reserve(end - begin);
  for (std::size_t i = 0; i < end; ++i) {
    util::Rng forked = root.fork();
    if (i >= begin) instance_rngs.push_back(forked);
  }

  const std::size_t count = end - begin;
  std::vector<exp::ComparisonPoint> points(count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      points[i] =
          run_comparison_point(params, options, instance_rngs[i], checkpoint,
                               "cmp-" + std::to_string(begin + i));
      if (on_instance_done) on_instance_done(begin + i);
    }
    return points;
  }

  ThreadPool pool(workers);
  std::vector<std::future<exp::ComparisonPoint>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit(
        [&params, &options, rng = instance_rngs[i], &checkpoint, begin, i] {
          return run_comparison_point(params, options, rng, checkpoint,
                                      "cmp-" + std::to_string(begin + i));
        }));
  }
  for (std::size_t i = 0; i < count; ++i) {
    points[i] = futures[i].get();  // ordered collection
    if (on_instance_done) on_instance_done(begin + i);
  }
  return points;
}

std::vector<exp::ComparisonPoint> run_comparison_parallel(
    const exp::ScenarioParams& params, std::size_t flow_count,
    const exp::RunOptions& options, std::size_t workers,
    const CheckpointOptions& checkpoint) {
  params.validate();
  prepare_checkpoint_dir(checkpoint);

  // Reproduce the sequential fork chain exactly: instance i's generator is
  // the i-th fork of Rng(params.seed), drawn here in order on one thread.
  util::Rng root(params.seed);
  std::vector<util::Rng> instance_rngs;
  instance_rngs.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    instance_rngs.push_back(root.fork());
  }

  std::vector<exp::ComparisonPoint> points(flow_count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < flow_count; ++i) {
      points[i] = run_comparison_point(params, options, instance_rngs[i],
                                       checkpoint, "cmp-" + std::to_string(i));
    }
    return points;
  }

  ThreadPool pool(workers);
  std::vector<std::future<exp::ComparisonPoint>> futures;
  futures.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    futures.push_back(pool.submit(
        [&params, &options, rng = instance_rngs[i], &checkpoint, i] {
          return run_comparison_point(params, options, rng, checkpoint,
                                      "cmp-" + std::to_string(i));
        }));
  }
  for (std::size_t i = 0; i < flow_count; ++i) {
    points[i] = futures[i].get();
  }
  return points;
}

}  // namespace imobif::runtime
