// Fixed-size worker pool with a lock-guarded task queue and futures-based
// results. This is the execution substrate for the sweep engine: bench
// sweeps submit independent jobs and collect ordered futures, so results
// never depend on scheduling.
//
// Shutdown is graceful: the destructor (or an explicit shutdown()) lets
// every already-queued task finish before joining the workers. Exceptions
// thrown by a task are captured in its future and rethrown at get().
//
// The locking discipline is machine-checked: `mutex_` is an annotated
// capability and `queue_`/`stopping_` carry IMOBIF_GUARDED_BY, so a clang
// build with IMOBIF_THREAD_SAFETY=ON rejects any access outside the lock
// at compile time (DESIGN.md §13).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.hpp"

namespace imobif::runtime {

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to at least 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Throws
  /// std::runtime_error after shutdown() has begun.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      util::MutexLock lock(mutex_);
      if (stopping_)
        throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.push([task] { (*task)(); });
    }
    available_.notify_one();
    return future;
  }

  /// Drains the queue, then joins every worker. Idempotent; further
  /// submits throw.
  void shutdown();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  util::CondVar available_;
  std::queue<std::function<void()>> queue_ IMOBIF_GUARDED_BY(mutex_);
  bool stopping_ IMOBIF_GUARDED_BY(mutex_) = false;
};

}  // namespace imobif::runtime
