#include "runtime/checkpoint.hpp"

#include <filesystem>
#include <stdexcept>

#include "snap/checkpointer.hpp"
#include "snap/result_io.hpp"
#include "snap/snapshot.hpp"

namespace imobif::runtime {

void prepare_checkpoint_dir(const CheckpointOptions& options) {
  if (!options.enabled()) return;
  std::filesystem::create_directories(options.dir);
}

exp::RunResult run_checkpointed_unit(
    const CheckpointOptions& options, const std::string& unit,
    const std::function<std::unique_ptr<exp::InstanceRun>()>& make_fresh) {
  if (!options.enabled()) {
    throw std::invalid_argument(
        "run_checkpointed_unit: checkpointing is disabled (empty dir)");
  }
  const std::filesystem::path dir(options.dir);
  const std::string stem = options.scope + unit;
  const std::string result_path = (dir / (stem + ".result")).string();
  const std::string ckpt_path = (dir / (stem + ".ckpt")).string();

  if (options.resume && std::filesystem::exists(result_path)) {
    return snap::load_result(result_path);
  }

  std::unique_ptr<exp::InstanceRun> run;
  if (options.resume && std::filesystem::exists(ckpt_path)) {
    run = snap::restore_file(ckpt_path);
  } else {
    run = make_fresh();
  }

  snap::CheckpointPolicy policy;
  policy.every_sim_s = options.every_sim_s;
  policy.every_delivered_packets = options.every_delivered_packets;
  snap::Checkpointer checkpointer(ckpt_path, policy);
  checkpointer.install(*run);
  run->advance();

  const exp::RunResult result = run->result();
  snap::save_result(result_path, result);
  // The .result supersedes the mid-flight snapshot; a best-effort removal
  // keeps the directory to one file per finished unit.
  std::error_code ec;
  std::filesystem::remove(ckpt_path, ec);
  return result;
}

}  // namespace imobif::runtime
