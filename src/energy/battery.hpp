// Battery: residual-energy bookkeeping for a node.
//
// Tracks draws by category (transmission / movement / other) so experiments
// can report the Fig-6(b) decomposition directly. A node dies when its
// residual reaches zero; draws are clamped at zero and the shortfall
// reported, matching the "node can measure its residual energy" assumption.
//
// All quantities are strongly typed util::Joules; raw doubles enter only at
// the I/O boundary (snapshot codec, scenario parsing).
#pragma once

#include <functional>

#include "util/units.hpp"

namespace imobif::energy {

enum class DrawKind { kTransmit, kMove, kOther };

class Battery {
 public:
  explicit Battery(util::Joules initial);

  util::Joules residual() const { return res(); }
  util::Joules initial() const { return initial_; }
  bool depleted() const { return res() <= util::Joules{0.0}; }

  /// Redirects residual-energy storage into an external cell (the
  /// net::NodeStore struct-of-arrays column, DESIGN.md §12). The current
  /// residual is copied into `*cell`; all subsequent reads and writes go
  /// through it. The cell must outlive the battery and stay
  /// address-stable; pass nullptr to fall back to inline storage.
  void bind_residual_cell(util::Joules* cell) {
    if (cell != nullptr) *cell = res();
    cell_ = cell;
  }

  /// Draws up to `amount`; returns the energy actually drawn (less than
  /// requested only when the battery empties).
  util::Joules draw(util::Joules amount, DrawKind kind);

  /// True when the battery currently holds at least `amount`.
  bool can_afford(util::Joules amount) const { return res() >= amount; }

  util::Joules consumed_total() const { return initial_ - res(); }
  util::Joules consumed_transmit() const { return consumed_transmit_; }
  util::Joules consumed_move() const { return consumed_move_; }
  util::Joules consumed_other() const { return consumed_other_; }

  /// Invoked exactly once, at the transition to depleted.
  void set_depletion_callback(std::function<void()> cb) {
    on_depleted_ = std::move(cb);
  }

  /// Experiment support: reset to a new initial charge (keeps callback).
  void recharge(util::Joules initial);

  /// Checkpoint restore: overwrite the full accounting state (keeps the
  /// callback, never re-fires it — a battery restored as depleted already
  /// announced its death before the snapshot was taken).
  void restore(util::Joules initial, util::Joules residual,
               util::Joules consumed_tx, util::Joules consumed_move,
               util::Joules consumed_other);

 private:
  /// Residual storage: the bound external cell when present, the inline
  /// member otherwise. Copying a battery copies the binding, so bound
  /// batteries should not be copied (Node never does).
  util::Joules& res() { return cell_ != nullptr ? *cell_ : residual_; }
  const util::Joules& res() const {
    return cell_ != nullptr ? *cell_ : residual_;
  }

  util::Joules initial_;
  util::Joules residual_;
  util::Joules consumed_transmit_;
  util::Joules consumed_move_;
  util::Joules consumed_other_;
  // snap:derived(bind_residual_cell)
  util::Joules* cell_ = nullptr;
  // snap:transient(depletion callback wired by the owning node at attach time)
  std::function<void()> on_depleted_;
};

}  // namespace imobif::energy
