// Battery: residual-energy bookkeeping for a node.
//
// Tracks draws by category (transmission / movement / other) so experiments
// can report the Fig-6(b) decomposition directly. A node dies when its
// residual reaches zero; draws are clamped at zero and the shortfall
// reported, matching the "node can measure its residual energy" assumption.
#pragma once

#include <functional>

namespace imobif::energy {

enum class DrawKind { kTransmit, kMove, kOther };

class Battery {
 public:
  explicit Battery(double initial_j);

  double residual() const { return residual_; }
  double initial() const { return initial_; }
  bool depleted() const { return residual_ <= 0.0; }

  /// Draws up to `amount_j`; returns the energy actually drawn (less than
  /// requested only when the battery empties).
  double draw(double amount_j, DrawKind kind);

  /// True when the battery currently holds at least `amount_j`.
  bool can_afford(double amount_j) const { return residual_ >= amount_j; }

  double consumed_total() const { return initial_ - residual_; }
  double consumed_transmit() const { return consumed_tx_; }
  double consumed_move() const { return consumed_move_; }
  double consumed_other() const { return consumed_other_; }

  /// Invoked exactly once, at the transition to depleted.
  void set_depletion_callback(std::function<void()> cb) {
    on_depleted_ = std::move(cb);
  }

  /// Experiment support: reset to a new initial charge (keeps callback).
  void recharge(double initial_j);

  /// Checkpoint restore: overwrite the full accounting state (keeps the
  /// callback, never re-fires it — a battery restored as depleted already
  /// announced its death before the snapshot was taken).
  void restore(double initial_j, double residual_j, double consumed_tx_j,
               double consumed_move_j, double consumed_other_j);

 private:
  double initial_;
  double residual_;
  double consumed_tx_ = 0.0;
  double consumed_move_ = 0.0;
  double consumed_other_ = 0.0;
  std::function<void()> on_depleted_;
};

}  // namespace imobif::energy
