#include "energy/battery.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace imobif::energy {

Battery::Battery(double initial_j) : initial_(initial_j), residual_(initial_j) {
  IMOBIF_ENSURE(std::isfinite(initial_j), "battery charge must be finite");
  if (initial_j < 0.0) {
    throw std::invalid_argument("Battery: negative initial energy");
  }
}

double Battery::draw(double amount_j, DrawKind kind) {
  IMOBIF_ENSURE(std::isfinite(amount_j), "battery draw must be finite");
  if (amount_j < 0.0) throw std::invalid_argument("Battery: negative draw");
  const bool was_alive = residual_ > 0.0;
  const double drawn = std::min(amount_j, residual_);
  residual_ -= drawn;
  IMOBIF_ASSERT(residual_ >= 0.0, "battery residual can never go negative");
  switch (kind) {
    case DrawKind::kTransmit:
      consumed_tx_ += drawn;
      break;
    case DrawKind::kMove:
      consumed_move_ += drawn;
      break;
    case DrawKind::kOther:
      consumed_other_ += drawn;
      break;
  }
  if (was_alive && residual_ <= 0.0 && on_depleted_) on_depleted_();
  return drawn;
}

void Battery::restore(double initial_j, double residual_j,
                      double consumed_tx_j, double consumed_move_j,
                      double consumed_other_j) {
  IMOBIF_ENSURE(std::isfinite(initial_j) && std::isfinite(residual_j),
                "battery restore values must be finite");
  if (initial_j < 0.0 || residual_j < 0.0 || residual_j > initial_j) {
    throw std::invalid_argument("Battery: inconsistent restore state");
  }
  initial_ = initial_j;
  residual_ = residual_j;
  consumed_tx_ = consumed_tx_j;
  consumed_move_ = consumed_move_j;
  consumed_other_ = consumed_other_j;
}

void Battery::recharge(double initial_j) {
  IMOBIF_ENSURE(std::isfinite(initial_j), "battery charge must be finite");
  if (initial_j < 0.0) {
    throw std::invalid_argument("Battery: negative recharge");
  }
  initial_ = initial_j;
  residual_ = initial_j;
  consumed_tx_ = consumed_move_ = consumed_other_ = 0.0;
}

}  // namespace imobif::energy
