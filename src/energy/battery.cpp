#include "energy/battery.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace imobif::energy {

using util::Joules;

Battery::Battery(Joules initial) : initial_(initial), residual_(initial) {
  IMOBIF_ENSURE(util::isfinite(initial), "battery charge must be finite");
  if (initial < Joules{0.0}) {
    throw std::invalid_argument("Battery: negative initial energy");
  }
}

Joules Battery::draw(Joules amount, DrawKind kind) {
  IMOBIF_ENSURE(util::isfinite(amount), "battery draw must be finite");
  if (amount < Joules{0.0}) {
    throw std::invalid_argument("Battery: negative draw");
  }
  Joules& residual = res();
  const bool was_alive = residual > Joules{0.0};
  const Joules drawn = util::min(amount, residual);
  residual -= drawn;
  IMOBIF_ASSERT(residual >= Joules{0.0},
                "battery residual can never go negative");
  switch (kind) {
    case DrawKind::kTransmit:
      consumed_transmit_ += drawn;
      break;
    case DrawKind::kMove:
      consumed_move_ += drawn;
      break;
    case DrawKind::kOther:
      consumed_other_ += drawn;
      break;
  }
  if (was_alive && residual <= Joules{0.0} && on_depleted_) on_depleted_();
  return drawn;
}

void Battery::restore(Joules initial, Joules residual, Joules consumed_tx,
                      Joules consumed_move, Joules consumed_other) {
  IMOBIF_ENSURE(util::isfinite(initial) && util::isfinite(residual),
                "battery restore values must be finite");
  if (initial < Joules{0.0} || residual < Joules{0.0} || residual > initial) {
    throw std::invalid_argument("Battery: inconsistent restore state");
  }
  initial_ = initial;
  res() = residual;
  consumed_transmit_ = consumed_tx;
  consumed_move_ = consumed_move;
  consumed_other_ = consumed_other;
}

void Battery::recharge(Joules initial) {
  IMOBIF_ENSURE(util::isfinite(initial), "battery charge must be finite");
  if (initial < Joules{0.0}) {
    throw std::invalid_argument("Battery: negative recharge");
  }
  initial_ = initial;
  res() = initial;
  consumed_transmit_ = consumed_move_ = consumed_other_ = Joules{0.0};
}

}  // namespace imobif::energy
