#include "energy/power_distance_table.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace imobif::energy {

using util::JoulesPerBit;
using util::Meters;

PowerDistanceTable::PowerDistanceTable(Meters bin_width, Meters max_distance)
    : bin_width_(bin_width), max_distance_(max_distance) {
  if (bin_width <= Meters{0.0} || max_distance <= bin_width) {
    throw std::invalid_argument("PowerDistanceTable: bad bin configuration");
  }
  bins_.resize(static_cast<std::size_t>(std::ceil(max_distance / bin_width)),
               std::nullopt);
}

std::size_t PowerDistanceTable::bin_of(Meters distance) const {
  const auto bin = static_cast<std::size_t>(distance / bin_width_);
  return std::min(bin, bins_.size() - 1);
}

void PowerDistanceTable::observe(Meters distance, JoulesPerBit power) {
  if (distance < Meters{0.0} || power < JoulesPerBit{0.0}) {
    throw std::invalid_argument("PowerDistanceTable: negative observation");
  }
  auto& cell = bins_[bin_of(distance)];
  if (!cell || power < *cell) cell = power;
}

void PowerDistanceTable::seed_from_model(const RadioEnergyModel& model) {
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    // Use the far edge of the bin so the seeded value is always sufficient
    // for any distance that maps into the bin.
    const Meters far_edge = bin_width_ * static_cast<double>(i + 1);
    const JoulesPerBit p =
        model.power_per_bit(util::min(far_edge, max_distance_));
    if (!bins_[i] || p < *bins_[i]) bins_[i] = p;
  }
}

std::optional<JoulesPerBit> PowerDistanceTable::min_power(
    Meters distance) const {
  if (distance < Meters{0.0}) return std::nullopt;
  if (distance > max_distance_) return std::nullopt;
  // The first populated bin at or beyond the query distance gives a power
  // known to cover it (bins record successes at distances >= their floor;
  // a success in a farther bin is conservative for a nearer query).
  for (std::size_t i = bin_of(distance); i < bins_.size(); ++i) {
    if (bins_[i]) return bins_[i];
  }
  return std::nullopt;
}

std::size_t PowerDistanceTable::populated_bins() const {
  return static_cast<std::size_t>(
      std::count_if(bins_.begin(), bins_.end(),
                    [](const auto& b) { return b.has_value(); }));
}

}  // namespace imobif::energy
