#include "energy/mobility_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace imobif::energy {

void MobilityParams::validate() const {
  if (k < 0.0) throw std::invalid_argument("MobilityParams: k must be >= 0");
  if (max_step_m <= 0.0) {
    throw std::invalid_argument("MobilityParams: max_step_m must be > 0");
  }
}

MobilityEnergyModel::MobilityEnergyModel(MobilityParams params)
    : params_(params) {
  params_.validate();
}

double MobilityEnergyModel::move_energy(double distance_m) const {
  IMOBIF_ENSURE(std::isfinite(distance_m), "move distance must be finite");
  if (distance_m < 0.0) {
    throw std::invalid_argument("move_energy: negative distance");
  }
  const double energy = params_.k * distance_m;
  IMOBIF_ASSERT(std::isfinite(energy), "move energy overflowed to non-finite");
  return energy;
}

double MobilityEnergyModel::range_for_energy(double energy_j) const {
  // Exact sentinel: k is a configured constant, not a computed quantity.
  if (energy_j <= 0.0 || params_.k == 0.0) {  // lint:allow(float-equality)
    return energy_j <= 0.0 ? 0.0
                           : std::numeric_limits<double>::infinity();
  }
  return energy_j / params_.k;
}

}  // namespace imobif::energy
