#include "energy/mobility_model.hpp"

#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace imobif::energy {

using util::Joules;
using util::Meters;

void MobilityParams::validate() const {
  if (k < 0.0) throw std::invalid_argument("MobilityParams: k must be >= 0");
  if (max_step_m <= 0.0) {
    throw std::invalid_argument("MobilityParams: max_step_m must be > 0");
  }
}

MobilityEnergyModel::MobilityEnergyModel(MobilityParams params)
    : params_(params) {
  params_.validate();
}

Joules MobilityEnergyModel::move_energy(Meters distance) const {
  IMOBIF_ENSURE(util::isfinite(distance), "move distance must be finite");
  if (distance < Meters{0.0}) {
    throw std::invalid_argument("move_energy: negative distance");
  }
  const Joules energy{params_.k * distance.value()};
  IMOBIF_ASSERT(util::isfinite(energy), "move energy overflowed to non-finite");
  return energy;
}

Meters MobilityEnergyModel::range_for_energy(Joules energy) const {
  // Exact sentinel: k is a configured constant, not a computed quantity.
  if (energy <= Joules{0.0} || params_.k == 0.0) {  // lint:allow(float-equality)
    return energy <= Joules{0.0}
               ? Meters{0.0}
               : Meters{std::numeric_limits<double>::infinity()};
  }
  return Meters{energy.value() / params_.k};
}

}  // namespace imobif::energy
