#include "energy/mobility_model.hpp"

#include <limits>
#include <stdexcept>

namespace imobif::energy {

void MobilityParams::validate() const {
  if (k < 0.0) throw std::invalid_argument("MobilityParams: k must be >= 0");
  if (max_step_m <= 0.0) {
    throw std::invalid_argument("MobilityParams: max_step_m must be > 0");
  }
}

MobilityEnergyModel::MobilityEnergyModel(MobilityParams params)
    : params_(params) {
  params_.validate();
}

double MobilityEnergyModel::move_energy(double distance_m) const {
  if (distance_m < 0.0) {
    throw std::invalid_argument("move_energy: negative distance");
  }
  return params_.k * distance_m;
}

double MobilityEnergyModel::range_for_energy(double energy_j) const {
  if (energy_j <= 0.0 || params_.k == 0.0) {
    return energy_j <= 0.0 ? 0.0
                           : std::numeric_limits<double>::infinity();
  }
  return energy_j / params_.k;
}

}  // namespace imobif::energy
