#include "energy/radio_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace imobif::energy {

using util::Bits;
using util::Joules;
using util::JoulesPerBit;
using util::Meters;

void RadioParams::validate() const {
  if (a < 0.0) throw std::invalid_argument("RadioParams: a must be >= 0");
  if (b <= 0.0) throw std::invalid_argument("RadioParams: b must be > 0");
  if (alpha < 1.0) {
    throw std::invalid_argument("RadioParams: alpha must be >= 1");
  }
  if (rx_per_bit < 0.0) {
    throw std::invalid_argument("RadioParams: rx_per_bit must be >= 0");
  }
}

RadioEnergyModel::RadioEnergyModel(RadioParams params) : params_(params) {
  params_.validate();
}

JoulesPerBit RadioEnergyModel::power_per_bit(Meters distance) const {
  IMOBIF_ENSURE(util::isfinite(distance), "radio distance must be finite");
  if (distance < Meters{0.0}) {
    throw std::invalid_argument("power_per_bit: negative distance");
  }
  // Raw-double interior: b's unit depends on the runtime alpha (see header).
  const JoulesPerBit cost{params_.a +
                          params_.b * std::pow(distance.value(), params_.alpha)};
  IMOBIF_ASSERT(util::isfinite(cost),
                "per-bit transmission cost overflowed to non-finite");
  return cost;
}

Joules RadioEnergyModel::transmit_energy(Meters distance, Bits bits) const {
  if (bits < Bits{0.0}) {
    throw std::invalid_argument("transmit_energy: negative bits");
  }
  const Joules energy = bits * power_per_bit(distance);
  IMOBIF_ASSERT(util::isfinite(energy),
                "transmit energy overflowed to non-finite");
  return energy;
}

Bits RadioEnergyModel::sustainable_bits(Meters distance, Joules energy) const {
  if (energy <= Joules{0.0}) return Bits{0.0};
  return energy / power_per_bit(distance);
}

Joules RadioEnergyModel::receive_energy(Bits bits) const {
  if (bits < Bits{0.0}) {
    throw std::invalid_argument("receive_energy: negative bits");
  }
  const Joules energy = bits * JoulesPerBit{params_.rx_per_bit};
  IMOBIF_ASSERT(util::isfinite(energy),
                "receive energy overflowed to non-finite");
  return energy;
}

Meters RadioEnergyModel::range_for_power(JoulesPerBit power) const {
  if (power.value() <= params_.a) return Meters{0.0};
  return Meters{std::pow((power.value() - params_.a) / params_.b,
                         1.0 / params_.alpha)};
}

}  // namespace imobif::energy
