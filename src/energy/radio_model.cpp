#include "energy/radio_model.hpp"

#include <cmath>
#include <stdexcept>

namespace imobif::energy {

void RadioParams::validate() const {
  if (a < 0.0) throw std::invalid_argument("RadioParams: a must be >= 0");
  if (b <= 0.0) throw std::invalid_argument("RadioParams: b must be > 0");
  if (alpha < 1.0) {
    throw std::invalid_argument("RadioParams: alpha must be >= 1");
  }
  if (rx_per_bit < 0.0) {
    throw std::invalid_argument("RadioParams: rx_per_bit must be >= 0");
  }
}

RadioEnergyModel::RadioEnergyModel(RadioParams params) : params_(params) {
  params_.validate();
}

double RadioEnergyModel::power_per_bit(double distance_m) const {
  if (distance_m < 0.0) {
    throw std::invalid_argument("power_per_bit: negative distance");
  }
  return params_.a + params_.b * std::pow(distance_m, params_.alpha);
}

double RadioEnergyModel::transmit_energy(double distance_m,
                                         double bits) const {
  if (bits < 0.0) {
    throw std::invalid_argument("transmit_energy: negative bits");
  }
  return bits * power_per_bit(distance_m);
}

double RadioEnergyModel::sustainable_bits(double distance_m,
                                          double energy_j) const {
  if (energy_j <= 0.0) return 0.0;
  return energy_j / power_per_bit(distance_m);
}

double RadioEnergyModel::receive_energy(double bits) const {
  if (bits < 0.0) {
    throw std::invalid_argument("receive_energy: negative bits");
  }
  return bits * params_.rx_per_bit;
}

double RadioEnergyModel::range_for_power(double power_per_bit_j) const {
  if (power_per_bit_j <= params_.a) return 0.0;
  return std::pow((power_per_bit_j - params_.a) / params_.b,
                  1.0 / params_.alpha);
}

}  // namespace imobif::energy
