#include "energy/radio_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace imobif::energy {

void RadioParams::validate() const {
  if (a < 0.0) throw std::invalid_argument("RadioParams: a must be >= 0");
  if (b <= 0.0) throw std::invalid_argument("RadioParams: b must be > 0");
  if (alpha < 1.0) {
    throw std::invalid_argument("RadioParams: alpha must be >= 1");
  }
  if (rx_per_bit < 0.0) {
    throw std::invalid_argument("RadioParams: rx_per_bit must be >= 0");
  }
}

RadioEnergyModel::RadioEnergyModel(RadioParams params) : params_(params) {
  params_.validate();
}

double RadioEnergyModel::power_per_bit(double distance_m) const {
  IMOBIF_ENSURE(std::isfinite(distance_m), "radio distance must be finite");
  if (distance_m < 0.0) {
    throw std::invalid_argument("power_per_bit: negative distance");
  }
  const double cost = params_.a + params_.b * std::pow(distance_m, params_.alpha);
  IMOBIF_ASSERT(std::isfinite(cost),
                "per-bit transmission cost overflowed to non-finite");
  return cost;
}

double RadioEnergyModel::transmit_energy(double distance_m,
                                         double bits) const {
  if (bits < 0.0) {
    throw std::invalid_argument("transmit_energy: negative bits");
  }
  const double energy = bits * power_per_bit(distance_m);
  IMOBIF_ASSERT(std::isfinite(energy),
                "transmit energy overflowed to non-finite");
  return energy;
}

double RadioEnergyModel::sustainable_bits(double distance_m,
                                          double energy_j) const {
  if (energy_j <= 0.0) return 0.0;
  return energy_j / power_per_bit(distance_m);
}

double RadioEnergyModel::receive_energy(double bits) const {
  if (bits < 0.0) {
    throw std::invalid_argument("receive_energy: negative bits");
  }
  const double energy = bits * params_.rx_per_bit;
  IMOBIF_ASSERT(std::isfinite(energy),
                "receive energy overflowed to non-finite");
  return energy;
}

double RadioEnergyModel::range_for_power(double power_per_bit_j) const {
  if (power_per_bit_j <= params_.a) return 0.0;
  return std::pow((power_per_bit_j - params_.a) / params_.b,
                  1.0 / params_.alpha);
}

}  // namespace imobif::energy
