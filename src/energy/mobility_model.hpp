// Mobility cost model of the paper (Section 4): E_M(d) = k * d.
//
// k [J/m] captures terrain and node mass; the evaluation sweeps
// k in {0.1, 0.5, 1.0}. The model also enforces the per-step distance cap
// ("the maximum distance traveled is set to ... in each step").
#pragma once

namespace imobif::energy {

struct MobilityParams {
  double k = 0.5;          ///< J/m, movement cost per meter
  double max_step_m = 1.0; ///< maximum travel distance per mobility step

  void validate() const;
};

class MobilityEnergyModel {
 public:
  explicit MobilityEnergyModel(MobilityParams params);

  const MobilityParams& params() const { return params_; }

  /// E_M(d): energy to move `distance_m` meters.
  double move_energy(double distance_m) const;

  /// Distance movable with `energy_j` joules.
  double range_for_energy(double energy_j) const;

  double max_step() const { return params_.max_step_m; }

 private:
  MobilityParams params_;
};

}  // namespace imobif::energy
