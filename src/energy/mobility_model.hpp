// Mobility cost model of the paper (Section 4): E_M(d) = k * d.
//
// k [J/m] captures terrain and node mass; the evaluation sweeps
// k in {0.1, 0.5, 1.0}. The model also enforces the per-step distance cap
// ("the maximum distance traveled is set to ... in each step").
//
// MobilityParams stays raw double (it is filled by the config/scenario text
// parsers); the model's methods are the typed boundary.
#pragma once

#include "util/units.hpp"

namespace imobif::energy {

// snap:transient(config struct, persisted wholesale as scenario text in the meta section)
struct MobilityParams {
  double k = 0.5;          ///< J/m, movement cost per meter
  double max_step_m = 1.0; ///< maximum travel distance per mobility step

  void validate() const;
};

class MobilityEnergyModel {
 public:
  explicit MobilityEnergyModel(MobilityParams params);

  const MobilityParams& params() const { return params_; }

  /// E_M(d): energy to move `distance` meters.
  util::Joules move_energy(util::Meters distance) const;

  /// Distance movable with `energy` joules.
  util::Meters range_for_energy(util::Joules energy) const;

  /// The per-meter movement cost k as a typed quantity.
  util::JoulesPerMeter cost_per_meter() const {
    return util::JoulesPerMeter{params_.k};
  }

  util::Meters max_step() const { return util::Meters{params_.max_step_m}; }

 private:
  MobilityParams params_;
};

}  // namespace imobif::energy
