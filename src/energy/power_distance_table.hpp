// PowerDistanceTable — the paper's Assumption 4 substitute.
//
// "a node can maintain a power-distance table based on historical data, or
// exploit hardware support." We implement the table: quantized distance bins
// whose entries record the lowest per-bit power observed to succeed at that
// distance. Lookup returns the learned value when available and falls back
// to a conservative interpolation from neighbouring bins; a node with no
// history can be seeded from an analytic model (the "hardware support" path).
#pragma once

#include <optional>
#include <vector>

#include "energy/radio_model.hpp"
#include "util/units.hpp"

namespace imobif::energy {

// snap:transient(standalone empirical lookup, not owned by any checkpointed run object)
class PowerDistanceTable {
 public:
  /// `bin_width` controls quantization; `max_distance` the table extent.
  PowerDistanceTable(util::Meters bin_width, util::Meters max_distance);

  /// Records that transmitting at `power` succeeded across `distance`.
  /// Keeps the minimum successful power per bin.
  void observe(util::Meters distance, util::JoulesPerBit power);

  /// Seeds every bin from the analytic model (hardware-support path).
  void seed_from_model(const RadioEnergyModel& model);

  /// Minimum known per-bit power to reach `distance`, if the table has
  /// any information at or beyond that distance.
  std::optional<util::JoulesPerBit> min_power(util::Meters distance) const;

  /// Number of bins holding observations.
  std::size_t populated_bins() const;
  std::size_t bin_count() const { return bins_.size(); }
  util::Meters bin_width() const { return bin_width_; }

 private:
  std::size_t bin_of(util::Meters distance) const;

  util::Meters bin_width_;
  util::Meters max_distance_;
  std::vector<std::optional<util::JoulesPerBit>> bins_;
};

}  // namespace imobif::energy
