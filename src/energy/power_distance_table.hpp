// PowerDistanceTable — the paper's Assumption 4 substitute.
//
// "a node can maintain a power-distance table based on historical data, or
// exploit hardware support." We implement the table: quantized distance bins
// whose entries record the lowest per-bit power observed to succeed at that
// distance. Lookup returns the learned value when available and falls back
// to a conservative interpolation from neighbouring bins; a node with no
// history can be seeded from an analytic model (the "hardware support" path).
#pragma once

#include <optional>
#include <vector>

#include "energy/radio_model.hpp"

namespace imobif::energy {

class PowerDistanceTable {
 public:
  /// `bin_width_m` controls quantization; `max_distance_m` the table extent.
  PowerDistanceTable(double bin_width_m, double max_distance_m);

  /// Records that transmitting at `power_per_bit` succeeded across
  /// `distance_m`. Keeps the minimum successful power per bin.
  void observe(double distance_m, double power_per_bit);

  /// Seeds every bin from the analytic model (hardware-support path).
  void seed_from_model(const RadioEnergyModel& model);

  /// Minimum known per-bit power to reach `distance_m`, if the table has
  /// any information at or beyond that distance.
  std::optional<double> min_power(double distance_m) const;

  /// Number of bins holding observations.
  std::size_t populated_bins() const;
  std::size_t bin_count() const { return bins_.size(); }
  double bin_width() const { return bin_width_; }

 private:
  std::size_t bin_of(double distance_m) const;

  double bin_width_;
  double max_distance_;
  std::vector<std::optional<double>> bins_;
};

}  // namespace imobif::energy
