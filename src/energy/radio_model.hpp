// Radio transmission power/energy model of the paper (Section 4):
//
//   P(d)      = a + b * d^alpha          [J/bit]
//   E_T(d, l) = l * (a + b * d^alpha)    [J]    (paper's E_T)
//
// `a` is the distance-independent electronics cost per bit, `b` the amplifier
// coefficient, and alpha the path-loss exponent (2 or 3 in the evaluation).
#pragma once

#include <cstdint>

namespace imobif::energy {

struct RadioParams {
  double a = 1e-7;    ///< J/bit, electronics energy
  double b = 1e-10;   ///< J * m^-alpha / bit, amplifier energy
  double alpha = 2.0; ///< path-loss exponent
  /// J/bit charged at the *receiver* per received bit. The paper's model
  /// charges the sender only (rx = 0, the default); the full first-order
  /// radio model charges receive electronics too — bench ablation A8
  /// studies the impact on lifetime.
  double rx_per_bit = 0.0;

  /// Throws std::invalid_argument unless a >= 0, b > 0, alpha >= 1,
  /// rx_per_bit >= 0.
  void validate() const;
};

class RadioEnergyModel {
 public:
  explicit RadioEnergyModel(RadioParams params);

  const RadioParams& params() const { return params_; }

  /// Minimum per-bit transmission power to reach distance d: P(d) [J/bit].
  double power_per_bit(double distance_m) const;

  /// Energy to transmit `bits` across `distance_m`: E_T(d, l) [J].
  double transmit_energy(double distance_m, double bits) const;

  /// Number of bits transmittable across `distance_m` with `energy_j` joules
  /// — the paper's "sustainable data bits" for a fixed next-hop distance.
  double sustainable_bits(double distance_m, double energy_j) const;

  /// Largest distance reachable with per-bit power `power` (inverse of P).
  double range_for_power(double power_per_bit_j) const;

  /// Energy drawn by a receiver for `bits` received bits (0 in the paper's
  /// sender-pays model).
  double receive_energy(double bits) const;

 private:
  RadioParams params_;
};

}  // namespace imobif::energy
