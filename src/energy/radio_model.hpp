// Radio transmission power/energy model of the paper (Section 4):
//
//   P(d)      = a + b * d^alpha          [J/bit]
//   E_T(d, l) = l * (a + b * d^alpha)    [J]    (paper's E_T)
//
// `a` is the distance-independent electronics cost per bit, `b` the amplifier
// coefficient, and alpha the path-loss exponent (2 or 3 in the evaluation).
//
// RadioParams stays raw double on purpose: b's unit, J * m^-alpha / bit,
// depends on the *runtime* exponent alpha and therefore cannot be expressed
// as a static util::Quantity dimension. The model's methods are the typed
// boundary — they accept and return strong units and keep the alpha-dependent
// algebra internal.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace imobif::energy {

// snap:transient(config struct, persisted wholesale as scenario text in the meta section)
struct RadioParams {
  double a = 1e-7;    ///< J/bit, electronics energy
  double b = 1e-10;   ///< J * m^-alpha / bit, amplifier energy
  double alpha = 2.0; ///< path-loss exponent
  /// J/bit charged at the *receiver* per received bit. The paper's model
  /// charges the sender only (rx = 0, the default); the full first-order
  /// radio model charges receive electronics too — bench ablation A8
  /// studies the impact on lifetime.
  double rx_per_bit = 0.0;

  /// Throws std::invalid_argument unless a >= 0, b > 0, alpha >= 1,
  /// rx_per_bit >= 0.
  void validate() const;
};

class RadioEnergyModel {
 public:
  explicit RadioEnergyModel(RadioParams params);

  const RadioParams& params() const { return params_; }

  /// Minimum per-bit transmission power to reach distance d: P(d) [J/bit].
  util::JoulesPerBit power_per_bit(util::Meters distance) const;

  /// Energy to transmit `bits` across `distance`: E_T(d, l) [J].
  util::Joules transmit_energy(util::Meters distance, util::Bits bits) const;

  /// Number of bits transmittable across `distance` with `energy` joules
  /// — the paper's "sustainable data bits" for a fixed next-hop distance.
  util::Bits sustainable_bits(util::Meters distance,
                              util::Joules energy) const;

  /// Largest distance reachable with per-bit power `power` (inverse of P).
  util::Meters range_for_power(util::JoulesPerBit power) const;

  /// Energy drawn by a receiver for `bits` received bits (0 in the paper's
  /// sender-pays model).
  util::Joules receive_energy(util::Bits bits) const;

 private:
  RadioParams params_;
};

}  // namespace imobif::energy
