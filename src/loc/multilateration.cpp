#include "loc/multilateration.hpp"

#include <cmath>

namespace imobif::loc {

double range_rms(const std::vector<RangeSample>& samples, geom::Vec2 x) {
  if (samples.empty()) return 0.0;
  double sum_sq = 0.0;
  for (const RangeSample& s : samples) {
    const double r = geom::distance(x, s.reference) - s.distance;
    sum_sq += r * r;
  }
  return std::sqrt(sum_sq / static_cast<double>(samples.size()));
}

std::optional<geom::Vec2> multilaterate(
    const std::vector<RangeSample>& samples, geom::Vec2 initial_guess,
    int max_iterations, util::Meters tolerance, double min_relative_det) {
  if (samples.size() < 3) return std::nullopt;

  geom::Vec2 x = initial_guess;
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Gauss-Newton: residual r_i = |x - a_i| - d_i with Jacobian row
    // J_i = (x - a_i) / |x - a_i|. Solve (J^T J) step = -J^T r.
    double jtj00 = 0.0, jtj01 = 0.0, jtj11 = 0.0;
    double jtr0 = 0.0, jtr1 = 0.0;
    for (const RangeSample& s : samples) {
      const geom::Vec2 diff = x - s.reference;
      double norm = diff.norm();
      geom::Vec2 unit;
      if (norm < 1e-12) {
        // Sitting exactly on a reference: nudge deterministically so the
        // Jacobian row is defined.
        unit = {1.0, 0.0};
        norm = 1e-12;
      } else {
        unit = diff / norm;
      }
      const double residual = norm - s.distance;
      jtj00 += unit.x * unit.x;
      jtj01 += unit.x * unit.y;
      jtj11 += unit.y * unit.y;
      jtr0 += unit.x * residual;
      jtr1 += unit.y * residual;
    }
    const double det = jtj00 * jtj11 - jtj01 * jtj01;
    const double trace = jtj00 + jtj11;
    // Relative degeneracy test: nearly collinear references make the
    // normal equations ill-conditioned and the solution reflects across
    // the reference line.
    if (det < min_relative_det * trace * trace) return std::nullopt;
    const geom::Vec2 step{-(jtj11 * jtr0 - jtj01 * jtr1) / det,
                          -(jtj00 * jtr1 - jtj01 * jtr0) / det};
    x += step;
    if (step.norm() < tolerance.value()) return x;
  }
  return x;  // ran out of iterations; best effort
}

}  // namespace imobif::loc
