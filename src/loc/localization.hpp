// Network-wide iterative localization (Hu & Evans style): anchor nodes
// know their positions (GPS); every other node measures noisy ranges to
// in-range references and multilaterates; freshly localized nodes serve
// as references in subsequent rounds, propagating coverage inward from
// the anchors.
#pragma once

#include <optional>
#include <vector>

#include "loc/multilateration.hpp"
#include "util/rng.hpp"

namespace imobif::loc {

struct LocalizationConfig {
  double range_m = 180.0;        ///< ranging radius (radio range)
  double noise_sigma_m = 0.0;    ///< gaussian ranging noise
  int max_rounds = 8;            ///< propagation rounds
  std::uint64_t seed = 1;        ///< noise stream seed
  /// Estimates whose RMS range residual exceeds this are rejected (they
  /// would poison later rounds — e.g. mirror solutions of ill-conditioned
  /// reference geometry). <= 0 selects an automatic gate of
  /// 3 * noise_sigma + 0.01 m.
  double max_rms_m = 0.0;
  /// Reference-geometry conditioning gate (see multilaterate); rejects
  /// the truly degenerate (near-collinear) reference sets while keeping
  /// narrow-but-usable ones. Raise it to trade coverage for accuracy.
  double min_relative_det = 1e-3;
  /// Minimum references per estimate. 3 is the geometric minimum; with
  /// noisy ranges use 4+ — an overdetermined fit makes mirror solutions
  /// (which match any 3 nearly-collinear ranges) fail the residual gate.
  std::size_t min_references = 3;
};

struct LocalizationResult {
  /// Estimated position per node; anchors carry their true position,
  /// unlocalizable nodes carry nullopt.
  std::vector<std::optional<geom::Vec2>> estimates;
  std::size_t localized_count = 0;  ///< including anchors
  double mean_error_m = 0.0;        ///< over localized non-anchor nodes
  double max_error_m = 0.0;
  int rounds_used = 0;
};

/// Localizes a network of `truth` positions where `is_anchor[i]` marks
/// position-aware nodes. Deterministic in the config seed.
LocalizationResult localize_network(const std::vector<geom::Vec2>& truth,
                                    const std::vector<bool>& is_anchor,
                                    const LocalizationConfig& config);

}  // namespace imobif::loc
