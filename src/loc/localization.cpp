#include "loc/localization.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/units.hpp"

namespace imobif::loc {

LocalizationResult localize_network(const std::vector<geom::Vec2>& truth,
                                    const std::vector<bool>& is_anchor,
                                    const LocalizationConfig& config) {
  if (truth.size() != is_anchor.size()) {
    throw std::invalid_argument("localize_network: size mismatch");
  }
  if (config.range_m <= 0.0 || config.noise_sigma_m < 0.0 ||
      config.max_rounds < 1) {
    throw std::invalid_argument("localize_network: bad config");
  }

  const std::size_t n = truth.size();
  LocalizationResult result;
  result.estimates.assign(n, std::nullopt);
  for (std::size_t i = 0; i < n; ++i) {
    if (is_anchor[i]) result.estimates[i] = truth[i];
  }

  const double rms_gate = config.max_rms_m > 0.0
                              ? config.max_rms_m
                              : 3.0 * config.noise_sigma_m + 0.01;

  util::Rng rng(config.seed);
  for (int round = 0; round < config.max_rounds; ++round) {
    bool progress = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (result.estimates[i].has_value()) continue;
      // Gather references: nodes with known/estimated positions within
      // ranging distance (true geometry decides measurability; the
      // *estimate* is what enters the solver).
      std::vector<RangeSample> samples;
      geom::Vec2 centroid{0.0, 0.0};
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || !result.estimates[j].has_value()) continue;
        const double true_dist = geom::distance(truth[i], truth[j]);
        if (true_dist > config.range_m) continue;
        RangeSample sample;
        sample.reference = *result.estimates[j];
        sample.distance =
            std::max(0.0, true_dist + rng.normal(0.0, config.noise_sigma_m));
        centroid += sample.reference;
        samples.push_back(sample);
      }
      if (samples.size() < std::max<std::size_t>(3, config.min_references)) {
        continue;
      }
      centroid = centroid / static_cast<double>(samples.size());
      const auto estimate = multilaterate(samples, centroid, 50,
                                          util::Meters{1e-9},
                                          config.min_relative_det);
      if (!estimate.has_value()) continue;
      if (range_rms(samples, *estimate) > rms_gate) continue;
      result.estimates[i] = estimate;
      progress = true;
    }
    result.rounds_used = round + 1;
    if (!progress) break;
  }

  double error_sum = 0.0;
  std::size_t non_anchor_localized = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!result.estimates[i].has_value()) continue;
    ++result.localized_count;
    if (is_anchor[i]) continue;
    const double err = geom::distance(*result.estimates[i], truth[i]);
    error_sum += err;
    result.max_error_m = std::max(result.max_error_m, err);
    ++non_anchor_localized;
  }
  result.mean_error_m =
      non_anchor_localized > 0
          ? error_sum / static_cast<double>(non_anchor_localized)
          : 0.0;
  return result;
}

}  // namespace imobif::loc
