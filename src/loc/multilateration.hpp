// Range-based position estimation (paper Assumption 2: "a node can detect
// its current location using GPS or other positioning
// devices/algorithms", citing Hu & Evans' localization for mobile sensor
// networks). This module implements the "other algorithms" path: a node
// that can measure (noisy) distances to reference nodes with known
// positions solves for its own coordinates by nonlinear least squares.
#pragma once

#include <optional>
#include <vector>

#include "geom/vec2.hpp"
#include "util/units.hpp"

namespace imobif::loc {

/// One range measurement to a reference node at a known position.
struct RangeSample {
  geom::Vec2 reference;
  double distance = 0.0;
};

/// Gauss-Newton least-squares solution of
///     min_x  sum_i (|x - reference_i| - distance_i)^2 .
///
/// Requires >= 3 samples; with fewer, or when the references are (nearly)
/// collinear so the normal equations degenerate, returns nullopt. The
/// iteration starts from `initial_guess` (a centroid of the references
/// works well) and stops when the step drops below `tolerance`.
/// `min_relative_det` rejects ill-conditioned reference geometry: the
/// Gauss-Newton normal matrix must satisfy det >= threshold * trace^2
/// (a well-spread reference triangle scores ~0.1-0.25; nearly collinear
/// references — whose solutions reflect across the reference line with
/// small residuals — score near 0).
std::optional<geom::Vec2> multilaterate(
    const std::vector<RangeSample>& samples, geom::Vec2 initial_guess,
    int max_iterations = 50, util::Meters tolerance = util::Meters{1e-9},
    double min_relative_det = 1e-6);

/// Root-mean-square range residual of a position against the samples —
/// the quality score callers can threshold on.
double range_rms(const std::vector<RangeSample>& samples, geom::Vec2 x);

}  // namespace imobif::loc
