// Exact solver for the Theorem-1 hop split.
//
// Theorem 1 requires P(d_prev)/P(d_self) = e_prev/e_self with
// d_prev + d_self = D and P(d) = a + b d^alpha. The paper notes that
// "the closed-form solutions ... are very complicated or even unavailable
// for alpha > 2" and falls back to the power-law approximation
// (d_prev/d_self)^alpha' = e_prev/e_self. Numerically, however, the exact
// condition is a strictly monotone one-dimensional root-finding problem,
// solved here by bisection to machine-level tolerance. The ablation bench
// `ablation_exact_split` uses this to quantify how much the paper's
// approximation gives up (their claim: it is "effective").
#pragma once

#include "energy/radio_model.hpp"
#include "util/units.hpp"

namespace imobif::core {

/// Returns d_prev in [0, D]: the upstream hop length satisfying
/// P(d_prev)/P(D - d_prev) = e_prev/e_self exactly (clamped to the
/// achievable ratio range when the energies are too lopsided for any
/// split to balance). Energies are clamped to a tiny positive floor.
/// `tolerance` bounds the bisection error.
util::Meters exact_lifetime_split(const energy::RadioParams& radio,
                                  util::Joules e_prev, util::Joules e_self,
                                  util::Meters total_distance,
                                  util::Meters tolerance = util::Meters{1e-6});

}  // namespace imobif::core
