#include "core/max_lifetime_strategy.hpp"

#include "core/lifetime_solver.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace imobif::core {

using util::Bits;
using util::Joules;
using util::Meters;

namespace {
// Energies at or below zero would make the ratio degenerate; clamp to a tiny
// positive floor so a nearly dead node simply claims (almost) no hop length.
constexpr Joules kEnergyFloor{1e-12};
}  // namespace

MaxLifetimeStrategy::MaxLifetimeStrategy(double alpha_prime)
    : alpha_prime_(alpha_prime) {
  if (alpha_prime <= 0.0) {
    throw std::invalid_argument(
        "MaxLifetimeStrategy: alpha_prime must be > 0");
  }
}

MaxLifetimeStrategy::MaxLifetimeStrategy(const energy::RadioParams& radio)
    : alpha_prime_(radio.alpha), exact_radio_(radio) {
  radio.validate();
}

double MaxLifetimeStrategy::split_fraction(Joules prev_energy,
                                           Joules self_energy) const {
  const Joules ep = util::max(prev_energy, kEnergyFloor);
  const Joules es = util::max(self_energy, kEnergyFloor);
  const double rho = std::pow(ep / es, 1.0 / alpha_prime_);
  if (!std::isfinite(rho)) return 1.0;  // prev >>> self: hand it the hop
  return rho / (1.0 + rho);
}

geom::Vec2 MaxLifetimeStrategy::next_position(const RelayContext& ctx) const {
  if (exact_radio_.has_value()) {
    const Meters total{geom::distance(ctx.prev_position, ctx.next_position)};
    const Meters d_prev = exact_lifetime_split(
        *exact_radio_, ctx.prev_energy, ctx.self_energy, total);
    const double frac = total > Meters{0.0} ? d_prev / total : 0.0;
    return geom::lerp(ctx.prev_position, ctx.next_position, frac);
  }
  // Figure 4: x' = prev + (next - prev) * rho / (1 + rho). The higher the
  // previous node's residual energy relative to ours, the closer we park to
  // the next node, lengthening the previous node's hop and shortening ours.
  const double frac = split_fraction(ctx.prev_energy, ctx.self_energy);
  return geom::lerp(ctx.prev_position, ctx.next_position, frac);
}

void MaxLifetimeStrategy::aggregate(net::MobilityAggregate& agg,
                                    const LocalPerformance& local) const {
  // Figure 4: both metrics fold with min (bottleneck node decides lifetime).
  agg.bits_mob = util::min(agg.bits_mob, local.bits_mob);
  agg.resi_mob = util::min(agg.resi_mob, local.resi_mob);
  agg.bits_nomob = util::min(agg.bits_nomob, local.bits_nomob);
  agg.resi_nomob = util::min(agg.resi_nomob, local.resi_nomob);
}

void MaxLifetimeStrategy::init_aggregate(net::MobilityAggregate& agg) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  agg.bits_mob = Bits{kInf};
  agg.bits_nomob = Bits{kInf};
  agg.resi_mob = Joules{kInf};  // identity of min
  agg.resi_nomob = Joules{kInf};
}

}  // namespace imobif::core
