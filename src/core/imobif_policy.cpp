#include "core/imobif_policy.hpp"

#include <stdexcept>

#include "core/cost_benefit.hpp"
#include "core/max_lifetime_strategy.hpp"
#include "core/min_energy_strategy.hpp"
#include "net/node.hpp"

namespace imobif::core {

using util::Bits;
using util::Joules;
using util::Meters;

const char* to_string(MobilityMode mode) {
  switch (mode) {
    case MobilityMode::kNoMobility:
      return "no-mobility";
    case MobilityMode::kCostUnaware:
      return "cost-unaware";
    case MobilityMode::kInformed:
      return "informed";
  }
  return "?";
}

const char* to_string(BenefitEstimator estimator) {
  switch (estimator) {
    case BenefitEstimator::kPaperLocal:
      return "paper-local";
    case BenefitEstimator::kHopReceiver:
      return "hop-receiver";
  }
  return "?";
}

ImobifPolicy::ImobifPolicy(const energy::RadioEnergyModel& radio,
                           const energy::MobilityEnergyModel& mobility,
                           MobilityMode mode)
    : radio_(radio), mobility_(mobility), mode_(mode) {}

void ImobifPolicy::register_strategy(
    std::unique_ptr<MobilityStrategy> strategy) {
  if (strategy == nullptr) {
    throw std::invalid_argument("register_strategy: null strategy");
  }
  const net::StrategyId id = strategy->id();
  strategies_[id] = std::move(strategy);
}

const MobilityStrategy* ImobifPolicy::strategy(net::StrategyId id) const {
  const auto it = strategies_.find(id);
  return it == strategies_.end() ? nullptr : it->second.get();
}

void ImobifPolicy::seed_at_source(net::Node& source, net::DataBody& data,
                                  net::FlowEntry& entry) {
  if (mode_ == MobilityMode::kNoMobility) return;
  const MobilityStrategy* strat = strategy(data.strategy);
  if (strat == nullptr) return;

  if (estimator_ == BenefitEstimator::kHopReceiver) {
    // The source's own out-hop will be evaluated by the first relay; the
    // source contributes only the fold identity and its (static) plan.
    strat->init_aggregate(data.agg);
    data.sender_has_plan = true;
    data.sender_target = source.position();
    data.sender_move_cost = Joules{0.0};
    return;
  }
  const geom::Vec2 next_pos = source.lookup(entry.next).position;
  const LocalPerformance local = evaluate_source(
      radio_, source.battery().residual(), data.residual_flow_bits,
      source.position(), next_pos, cap_bits_);
  strat->seed(data.agg, local);
}

void ImobifPolicy::on_relay(net::Node& relay, net::DataBody& data,
                            net::FlowEntry& entry) {
  if (mode_ == MobilityMode::kNoMobility) return;
  const MobilityStrategy* strat = strategy(data.strategy);
  if (strat == nullptr) return;

  // Locally available flow-neighbor information: the previous node's stamp
  // was just written into the neighbor table by this very packet; the next
  // node's position comes from its HELLO beacons.
  const net::NeighborInfo prev = relay.lookup(entry.prev);
  const net::NeighborInfo next = relay.lookup(entry.next);

  RelayContext ctx;
  ctx.prev_position = prev.position;
  ctx.prev_energy = prev.residual_energy;
  ctx.self_position = relay.position();
  ctx.self_energy = relay.battery().residual();
  ctx.next_position = next.position;

  const geom::Vec2 target = strat->next_position(ctx);
  entry.target = target;

  if (estimator_ == BenefitEstimator::kHopReceiver) {
    // Evaluate the hop *into* this relay (sender = previous node) with both
    // endpoints at their planned positions, then stamp our own plan for the
    // next hop's receiver.
    const LocalPerformance hop = evaluate_hop(
        radio_, prev.residual_energy, data.sender_move_cost, prev.position,
        data.sender_has_plan ? data.sender_target : prev.position,
        relay.position(), target, data.residual_flow_bits, cap_bits_);
    strat->aggregate(data.agg, hop);
    data.sender_has_plan = true;
    data.sender_target = target;
    data.sender_move_cost =
        mobility_.move_energy(Meters{geom::distance(relay.position(), target)});
    return;
  }

  const LocalPerformance local = evaluate_local(
      radio_, mobility_, relay.battery().residual(), data.residual_flow_bits,
      relay.position(), target, next.position, cap_bits_);
  strat->aggregate(data.agg, local);
}

geom::Vec2 ImobifPolicy::movement_target(const net::Node& relay,
                                         const net::FlowEntry& entry) const {
  if (!multi_flow_blending_) return *entry.target;
  // Blend the targets of all mobility-enabled flows traversing this relay,
  // weighted by each flow's expected residual bits: the flow with more
  // traffic left gets proportionally more say in where the node parks.
  geom::Vec2 weighted{0.0, 0.0};
  double total_weight = 0.0;
  for (const net::FlowEntry* f : relay.flows().all()) {
    if (!f->target.has_value() || !f->mobility_enabled) continue;
    // Geometry is untyped (Vec2 is raw meters), so the dimensionless blend
    // weight scalarizes here: bits cancel in w_i / sum(w).
    const double w = std::max(f->residual_bits.value(), 1.0);
    weighted += *f->target * w;
    total_weight += w;
  }
  if (total_weight <= 0.0) return *entry.target;
  return weighted / total_weight;
}

void ImobifPolicy::after_forward(net::Node& relay, net::FlowEntry& entry) {
  if (mode_ == MobilityMode::kNoMobility) return;
  if (entry.mobility_enabled && entry.target.has_value()) {
    const geom::Vec2 target = movement_target(relay, entry);
    const Meters moved = relay.move_towards(target, mobility_.max_step(),
                                            mobility_.cost_per_meter());
    if (moved > Meters{0.0}) {
      ++movements_applied_;
      total_distance_moved_ += moved;
      entry.moved_distance += moved;
    }
  }
  if (recruitment_enabled_) maybe_recruit(relay, entry);
}

void ImobifPolicy::enable_recruitment(double margin,
                                      std::uint32_t check_period_packets) {
  if (margin <= 0.0 || check_period_packets == 0) {
    throw std::invalid_argument("enable_recruitment: bad parameters");
  }
  recruitment_enabled_ = true;
  recruit_margin_ = margin;
  recruit_check_period_ = check_period_packets;
}

void ImobifPolicy::maybe_recruit(net::Node& relay, net::FlowEntry& entry) {
  // Cadence: the first packet plus every check period; cap the number of
  // recruitments a relay initiates per flow so hops cannot be split
  // indefinitely on noise.
  if (entry.recruits_initiated >= 2) return;
  if (entry.packets_relayed % recruit_check_period_ != 1) return;
  if (entry.next == net::kInvalidNode || entry.residual_bits <= Bits{0.0}) {
    return;
  }

  const net::NeighborInfo next = relay.lookup(entry.next);
  const Meters d{geom::distance(relay.position(), next.position)};
  const Joules direct_cost =
      radio_.transmit_energy(d, entry.residual_bits);
  const geom::Vec2 mid = geom::midpoint(relay.position(), next.position);

  net::NodeId best = net::kInvalidNode;
  geom::Vec2 best_pos;
  Joules best_net{0.0};
  for (const net::NeighborInfo& cand :
       relay.neighbors().snapshot(relay.now())) {
    if (cand.id == relay.id() || cand.id == entry.prev ||
        cand.id == entry.next || cand.id == entry.source ||
        cand.id == entry.destination) {
      continue;
    }
    const Meters d1{geom::distance(relay.position(), cand.position)};
    const Meters d2{geom::distance(cand.position, next.position)};
    // Benefit over the residual flow at the candidate's *current*
    // position (mobility, if enabled, only improves on this), minus the
    // candidate's expected relocation spend toward the hop midpoint.
    const Joules split_cost =
        radio_.transmit_energy(d1, entry.residual_bits) +
        radio_.transmit_energy(d2, entry.residual_bits);
    const Joules relocation =
        mobility_.move_energy(Meters{geom::distance(cand.position, mid)});
    const Joules net_gain =
        direct_cost - split_cost - recruit_margin_ * relocation;
    if (net_gain <= best_net) continue;
    // The invitee must be able to afford its share of the plan.
    if (cand.residual_energy <
        relocation + radio_.transmit_energy(d2, entry.residual_bits)) {
      continue;
    }
    best = cand.id;
    best_pos = cand.position;
    best_net = net_gain;
  }
  if (best == net::kInvalidNode) return;

  net::RecruitBody body;
  body.flow_id = entry.id;
  body.flow_source = entry.source;
  body.flow_destination = entry.destination;
  body.upstream = relay.id();
  body.downstream = entry.next;
  body.strategy = entry.strategy;
  body.residual_flow_bits = entry.residual_bits;
  body.mobility_enabled = entry.mobility_enabled;

  net::Packet pkt;
  pkt.type = net::PacketType::kRecruit;
  pkt.sender = net::SenderStamp{relay.id(), relay.position(),
                                relay.battery().residual()};
  pkt.link_dest = best;
  pkt.size_bits = Bits{512.0};
  pkt.body = body;
  if (!relay.transmit(std::move(pkt), best, best_pos)) return;

  entry.next = best;
  entry.target.reset();  // the next packet recomputes against the new hop
  ++entry.recruits_initiated;
  ++recruits_initiated_;
}

std::optional<bool> ImobifPolicy::evaluate_at_destination(
    net::Node& dest, const net::DataBody& data, net::FlowEntry& entry) {
  if (mode_ != MobilityMode::kInformed) return std::nullopt;
  const MobilityStrategy* strat = strategy(data.strategy);
  if (strat == nullptr) return std::nullopt;

  net::MobilityAggregate agg = data.agg;
  if (estimator_ == BenefitEstimator::kHopReceiver) {
    // Fold the final hop (last relay -> destination); the destination does
    // not move, so its planned position is its current one.
    const net::NeighborInfo prev = dest.lookup(entry.prev);
    const LocalPerformance hop = evaluate_hop(
        radio_, prev.residual_energy, data.sender_move_cost, prev.position,
        data.sender_has_plan ? data.sender_target : prev.position,
        dest.position(), dest.position(), data.residual_flow_bits,
        cap_bits_);
    strat->aggregate(agg, hop);
  }
  // Figure 1, UpdateMobilityStatus: sustainable bits dominate; expected
  // residual energy breaks ties.
  const bool mobility_worse =
      agg.bits_mob < agg.bits_nomob ||
      (agg.bits_mob == agg.bits_nomob && agg.resi_mob < agg.resi_nomob);
  const bool mobility_better =
      agg.bits_mob > agg.bits_nomob ||
      (agg.bits_mob == agg.bits_nomob && agg.resi_mob > agg.resi_nomob);

  std::optional<bool> desired;
  if (mobility_worse && data.mobility_enabled) desired = false;
  if (mobility_better && !data.mobility_enabled) desired = true;
  if (!desired.has_value()) return std::nullopt;

  // Reliability layer (node retry cap > 0): an identical request is
  // already awaiting confirmation — the retry timer owns retransmission,
  // so per-packet re-evaluation must not flood duplicates upstream.
  if (entry.pending_status.has_value() && *entry.pending_status == *desired) {
    return std::nullopt;
  }

  // Optional damping: a request was sent recently and the source has not
  // yet had `gap` packets to act on it (or flipped back) - hold off.
  if (notification_min_gap_ > 0 && entry.last_notify_seq.has_value() &&
      data.seq - *entry.last_notify_seq < notification_min_gap_) {
    return std::nullopt;
  }
  entry.last_notify_seq = data.seq;
  return desired;
}

std::unique_ptr<ImobifPolicy> make_default_policy(
    const energy::RadioEnergyModel& radio,
    const energy::MobilityEnergyModel& mobility, MobilityMode mode,
    double alpha_prime) {
  auto policy = std::make_unique<ImobifPolicy>(radio, mobility, mode);
  policy->register_strategy(std::make_unique<MinEnergyStrategy>());
  const double ap =
      alpha_prime > 0.0 ? alpha_prime : radio.params().alpha;
  policy->register_strategy(std::make_unique<MaxLifetimeStrategy>(ap));
  return policy;
}

}  // namespace imobif::core
