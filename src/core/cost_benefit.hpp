// The relay-local cost/benefit evaluation of Figure 1, lines 15-19:
//
//   resi_nomob = e - E_T(d(x, next), L)
//   bits_nomob = e / E_T(d(x, next), 1)
//   resi_mob   = e - E_T(d(x', next), L) - E_M(d(x, x'))
//   bits_mob   = (e - E_M(d(x, x'))) / E_T(d(x', next), 1)
//
// where e is the node's residual energy, L the expected residual flow
// length in bits, x the current position, x' the strategy target, and
// `next` the next node's position. Sustainable-bits values are clamped at
// zero (you cannot transmit a negative number of bits); residual-energy
// values may go negative — a negative expectation means the alternative
// cannot sustain the rest of the flow, which is exactly the signal the
// destination needs.
//
// Sustainable bits are "the amount of *flow* traffic the node can support
// with the current residual energy" (Section 2), so by default they are
// capped at the residual flow length L: a node that can sustain the whole
// rest of the flow under both alternatives reports a tie, and the decision
// falls to expected residual energy — whose with/without difference is
// exactly (transmission savings over L) - (movement cost), the
// flow-length-dependent threshold of Goldenberg et al. that the paper's
// Figure 6 exhibits. `cap_bits = false` selects the uncapped raw-capacity
// variant (bench ablation).
#pragma once

#include "core/strategy.hpp"
#include "energy/mobility_model.hpp"
#include "energy/radio_model.hpp"
#include "geom/vec2.hpp"

namespace imobif::core {

LocalPerformance evaluate_local(const energy::RadioEnergyModel& radio,
                                const energy::MobilityEnergyModel& mobility,
                                util::Joules residual_energy,
                                util::Bits residual_bits, geom::Vec2 current,
                                geom::Vec2 target, geom::Vec2 next,
                                bool cap_bits = true);

/// Source-side variant: the source does not move, so target == current and
/// both alternatives coincide.
LocalPerformance evaluate_source(const energy::RadioEnergyModel& radio,
                                 util::Joules residual_energy,
                                 util::Bits residual_bits, geom::Vec2 current,
                                 geom::Vec2 next, bool cap_bits = true);

/// Hop-receiver estimator (see core/imobif_policy.hpp): the receiver of a
/// hop evaluates the *sender's* expected performance on that hop, using the
/// sender's stamped plan (intended position + remaining movement energy)
/// and the receiver's own plan. Every path hop is thus evaluated exactly
/// once, with both endpoints at their planned positions — removing the
/// one-step myopia of the per-sender evaluation while still using only
/// information carried in the packet header or the neighbor table.
LocalPerformance evaluate_hop(const energy::RadioEnergyModel& radio,
                              util::Joules sender_energy,
                              util::Joules sender_pending_move_cost,
                              geom::Vec2 sender_pos, geom::Vec2 sender_target,
                              geom::Vec2 receiver_pos,
                              geom::Vec2 receiver_target,
                              util::Bits residual_bits, bool cap_bits = true);

}  // namespace imobif::core
