#include "core/lifetime_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace imobif::core {

double exact_lifetime_split(const energy::RadioParams& radio, double e_prev,
                            double e_self, double total_distance,
                            double tolerance_m) {
  radio.validate();
  if (total_distance < 0.0) {
    throw std::invalid_argument("exact_lifetime_split: negative distance");
  }
  if (tolerance_m <= 0.0) {
    throw std::invalid_argument("exact_lifetime_split: bad tolerance");
  }
  // Exact zero: callers pass 0.0 literally for the co-located case.
  if (total_distance == 0.0) return 0.0;  // lint:allow(float-equality)

  constexpr double kEnergyFloor = 1e-12;
  const double target =
      std::max(e_prev, kEnergyFloor) / std::max(e_self, kEnergyFloor);

  const auto power = [&](double d) {
    return radio.a + radio.b * std::pow(d, radio.alpha);
  };
  // f(d) = P(d)/P(D-d) is continuous and strictly increasing on [0, D]
  // (numerator grows, denominator shrinks), so bisection applies. Clamp to
  // the achievable range first.
  const double lo_ratio = power(0.0) / power(total_distance);
  const double hi_ratio = power(total_distance) / power(0.0);
  if (target <= lo_ratio) return 0.0;
  if (target >= hi_ratio) return total_distance;

  double lo = 0.0;
  double hi = total_distance;
  while (hi - lo > tolerance_m) {
    const double mid = 0.5 * (lo + hi);
    const double ratio = power(mid) / power(total_distance - mid);
    if (ratio < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace imobif::core
