#include "core/lifetime_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace imobif::core {

using util::Joules;
using util::Meters;

Meters exact_lifetime_split(const energy::RadioParams& radio, Joules e_prev,
                            Joules e_self, Meters total_distance,
                            Meters tolerance) {
  radio.validate();
  if (total_distance < Meters{0.0}) {
    throw std::invalid_argument("exact_lifetime_split: negative distance");
  }
  if (tolerance <= Meters{0.0}) {
    throw std::invalid_argument("exact_lifetime_split: bad tolerance");
  }
  // Exact zero: callers pass 0.0 literally for the co-located case.
  if (total_distance == Meters{0.0}) return Meters{0.0};

  constexpr Joules kEnergyFloor{1e-12};
  const double target =
      util::max(e_prev, kEnergyFloor) / util::max(e_self, kEnergyFloor);

  // Bisection interior works on raw meters: power() mixes the runtime
  // exponent alpha, whose dimension Quantity cannot express.
  const double total = total_distance.value();
  const auto power = [&](double d) {
    return radio.a + radio.b * std::pow(d, radio.alpha);
  };
  // f(d) = P(d)/P(D-d) is continuous and strictly increasing on [0, D]
  // (numerator grows, denominator shrinks), so bisection applies. Clamp to
  // the achievable range first.
  const double lo_ratio = power(0.0) / power(total);
  const double hi_ratio = power(total) / power(0.0);
  if (target <= lo_ratio) return Meters{0.0};
  if (target >= hi_ratio) return total_distance;

  double lo = 0.0;
  double hi = total;
  while (hi - lo > tolerance.value()) {
    const double mid = 0.5 * (lo + hi);
    const double ratio = power(mid) / power(total - mid);
    if (ratio < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return Meters{0.5 * (lo + hi)};
}

}  // namespace imobif::core
