#include "core/min_energy_strategy.hpp"

#include <algorithm>
#include <limits>

namespace imobif::core {

geom::Vec2 MinEnergyStrategy::next_position(const RelayContext& ctx) const {
  // Figure 3: return (f.prev.x + f.next.x) / 2.
  return geom::midpoint(ctx.prev_position, ctx.next_position);
}

void MinEnergyStrategy::aggregate(net::MobilityAggregate& agg,
                                  const LocalPerformance& local) const {
  // Figure 3: bits fold with min, resi folds with sum.
  agg.bits_mob = std::min(agg.bits_mob, local.bits_mob);
  agg.resi_mob = agg.resi_mob + local.resi_mob;
  agg.bits_nomob = std::min(agg.bits_nomob, local.bits_nomob);
  agg.resi_nomob = agg.resi_nomob + local.resi_nomob;
}

void MinEnergyStrategy::init_aggregate(net::MobilityAggregate& agg) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  agg.bits_mob = kInf;
  agg.bits_nomob = kInf;
  agg.resi_mob = 0.0;    // identity of sum
  agg.resi_nomob = 0.0;
}

}  // namespace imobif::core
