#include "core/min_energy_strategy.hpp"

#include <limits>

namespace imobif::core {

using util::Bits;
using util::Joules;

geom::Vec2 MinEnergyStrategy::next_position(const RelayContext& ctx) const {
  // Figure 3: return (f.prev.x + f.next.x) / 2.
  return geom::midpoint(ctx.prev_position, ctx.next_position);
}

void MinEnergyStrategy::aggregate(net::MobilityAggregate& agg,
                                  const LocalPerformance& local) const {
  // Figure 3: bits fold with min, resi folds with sum.
  agg.bits_mob = util::min(agg.bits_mob, local.bits_mob);
  agg.resi_mob = agg.resi_mob + local.resi_mob;
  agg.bits_nomob = util::min(agg.bits_nomob, local.bits_nomob);
  agg.resi_nomob = agg.resi_nomob + local.resi_nomob;
}

void MinEnergyStrategy::init_aggregate(net::MobilityAggregate& agg) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  agg.bits_mob = Bits{kInf};
  agg.bits_nomob = Bits{kInf};
  agg.resi_mob = Joules{0.0};  // identity of sum
  agg.resi_nomob = Joules{0.0};
}

}  // namespace imobif::core
