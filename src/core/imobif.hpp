// Umbrella header for the iMobif library public API.
//
// Typical use:
//
//   #include "core/imobif.hpp"
//
//   imobif::net::Network net(cfg);
//   ... add nodes, set routing ...
//   auto policy = imobif::core::make_default_policy(
//       net.radio(), mobility_model, imobif::core::MobilityMode::kInformed);
//   net.set_policy(policy.get());
//   net.warmup(30.0);
//   net.start_flow(spec);
//   net.run_flows(3600.0);
#pragma once

#include "core/cost_benefit.hpp"       // IWYU pragma: export
#include "core/imobif_policy.hpp"      // IWYU pragma: export
#include "core/lifetime_solver.hpp"    // IWYU pragma: export
#include "core/max_lifetime_strategy.hpp"  // IWYU pragma: export
#include "core/min_energy_strategy.hpp"    // IWYU pragma: export
#include "core/strategy.hpp"           // IWYU pragma: export
#include "energy/battery.hpp"          // IWYU pragma: export
#include "energy/mobility_model.hpp"   // IWYU pragma: export
#include "energy/power_distance_table.hpp"  // IWYU pragma: export
#include "energy/radio_model.hpp"      // IWYU pragma: export
#include "net/aodv_routing.hpp"        // IWYU pragma: export
#include "net/greedy_routing.hpp"      // IWYU pragma: export
#include "net/network.hpp"             // IWYU pragma: export
