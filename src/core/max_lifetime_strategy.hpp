// Max-system-lifetime strategy (paper Section 3.2, Figure 4) — the novel
// strategy of the paper.
//
// Theorem 1: at the lifetime optimum all relays lie on the source-
// destination line with hop lengths satisfying
//     P(d_{i-1}) / P(d_i) = e_{i-1} / e_i ,
// i.e. the node with more residual energy takes the proportionally more
// expensive (longer) hop. Closed-form solutions with P(d) = a + b d^alpha
// are impractical, so the paper uses the approximation
//     (d_{i-1}')^{alpha'} / (d_i')^{alpha'} = e_{i-1} / e_i
// with d_{i-1}' + d_i' = |x_{i-1} - x_{i+1}|, giving
//     x_i' = x_{i-1} + (x_{i+1} - x_{i-1}) * rho / (1 + rho),
//     rho  = (e_{i-1} / e_i)^{1 / alpha'} ,
// where alpha' is a tuning exponent "obtained through regression on
// historical data" (defaults to the radio path-loss exponent alpha; bench
// ablation A1 sweeps it).
//
// Aggregate: both metrics fold with min — system lifetime is decided by the
// bottleneck node, so the destination must see the *worst* expected residual
// energy, not the total (Section 3.2).
#pragma once

#include <optional>

#include "core/strategy.hpp"
#include "energy/radio_model.hpp"

namespace imobif::core {

// snap:transient(strategy constants rebuilt from scenario params by make_default_policy)
class MaxLifetimeStrategy : public MobilityStrategy {
 public:
  /// Approximate mode (the paper's): `alpha_prime` must be positive.
  explicit MaxLifetimeStrategy(double alpha_prime);

  /// Exact mode: solves the Theorem-1 balance P(d_prev)/P(d_self) =
  /// e_prev/e_self numerically under the given radio model (see
  /// core/lifetime_solver.hpp).
  explicit MaxLifetimeStrategy(const energy::RadioParams& radio);

  net::StrategyId id() const override { return net::StrategyId::kMaxLifetime; }
  const char* name() const override {
    return exact() ? "max-lifetime-exact" : "max-lifetime";
  }
  double alpha_prime() const { return alpha_prime_; }
  bool exact() const { return exact_radio_.has_value(); }

  geom::Vec2 next_position(const RelayContext& ctx) const override;

  void aggregate(net::MobilityAggregate& agg,
                 const LocalPerformance& local) const override;

  void init_aggregate(net::MobilityAggregate& agg) const override;

  /// The hop-split fraction rho/(1+rho) for energies (e_prev, e_self);
  /// exposed for tests of the Theorem-1 approximation.
  double split_fraction(util::Joules prev_energy,
                        util::Joules self_energy) const;

 private:
  double alpha_prime_;
  std::optional<energy::RadioParams> exact_radio_;
};

}  // namespace imobif::core
