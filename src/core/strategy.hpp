// Mobility strategies (framework Section 2, assumption 1: "each node
// maintains a list of application-specific mobility strategies and aggregate
// functions").
//
// A strategy supplies the two application-specific functions of Figure 1:
//   * GetNextPosition  -> next_position(): the relay's preferred location,
//     computed from locally available information about the previous node,
//     this node, and the next node on the flow path;
//   * AggregateMobilityPerformance -> aggregate(): how a relay folds its
//     local (sustainable-bits, expected-residual-energy) pair — for both the
//     with-mobility and without-mobility alternatives — into the packet
//     header aggregate.
#pragma once

#include "geom/vec2.hpp"
#include "net/packet.hpp"
#include "util/units.hpp"

namespace imobif::core {

/// Locally available flow-neighbor information at a relay: position and
/// residual energy of the previous node (from its packet stamp / HELLOs),
/// this node, and the position of the next node.
// snap:transient(per-decision value type, lives only within one policy evaluation)
struct RelayContext {
  geom::Vec2 prev_position;
  util::Joules prev_energy;
  geom::Vec2 self_position;
  util::Joules self_energy;
  geom::Vec2 next_position;
};

/// The relay's local cost/benefit evaluation (Figure 1 lines 15-19).
struct LocalPerformance {
  util::Bits bits_mob;
  util::Joules resi_mob;
  util::Bits bits_nomob;
  util::Joules resi_nomob;
};

class MobilityStrategy {
 public:
  virtual ~MobilityStrategy() = default;

  virtual net::StrategyId id() const = 0;
  virtual const char* name() const = 0;

  /// GetNextPosition: the relay's preferred location.
  virtual geom::Vec2 next_position(const RelayContext& ctx) const = 0;

  /// AggregateMobilityPerformance: folds the relay's local values into the
  /// header aggregate.
  virtual void aggregate(net::MobilityAggregate& agg,
                         const LocalPerformance& local) const = 0;

  /// Initializes the aggregate with the source's own contribution. The
  /// source does not move, so both alternatives carry its plain values.
  virtual void seed(net::MobilityAggregate& agg,
                    const LocalPerformance& source) const;

  /// Identity element of the aggregate fold (hop-receiver estimator): bits
  /// aggregate with min at every strategy so both start at +infinity; the
  /// resi identity is strategy-specific (0 for sum, +infinity for min).
  virtual void init_aggregate(net::MobilityAggregate& agg) const = 0;
};

}  // namespace imobif::core
