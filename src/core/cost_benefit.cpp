#include "core/cost_benefit.hpp"

#include <cmath>

#include "util/check.hpp"

namespace imobif::core {

using util::Bits;
using util::Joules;
using util::Meters;

namespace {

// The sustainable-bits terms may legitimately saturate to +inf (a zero-cost
// hop sustains unboundedly many bits), but NaN means an inf-inf or 0*inf
// slipped into the fold and every downstream comparison is garbage.
void check_not_nan([[maybe_unused]] const LocalPerformance& perf) {
  IMOBIF_ASSERT(!util::isnan(perf.bits_mob) && !util::isnan(perf.resi_mob) &&
                    !util::isnan(perf.bits_nomob) &&
                    !util::isnan(perf.resi_nomob),
                "NaN in local cost/benefit evaluation");
}

}  // namespace

LocalPerformance evaluate_local(const energy::RadioEnergyModel& radio,
                                const energy::MobilityEnergyModel& mobility,
                                Joules residual_energy, Bits residual_bits,
                                geom::Vec2 current, geom::Vec2 target,
                                geom::Vec2 next, bool cap_bits) {
  LocalPerformance perf;
  const Meters d_now{geom::distance(current, next)};
  const Meters d_after{geom::distance(target, next)};
  const Joules move_cost =
      mobility.move_energy(Meters{geom::distance(current, target)});

  perf.resi_nomob =
      residual_energy - radio.transmit_energy(d_now, residual_bits);
  perf.bits_nomob = radio.sustainable_bits(d_now, residual_energy);

  perf.resi_mob = residual_energy -
                  radio.transmit_energy(d_after, residual_bits) - move_cost;
  perf.bits_mob = radio.sustainable_bits(
      d_after, util::max(Joules{0.0}, residual_energy - move_cost));

  if (cap_bits) {
    perf.bits_nomob = util::min(perf.bits_nomob, residual_bits);
    perf.bits_mob = util::min(perf.bits_mob, residual_bits);
  }
  check_not_nan(perf);
  return perf;
}

LocalPerformance evaluate_hop(const energy::RadioEnergyModel& radio,
                              Joules sender_energy,
                              Joules sender_pending_move_cost,
                              geom::Vec2 sender_pos, geom::Vec2 sender_target,
                              geom::Vec2 receiver_pos,
                              geom::Vec2 receiver_target, Bits residual_bits,
                              bool cap_bits) {
  LocalPerformance perf;
  const Meters d_now{geom::distance(sender_pos, receiver_pos)};
  const Meters d_plan{geom::distance(sender_target, receiver_target)};

  perf.resi_nomob =
      sender_energy - radio.transmit_energy(d_now, residual_bits);
  perf.bits_nomob = radio.sustainable_bits(d_now, sender_energy);

  perf.resi_mob = sender_energy - sender_pending_move_cost -
                  radio.transmit_energy(d_plan, residual_bits);
  perf.bits_mob = radio.sustainable_bits(
      d_plan,
      util::max(Joules{0.0}, sender_energy - sender_pending_move_cost));

  if (cap_bits) {
    perf.bits_nomob = util::min(perf.bits_nomob, residual_bits);
    perf.bits_mob = util::min(perf.bits_mob, residual_bits);
  }
  check_not_nan(perf);
  return perf;
}

LocalPerformance evaluate_source(const energy::RadioEnergyModel& radio,
                                 Joules residual_energy, Bits residual_bits,
                                 geom::Vec2 current, geom::Vec2 next,
                                 bool cap_bits) {
  LocalPerformance perf;
  const Meters d{geom::distance(current, next)};
  perf.resi_nomob =
      residual_energy - radio.transmit_energy(d, residual_bits);
  perf.bits_nomob = radio.sustainable_bits(d, residual_energy);
  if (cap_bits) perf.bits_nomob = util::min(perf.bits_nomob, residual_bits);
  perf.resi_mob = perf.resi_nomob;
  perf.bits_mob = perf.bits_nomob;
  check_not_nan(perf);
  return perf;
}

}  // namespace imobif::core
