// ImobifPolicy: the Figure-1 node operations, pluggable into net::Node.
//
// One policy object serves a whole simulated network (it is stateless per
// node; per-flow state lives in each node's flow table). The same class
// also realizes the paper's two comparison baselines:
//
//   kNoMobility   — relays never move and no aggregation happens; the pure
//                   static network of Section 4's "approach without
//                   mobility".
//   kCostUnaware  — relays always execute the strategy movement; the
//                   destination never evaluates cost/benefit ("approach
//                   with only cost-unaware mobility"; run flows with
//                   initially_enabled = true).
//   kInformed     — the full iMobif framework: aggregate en route, evaluate
//                   at the destination, notify the source on status change.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/strategy.hpp"
#include "energy/mobility_model.hpp"
#include "energy/radio_model.hpp"
#include "net/mobility_policy.hpp"
#include "util/units.hpp"

namespace imobif::core {

enum class MobilityMode : std::uint8_t {
  kNoMobility,
  kCostUnaware,
  kInformed,
};

const char* to_string(MobilityMode mode);

/// How the cost/benefit aggregate is assembled along the path.
///
/// kPaperLocal — the literal Figure-1 listing: each *sender* evaluates its
/// own out-hop with the next node at its current position. One-step myopic:
/// a relay's movement mostly shortens the hop *into* it, a benefit the
/// upstream node cannot see until movement actually happens, so enabling
/// under-fires on crooked paths.
///
/// kHopReceiver — each hop is evaluated once, at its *receiver*, with both
/// endpoints at their planned positions; the sender's plan (target +
/// remaining movement energy) rides in the data header, exactly the
/// paper's information-dissemination mechanism. This removes the myopia
/// and reproduces the paper's reported enable/disable behaviour; it is the
/// default. bench/ablation_estimator quantifies the difference.
enum class BenefitEstimator : std::uint8_t {
  kPaperLocal,
  kHopReceiver,
};

const char* to_string(BenefitEstimator estimator);

// snap:transient(policy config and strategy registry rebuilt from scenario params by create_shell; counters restored via restore_counters)
class ImobifPolicy : public net::MobilityPolicy {
 public:
  ImobifPolicy(const energy::RadioEnergyModel& radio,
               const energy::MobilityEnergyModel& mobility,
               MobilityMode mode);

  /// Registers a strategy under its own id; replaces any previous one.
  void register_strategy(std::unique_ptr<MobilityStrategy> strategy);
  const MobilityStrategy* strategy(net::StrategyId id) const;

  MobilityMode mode() const { return mode_; }
  const energy::MobilityEnergyModel& mobility_model() const {
    return mobility_;
  }

  /// Extension (paper future work / TR): when a relay serves several flows,
  /// blend the per-flow targets weighted by residual flow bits instead of
  /// chasing the most recent flow's target.
  void set_multi_flow_blending(bool enabled) {
    multi_flow_blending_ = enabled;
  }
  bool multi_flow_blending() const { return multi_flow_blending_; }

  /// Cap sustainable bits at the residual flow length (default, see
  /// core/cost_benefit.hpp); false selects the raw-capacity variant.
  void set_cap_bits(bool cap) { cap_bits_ = cap; }
  bool cap_bits() const { return cap_bits_; }

  void set_estimator(BenefitEstimator estimator) { estimator_ = estimator; }
  BenefitEstimator estimator() const { return estimator_; }

  /// Relay recruitment (paper Section 5 future work: optimize the
  /// *selection* of intermediate flow nodes, not just their positions).
  /// When enabled, a relay periodically checks whether splitting its
  /// current hop by inviting an idle neighbor near the hop midpoint saves
  /// transmission energy over the residual flow, net of the invitee's
  /// expected relocation cost times `margin`; if so it sends a RECRUIT
  /// packet and re-pins its next hop to the invitee.
  void enable_recruitment(double margin = 1.2,
                          std::uint32_t check_period_packets = 64);
  void disable_recruitment() { recruitment_enabled_ = false; }
  bool recruitment_enabled() const { return recruitment_enabled_; }
  std::uint64_t recruits_initiated() const { return recruits_initiated_; }

  /// Destination-side notification damping: after requesting a status
  /// change, suppress further requests until at least `packets` more data
  /// packets have arrived. 0 (default) reproduces the paper's immediate
  /// per-packet re-evaluation; small values kill the rare end-of-flow
  /// oscillation tail visible in Figure 7 (bench: ablation_damping).
  void set_notification_min_gap(std::uint32_t packets) {
    notification_min_gap_ = packets;
  }
  std::uint32_t notification_min_gap() const {
    return notification_min_gap_;
  }

  // net::MobilityPolicy implementation (Figure 1).
  void seed_at_source(net::Node& source, net::DataBody& data,
                      net::FlowEntry& entry) override;
  void on_relay(net::Node& relay, net::DataBody& data,
                net::FlowEntry& entry) override;
  void after_forward(net::Node& relay, net::FlowEntry& entry) override;
  std::optional<bool> evaluate_at_destination(net::Node& dest,
                                              const net::DataBody& data,
                                              net::FlowEntry& entry) override;

  std::uint64_t movements_applied() const { return movements_applied_; }
  util::Meters total_distance_moved() const { return total_distance_moved_; }

  /// Checkpoint restore: overwrites the run counters (src/snap).
  void restore_counters(std::uint64_t movements, util::Meters distance_moved,
                        std::uint64_t recruits) {
    movements_applied_ = movements;
    total_distance_moved_ = distance_moved;
    recruits_initiated_ = recruits;
  }

 private:
  geom::Vec2 movement_target(const net::Node& relay,
                             const net::FlowEntry& entry) const;
  void maybe_recruit(net::Node& relay, net::FlowEntry& entry);

  const energy::RadioEnergyModel& radio_;
  const energy::MobilityEnergyModel& mobility_;
  MobilityMode mode_;
  bool multi_flow_blending_ = false;
  bool cap_bits_ = true;
  BenefitEstimator estimator_ = BenefitEstimator::kHopReceiver;
  std::uint32_t notification_min_gap_ = 0;
  bool recruitment_enabled_ = false;
  double recruit_margin_ = 1.2;
  std::uint32_t recruit_check_period_ = 64;
  std::uint64_t recruits_initiated_ = 0;
  std::unordered_map<net::StrategyId, std::unique_ptr<MobilityStrategy>>
      strategies_;
  std::uint64_t movements_applied_ = 0;
  util::Meters total_distance_moved_;
};

/// Builds a policy with both paper strategies registered; `alpha_prime`
/// parameterizes the max-lifetime approximation (default: radio alpha).
std::unique_ptr<ImobifPolicy> make_default_policy(
    const energy::RadioEnergyModel& radio,
    const energy::MobilityEnergyModel& mobility, MobilityMode mode,
    double alpha_prime = 0.0);

}  // namespace imobif::core
