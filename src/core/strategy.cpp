#include "core/strategy.hpp"

namespace imobif::core {

void MobilityStrategy::seed(net::MobilityAggregate& agg,
                            const LocalPerformance& source) const {
  agg.bits_mob = source.bits_mob;
  agg.resi_mob = source.resi_mob;
  agg.bits_nomob = source.bits_nomob;
  agg.resi_nomob = source.resi_nomob;
}

}  // namespace imobif::core
