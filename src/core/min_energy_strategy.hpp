// Min-total-energy strategy (paper Section 3.1, Figures 2 and 3), adopted
// from Goldenberg et al., "Towards mobility as a network control primitive"
// (MobiHoc 2004).
//
// GetNextPosition: the midpoint of the previous and next nodes' positions.
// Iterated packet-by-packet, relays converge to evenly spaced points on the
// source-destination line — the proven total-energy optimum.
//
// Aggregate: sustainable bits fold with min (the flow sustains what its
// weakest node sustains); expected residual energy folds with sum (total
// energy is what this strategy optimizes).
#pragma once

#include "core/strategy.hpp"

namespace imobif::core {

class MinEnergyStrategy : public MobilityStrategy {
 public:
  net::StrategyId id() const override {
    return net::StrategyId::kMinTotalEnergy;
  }
  const char* name() const override { return "min-total-energy"; }

  geom::Vec2 next_position(const RelayContext& ctx) const override;

  void aggregate(net::MobilityAggregate& agg,
                 const LocalPerformance& local) const override;

  void init_aggregate(net::MobilityAggregate& agg) const override;
};

}  // namespace imobif::core
