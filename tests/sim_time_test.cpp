#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace imobif::sim {
namespace {

TEST(Time, DefaultIsZero) {
  EXPECT_EQ(Time{}, Time::zero());
  EXPECT_EQ(Time{}.ticks(), 0);
}

TEST(Time, SecondsRoundTrip) {
  const Time t = Time::from_seconds(1.5);
  EXPECT_EQ(t.ticks(), 1'500'000);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
}

TEST(Time, SubMicrosecondRounds) {
  EXPECT_EQ(Time::from_seconds(1e-7).ticks(), 0);
  EXPECT_EQ(Time::from_seconds(6e-7).ticks(), 1);
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::from_seconds(1.0), Time::from_seconds(2.0));
  EXPECT_LE(Time::from_seconds(1.0), Time::from_seconds(1.0));
  EXPECT_GT(Time::infinity(), Time::from_seconds(1e12));
}

TEST(Time, Arithmetic) {
  const Time a = Time::from_seconds(2.0);
  const Time b = Time::from_seconds(0.5);
  EXPECT_DOUBLE_EQ((a + b).seconds(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).seconds(), 1.5);
  Time c = a;
  c += b;
  EXPECT_EQ(c, a + b);
}

TEST(Time, FromTicks) {
  EXPECT_EQ(Time::from_ticks(42).ticks(), 42);
}

TEST(Time, StreamOutput) {
  std::ostringstream os;
  os << Time::from_seconds(2.5);
  EXPECT_EQ(os.str(), "2.5s");
}

}  // namespace
}  // namespace imobif::sim
