// Contract layer: IMOBIF_ASSERT/IMOBIF_ENSURE death and no-op behaviour.
//
// The probe TUs compile identical contract-tripping code with checks
// forced on and forced off, so every build configuration (Debug, Release,
// -DIMOBIF_CHECKS=ON, sanitizers) pins both sides of the contract:
// enabled checks abort loudly, disabled checks cost nothing and do not
// even evaluate their condition.
#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util_check_probe.hpp"

namespace imobif::test {
namespace {

TEST(UtilCheck, ModesReportTheirActivation) {
  EXPECT_TRUE(checks_forced_on().active);
  EXPECT_FALSE(checks_forced_off().active);
}

TEST(UtilCheck, PassingContractsAreSilentInBothModes) {
  checks_forced_on().trip_assert(true);
  checks_forced_on().trip_ensure(true);
  checks_forced_off().trip_assert(true);
  checks_forced_off().trip_ensure(true);
}

TEST(UtilCheckDeathTest, EnabledAssertAbortsWithDiagnostics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(checks_forced_on().trip_assert(false),
               "IMOBIF_ASSERT failed: cond.*forced assert");
  EXPECT_DEATH(checks_forced_on().trip_ensure(false),
               "IMOBIF_ENSURE failed: cond.*forced ensure");
}

TEST(UtilCheck, DisabledContractsAreNoOps) {
  checks_forced_off().trip_assert(false);  // must not abort
  checks_forced_off().trip_ensure(false);  // must not abort
}

TEST(UtilCheck, DisabledContractsDoNotEvaluateTheCondition) {
  EXPECT_EQ(checks_forced_on().count_evaluations(), 1);
  EXPECT_EQ(checks_forced_off().count_evaluations(), 0);
}

// The build-mode default: active without NDEBUG or with IMOBIF_CHECKS=ON.
TEST(UtilCheck, BuildModeMatchesMacro) {
#if defined(IMOBIF_ENABLE_CHECKS) || !defined(NDEBUG)
  EXPECT_EQ(IMOBIF_CHECKS_ENABLED, 1);
#else
  EXPECT_EQ(IMOBIF_CHECKS_ENABLED, 0);
#endif
}

}  // namespace
}  // namespace imobif::test
