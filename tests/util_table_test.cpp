#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace imobif::util {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "v"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
  // The second column starts at the same offset in every data row:
  // first-column width (18) + 2-space gutter = 20.
  std::istringstream is(out);
  std::string header, sep, row1, row2;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(row1.find('1'), 20u);
  EXPECT_EQ(row2.find('2'), 20u);
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456789, 3), "1.23");
  EXPECT_EQ(Table::num(2.0), "2");
}

TEST(TableCsv, PlainFields) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableCsv, EscapesSpecialCharacters) {
  Table t({"a"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(WriteCsv, RoundTripsThroughFile) {
  Table t({"k", "v"});
  t.add_row({"x", "1"});
  const std::string path = ::testing::TempDir() + "/imobif_table_test.csv";
  write_csv(path, t);
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "k,v\nx,1\n");
  std::remove(path.c_str());
}

TEST(WriteCsv, ThrowsOnBadPath) {
  Table t({"a"});
  EXPECT_THROW(write_csv("/nonexistent-dir-xyz/file.csv", t),
               std::runtime_error);
}

}  // namespace
}  // namespace imobif::util
