// Adding a raw double to a quantity must not compile; only same-dimension
// quantities can be summed.
#include "util/units.hpp"

using namespace imobif;

double probe() {
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  return (util::Bits{8192.0} + util::Bits{1.0}).value();
#else
  return (util::Bits{8192.0} + 1.0).value();
#endif
}
