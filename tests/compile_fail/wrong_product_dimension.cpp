// The dimension algebra runs at compile time: J/m times bits is NOT a
// joule, so binding the product to Joules must not compile.
#include "util/units.hpp"

using namespace imobif;

double probe() {
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  util::Joules e = util::JoulesPerMeter{0.5} * util::Meters{30.0};
#else
  util::Joules e = util::JoulesPerMeter{0.5} * util::Bits{30.0};
#endif
  return e.value();
}
