// A quantity must not decay to a raw double implicitly; leaving the typed
// layer requires an explicit .value() at an I/O boundary.
#include "util/units.hpp"

using namespace imobif;

double probe() {
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  double d = util::Joules{5.0}.value();
#else
  double d = util::Joules{5.0};
#endif
  return d;
}
