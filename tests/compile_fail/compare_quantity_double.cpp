// Comparing a quantity against a raw double must not compile; the literal
// has to be wrapped so the dimension is stated explicitly.
#include "util/units.hpp"

using namespace imobif;

bool probe() {
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  return util::Meters{100.0} > util::Meters{50.0};
#else
  return util::Meters{100.0} > 50.0;
#endif
}
