// Subtracting bits from seconds must not compile.
#include "util/units.hpp"

using namespace imobif;

double probe() {
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  return (util::Seconds{3.0} - util::Seconds{1.0}).value();
#else
  return (util::Seconds{3.0} - util::Bits{1.0}).value();
#endif
}
