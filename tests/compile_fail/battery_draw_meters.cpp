// The energy layer's public API is typed end to end: drawing meters out
// of a battery must not compile.
#include "energy/battery.hpp"
#include "util/units.hpp"

using namespace imobif;

double probe() {
  energy::Battery b(util::Joules{10.0});
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  return b.draw(util::Joules{1.0}, energy::DrawKind::kTransmit).value();
#else
  return b.draw(util::Meters{1.0}, energy::DrawKind::kTransmit).value();
#endif
}
