// Quantity construction from a raw double is explicit: an implicit
// conversion (copy-initialization) must not compile.
#include "util/units.hpp"

using namespace imobif;

double probe() {
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  util::Joules e{5.0};
#else
  util::Joules e = 5.0;
#endif
  return e.value();
}
