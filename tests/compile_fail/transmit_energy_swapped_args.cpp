// Swapping (distance, bits) in transmit_energy must not compile — the
// typed signature is exactly the argument-order bug class the units layer
// exists to kill.
#include "energy/radio_model.hpp"
#include "util/units.hpp"

using namespace imobif;

double probe() {
  energy::RadioParams p;
  const energy::RadioEnergyModel radio(p);
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  return radio.transmit_energy(util::Meters{150.0}, util::Bits{8192.0})
      .value();
#else
  return radio.transmit_energy(util::Bits{8192.0}, util::Meters{150.0})
      .value();
#endif
}
