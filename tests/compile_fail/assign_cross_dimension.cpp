// Assigning a meter into a joule variable must not compile: different
// dimensions are unrelated types with no conversion between them.
#include "util/units.hpp"

using namespace imobif;

double probe() {
  util::Joules e{1.0};
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  e = util::Joules{2.0};
#else
  e = util::Meters{2.0};
#endif
  return e.value();
}
