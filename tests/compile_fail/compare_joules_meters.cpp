// Ordering a joule against a meter must not compile: relational operators
// only accept the same dimension.
#include "util/units.hpp"

using namespace imobif;

bool probe() {
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  return util::Joules{1.0} < util::Joules{2.0};
#else
  return util::Joules{1.0} < util::Meters{2.0};
#endif
}
