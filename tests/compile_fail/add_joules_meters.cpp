// Adding a joule to a meter must not compile: operator+ only exists for
// operands of the same dimension.
#include "util/units.hpp"

using namespace imobif;

double probe() {
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  return (util::Joules{1.0} + util::Joules{2.0}).value();
#else
  return (util::Joules{1.0} + util::Meters{2.0}).value();
#endif
}
