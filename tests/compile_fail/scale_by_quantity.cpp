// Compound scaling (*=) takes a dimensionless factor only; scaling a
// quantity by another quantity in place must not compile (m *= m would
// silently be m^2 stored as m).
#include "util/units.hpp"

using namespace imobif;

double probe() {
  util::Meters m{5.0};
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  m *= 2.0;
#else
  m *= util::Meters{2.0};
#endif
  return m.value();
}
