# Negative-compilation runner for one tests/compile_fail/ case.
#
# Invoked by ctest as
#   cmake -DCOMPILER=<c++> -DFLAGS=<flags> -DSRC=<case.cpp> -DLOG=<file>
#         -P run_case.cmake
#
# Two phases:
#   1. Positive control: the file MUST compile with
#      -DCOMPILE_FAIL_POSITIVE_CONTROL (the corrected expression). This
#      proves a failure in phase 2 comes from the forbidden mixing, not
#      from a broken include path or unrelated syntax error.
#   2. Negative check: without the define the file MUST fail to compile.
#
# The full compiler output of both phases is appended to LOG so CI can
# upload the harness transcript as an artifact.

separate_arguments(flag_list UNIX_COMMAND "${FLAGS}")
get_filename_component(case_name "${SRC}" NAME_WE)

execute_process(
  COMMAND ${COMPILER} ${flag_list} -DCOMPILE_FAIL_POSITIVE_CONTROL
          -fsyntax-only "${SRC}"
  RESULT_VARIABLE control_result
  OUTPUT_VARIABLE control_out
  ERROR_VARIABLE control_err)

execute_process(
  COMMAND ${COMPILER} ${flag_list} -fsyntax-only "${SRC}"
  RESULT_VARIABLE negative_result
  OUTPUT_VARIABLE negative_out
  ERROR_VARIABLE negative_err)

file(APPEND "${LOG}"
  "==== ${case_name} ====\n"
  "-- positive control (must compile): exit ${control_result}\n"
  "${control_out}${control_err}"
  "-- negative check (must NOT compile): exit ${negative_result}\n"
  "${negative_out}${negative_err}\n")

if(NOT control_result EQUAL 0)
  message(FATAL_ERROR
    "${case_name}: positive control failed to compile - the case is broken, "
    "not proving anything:\n${control_err}")
endif()

if(negative_result EQUAL 0)
  message(FATAL_ERROR
    "${case_name}: forbidden mixing COMPILED - the units layer lost its "
    "static guarantee")
endif()

message(STATUS "${case_name}: control compiles, forbidden mixing rejected")
