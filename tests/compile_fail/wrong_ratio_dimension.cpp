// Bits / rate is a duration. Binding it to anything but Seconds (here:
// Meters) must not compile.
#include "util/units.hpp"

using namespace imobif;

double probe() {
#ifdef COMPILE_FAIL_POSITIVE_CONTROL
  util::Seconds t = util::Bits{8192.0} / util::BitsPerSecond{1024.0};
#else
  util::Meters t = util::Bits{8192.0} / util::BitsPerSecond{1024.0};
#endif
  return t.value();
}
