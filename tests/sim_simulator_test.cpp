#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace imobif::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time::zero());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunsEventsAndAdvancesClock) {
  Simulator sim;
  std::vector<double> times;
  sim.at(Time::from_seconds(1.0), [&] { times.push_back(sim.now().seconds()); });
  sim.at(Time::from_seconds(2.0), [&] { times.push_back(sim.now().seconds()); });
  const std::size_t ran = sim.run();
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 2.0);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  sim.at(Time::from_seconds(5.0), [&] {
    sim.after(Time::from_seconds(2.0), [] {});
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 7.0);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.at(Time::from_seconds(5.0), [] {});
  sim.run();
  EXPECT_THROW(sim.at(Time::from_seconds(1.0), [] {}),
               std::invalid_argument);
}

TEST(Simulator, RunUntilHorizonLeavesLaterEvents) {
  Simulator sim;
  bool early = false, late = false;
  sim.at(Time::from_seconds(1.0), [&] { early = true; });
  sim.at(Time::from_seconds(10.0), [&] { late = true; });
  sim.run(Time::from_seconds(5.0));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.pending_events(), 1u);
  // Clock advanced to the horizon even though no event sits there.
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 5.0);
  sim.run();
  EXPECT_TRUE(late);
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator sim;
  int count = 0;
  sim.at(Time::from_seconds(1.0), [&] { ++count; });
  sim.at(Time::from_seconds(2.0), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, StopEndsRunEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.at(Time::from_seconds(i), [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.pending_events(), 7u);
  // A subsequent run resumes.
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.at(Time::from_seconds(1.0), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, EventBudgetAborts) {
  Simulator sim;
  sim.set_event_budget(10);
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] {
    sim.after(Time::from_seconds(1.0), tick);
  };
  sim.after(Time::from_seconds(1.0), tick);
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, NestedSchedulingSameTickRuns) {
  Simulator sim;
  std::vector<int> order;
  sim.at(Time::from_seconds(1.0), [&] {
    order.push_back(1);
    sim.after(Time::zero(), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator sim;
  for (int i = 1; i <= 5; ++i) sim.at(Time::from_seconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

}  // namespace
}  // namespace imobif::sim
