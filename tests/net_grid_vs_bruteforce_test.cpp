// Differential property test: GridIndex vs a brute-force reference.
//
// The grid is the ONLY neighbor-discovery path in the simulator (DESIGN.md
// §12) — routing, recruitment, and the admission oracle all stopped scanning
// all_nodes(). That makes its exact agreement with the O(N) linear scan a
// correctness invariant, not a performance detail: any divergence silently
// changes neighbor sets and breaks the fig5-8 bit-identity contract. The
// brute-force scan survives only here, as the oracle.
//
// Clouds are seeded and deliberately adversarial: positions exactly on cell
// boundaries (integer multiples of the cell size, where floor-based cell
// assignment is most fragile), coincident points, and dense random fill.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "geom/vec2.hpp"
#include "net/grid_index.hpp"
#include "util/rng.hpp"

namespace imobif::net {
namespace {

struct RefPoint {
  GridIndex::Id id;
  geom::Vec2 position;
};

/// Brute-force oracle: every id within `radius` (inclusive), ascending id.
std::vector<GridIndex::Id> brute_range(const std::vector<RefPoint>& points,
                                       geom::Vec2 center, double radius) {
  std::vector<GridIndex::Id> out;
  const double radius_sq = radius * radius;
  for (const RefPoint& p : points) {
    if (geom::distance_sq(p.position, center) <= radius_sq) {
      out.push_back(p.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Brute-force oracle for nearest(): minimum distance, ties to lowest id.
/// Mirrors the grid's contract exactly, including the `<`-only comparisons.
std::optional<GridIndex::Hit> brute_nearest(
    const std::vector<RefPoint>& points, geom::Vec2 center,
    double max_radius) {
  std::optional<GridIndex::Hit> best;
  const double max_sq = max_radius * max_radius;
  for (const RefPoint& p : points) {
    const double d_sq = geom::distance_sq(p.position, center);
    if (d_sq > max_sq) continue;
    const bool better =
        !best.has_value() || d_sq < best->distance_sq ||
        (!(best->distance_sq < d_sq) && p.id < best->id);
    if (better) best = GridIndex::Hit{p.id, p.position, d_sq};
  }
  return best;
}

std::vector<GridIndex::Id> grid_range_via_for_each(const GridIndex& index,
                                                   geom::Vec2 center,
                                                   double radius) {
  std::vector<GridIndex::Id> out;
  index.for_each_in_range(center, radius,
                          [&](GridIndex::Id id, geom::Vec2) {
                            out.push_back(id);
                          });
  std::sort(out.begin(), out.end());
  return out;
}

void expect_agreement(const GridIndex& index,
                      const std::vector<RefPoint>& points, geom::Vec2 center,
                      double radius, const char* what) {
  const auto expected = brute_range(points, center, radius);

  auto via_query = index.query(center, radius);
  std::sort(via_query.begin(), via_query.end());
  EXPECT_EQ(via_query, expected) << what << ": query() diverged at center ("
                                 << center.x << ", " << center.y
                                 << ") radius " << radius;

  const auto via_for_each = grid_range_via_for_each(index, center, radius);
  EXPECT_EQ(via_for_each, expected)
      << what << ": for_each_in_range() diverged at center (" << center.x
      << ", " << center.y << ") radius " << radius;

  const auto expected_nearest = brute_nearest(points, center, radius);
  const auto got_nearest = index.nearest(center, radius);
  ASSERT_EQ(got_nearest.has_value(), expected_nearest.has_value())
      << what << ": nearest() presence diverged";
  if (got_nearest.has_value()) {
    EXPECT_EQ(got_nearest->id, expected_nearest->id)
        << what << ": nearest() picked a different id at center ("
        << center.x << ", " << center.y << ")";
    EXPECT_EQ(got_nearest->distance_sq, expected_nearest->distance_sq);
  }
}

// Positions exactly on integer multiples of the cell size: the floor-based
// cell assignment puts each on a cell edge or corner, where an off-by-one
// in the ring bound would drop candidates.
TEST(GridVsBruteForce, CellBoundaryLattice) {
  constexpr double kCell = 180.0;
  GridIndex index(kCell);
  std::vector<RefPoint> points;
  GridIndex::Id next = 0;
  for (int ix = -3; ix <= 3; ++ix) {
    for (int iy = -3; iy <= 3; ++iy) {
      const geom::Vec2 p{ix * kCell, iy * kCell};
      index.insert(next, p);
      points.push_back({next, p});
      ++next;
    }
  }
  // Query from lattice points, cell centers, and just-off-boundary spots
  // with radii that land exactly on lattice distances.
  const std::vector<geom::Vec2> centers = {
      {0.0, 0.0},          {kCell, kCell},        {0.5 * kCell, 0.5 * kCell},
      {-kCell, 2 * kCell}, {kCell - 1e-9, kCell}, {3 * kCell, 3 * kCell}};
  const std::vector<double> radii = {0.0,         kCell,          2.0 * kCell,
                                     0.5 * kCell, kCell * 1.4143, 10.0 * kCell};
  for (const auto& c : centers) {
    for (const double r : radii) {
      expect_agreement(index, points, c, r, "lattice");
    }
  }
}

// Coincident points must all be reported by range queries, and nearest()
// must break the tie to the lowest id regardless of insertion order.
TEST(GridVsBruteForce, CoincidentPoints) {
  GridIndex index(100.0);
  std::vector<RefPoint> points;
  const geom::Vec2 spot{123.456, -78.9};
  // Insert in descending id order so "first inserted wins" would get the
  // tie-break wrong.
  for (GridIndex::Id id = 9; id != GridIndex::Id(-1) && id >= 4; --id) {
    index.insert(id, spot);
    points.push_back({id, spot});
  }
  index.insert(0, {spot.x + 50.0, spot.y});
  points.push_back({0, {spot.x + 50.0, spot.y}});

  expect_agreement(index, points, spot, 0.0, "coincident");
  expect_agreement(index, points, spot, 60.0, "coincident");
  const auto hit = index.nearest(spot, 500.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 4u);  // lowest id among the coincident stack
}

// Seeded random clouds over a mixed insert / move / remove workload, with
// every third position snapped to the cell lattice so boundary cases keep
// appearing as the cloud churns.
TEST(GridVsBruteForce, RandomCloudsWithChurn) {
  for (const std::uint64_t seed : {20050610ULL, 7ULL, 424242ULL}) {
    util::Rng rng(seed);
    constexpr double kCell = 180.0;
    GridIndex index(kCell);
    std::vector<RefPoint> points;

    const auto random_position = [&](int salt) {
      geom::Vec2 p{rng.uniform(-2000.0, 2000.0),
                   rng.uniform(-2000.0, 2000.0)};
      if (salt % 3 == 0) {
        p.x = std::floor(p.x / kCell) * kCell;  // exactly on a cell edge
      }
      if (salt % 5 == 0) {
        p.y = std::floor(p.y / kCell) * kCell;
      }
      return p;
    };

    for (GridIndex::Id id = 0; id < 300; ++id) {
      const geom::Vec2 p = random_position(static_cast<int>(id));
      index.insert(id, p);
      points.push_back({id, p});
    }

    for (int step = 0; step < 400; ++step) {
      const int op = static_cast<int>(rng.uniform_int(0, 3));
      if (op == 0 && !points.empty()) {
        const auto k = static_cast<std::size_t>(
            rng.uniform_int(0, points.size() - 1));
        const geom::Vec2 p = random_position(step);
        index.update(points[k].id, p);
        points[k].position = p;
      } else if (op == 1 && points.size() > 50) {
        const auto k = static_cast<std::size_t>(
            rng.uniform_int(0, points.size() - 1));
        index.remove(points[k].id);
        points.erase(points.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        const geom::Vec2 center{rng.uniform(-2200.0, 2200.0),
                                rng.uniform(-2200.0, 2200.0)};
        const double radius = rng.uniform(0.0, 600.0);
        expect_agreement(index, points, center, radius, "churn");
      }
    }
    // Final full-cloud sweep at the communication-range radius.
    expect_agreement(index, points, {0.0, 0.0}, kCell, "final");
    expect_agreement(index, points, {0.0, 0.0}, 5000.0, "final-wide");
  }
}

// nearest() must keep expanding rings past empty cells: a lone far point
// is still found when max_radius allows it, and missed when it does not.
TEST(GridVsBruteForce, NearestAcrossEmptyRings) {
  GridIndex index(100.0);
  std::vector<RefPoint> points;
  index.insert(42, {1250.0, 0.0});
  points.push_back({42, {1250.0, 0.0}});

  expect_agreement(index, points, {0.0, 0.0}, 1300.0, "far-hit");
  EXPECT_FALSE(index.nearest({0.0, 0.0}, 1000.0).has_value());
  const auto hit = index.nearest({0.0, 0.0}, 1250.0);  // inclusive boundary
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->id, 42u);
}

// The ring-termination bound must not stop early when a closer point sits
// in a *later* ring than the first hit (possible near cell corners).
TEST(GridVsBruteForce, NearestRingTermination) {
  GridIndex index(100.0);
  std::vector<RefPoint> points;
  // First hit shows up in ring 1 (cell distance), but the true nearest by
  // Euclidean distance lies in ring 2 almost straight down.
  index.insert(1, {199.0, 199.0});  // ring 1 corner, distance ~281
  points.push_back({1, {199.0, 199.0}});
  index.insert(2, {0.0, 250.0});  // ring 2, distance 250
  points.push_back({2, {0.0, 250.0}});

  const auto got = index.nearest({0.0, 0.0}, 1000.0);
  const auto want = brute_nearest(points, {0.0, 0.0}, 1000.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, want->id);
  EXPECT_EQ(got->id, 2u);
}

}  // namespace
}  // namespace imobif::net
