// Compiled with IMOBIF_CHECKS_OFF=1 (see tests/CMakeLists.txt), which
// overrides both Debug and -DIMOBIF_CHECKS=ON: contracts here must expand
// to nothing.
#include "util/check.hpp"
#include "util_check_probe.hpp"

static_assert(IMOBIF_CHECKS_ENABLED == 0,
              "this TU must be built with contracts forced off");

namespace imobif::test {
namespace {

void trip_assert([[maybe_unused]] bool cond) {
  IMOBIF_ASSERT(cond, "forced assert");
}
void trip_ensure([[maybe_unused]] bool cond) {
  IMOBIF_ENSURE(cond, "forced ensure");
}

int count_evaluations() {
  int calls = 0;
  IMOBIF_ASSERT(++calls > 0);
  return calls;
}

}  // namespace

const CheckProbe& checks_forced_off() {
  static const CheckProbe probe{IMOBIF_CHECKS_ENABLED == 1, &trip_assert,
                                &trip_ensure, &count_evaluations};
  return probe;
}

}  // namespace imobif::test
