#include "energy/radio_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace imobif::energy {
namespace {

RadioParams params(double a, double b, double alpha) {
  RadioParams p;
  p.a = a;
  p.b = b;
  p.alpha = alpha;
  return p;
}

TEST(RadioParams, ValidationRejectsBadValues) {
  EXPECT_THROW(params(-1e-7, 1e-10, 2.0).validate(), std::invalid_argument);
  EXPECT_THROW(params(1e-7, 0.0, 2.0).validate(), std::invalid_argument);
  EXPECT_THROW(params(1e-7, -1e-10, 2.0).validate(), std::invalid_argument);
  EXPECT_THROW(params(1e-7, 1e-10, 0.5).validate(), std::invalid_argument);
  EXPECT_NO_THROW(params(0.0, 1e-10, 1.0).validate());
}

TEST(RadioModel, PowerPerBitMatchesFormula) {
  const RadioEnergyModel m(params(1e-7, 1e-10, 2.0));
  EXPECT_DOUBLE_EQ(m.power_per_bit(0.0), 1e-7);
  EXPECT_DOUBLE_EQ(m.power_per_bit(100.0), 1e-7 + 1e-10 * 1e4);
}

TEST(RadioModel, NegativeDistanceThrows) {
  const RadioEnergyModel m(params(1e-7, 1e-10, 2.0));
  EXPECT_THROW(m.power_per_bit(-1.0), std::invalid_argument);
}

TEST(RadioModel, TransmitEnergyLinearInBits) {
  const RadioEnergyModel m(params(1e-7, 1e-10, 2.0));
  const double one = m.transmit_energy(100.0, 1.0);
  EXPECT_DOUBLE_EQ(m.transmit_energy(100.0, 1000.0), 1000.0 * one);
  EXPECT_DOUBLE_EQ(m.transmit_energy(100.0, 0.0), 0.0);
  EXPECT_THROW(m.transmit_energy(100.0, -1.0), std::invalid_argument);
}

TEST(RadioModel, SustainableBitsInvertsTransmit) {
  const RadioEnergyModel m(params(1e-7, 1e-10, 2.0));
  const double bits = m.sustainable_bits(150.0, 10.0);
  EXPECT_NEAR(m.transmit_energy(150.0, bits), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.sustainable_bits(150.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.sustainable_bits(150.0, -5.0), 0.0);
}

TEST(RadioModel, RangeForPowerInvertsPower) {
  const RadioEnergyModel m(params(1e-7, 1e-10, 2.0));
  const double p = m.power_per_bit(123.0);
  EXPECT_NEAR(m.range_for_power(p), 123.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.range_for_power(1e-7), 0.0);   // only electronics
  EXPECT_DOUBLE_EQ(m.range_for_power(1e-8), 0.0);   // below electronics
}

// Parameterized over path-loss exponents: monotonicity and convexity of P.
class RadioAlpha : public ::testing::TestWithParam<double> {};

TEST_P(RadioAlpha, PowerMonotoneIncreasing) {
  const RadioEnergyModel m(params(1e-7, 1e-10, GetParam()));
  double prev = m.power_per_bit(0.0);
  for (double d = 10.0; d <= 300.0; d += 10.0) {
    const double cur = m.power_per_bit(d);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST_P(RadioAlpha, EvenSplitNeverWorseThanDirect) {
  // Relaying at the midpoint halves the per-hop distance; with alpha >= 1
  // and two transmissions, total amplifier energy never exceeds the direct
  // transmission's amplifier energy (this is what makes relay placement on
  // the line optimal).
  const RadioEnergyModel m(params(0.0, 1e-10, GetParam()));
  for (double d = 20.0; d <= 300.0; d += 20.0) {
    const double direct = m.transmit_energy(d, 1000.0);
    const double two_hop = 2.0 * m.transmit_energy(d / 2.0, 1000.0);
    EXPECT_LE(two_hop, direct + 1e-12);
  }
}

TEST_P(RadioAlpha, RangeForPowerRoundTrip) {
  const RadioEnergyModel m(params(1e-7, 1e-10, GetParam()));
  for (double d = 1.0; d <= 250.0; d += 7.0) {
    EXPECT_NEAR(m.range_for_power(m.power_per_bit(d)), d, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, RadioAlpha,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0));

}  // namespace
}  // namespace imobif::energy
