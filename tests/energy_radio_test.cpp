#include "energy/radio_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace imobif::energy {
namespace {

using util::Bits;
using util::Joules;
using util::JoulesPerBit;
using util::Meters;

RadioParams params(double a, double b, double alpha) {
  RadioParams p;
  p.a = a;
  p.b = b;
  p.alpha = alpha;
  return p;
}

TEST(RadioParams, ValidationRejectsBadValues) {
  EXPECT_THROW(params(-1e-7, 1e-10, 2.0).validate(), std::invalid_argument);
  EXPECT_THROW(params(1e-7, 0.0, 2.0).validate(), std::invalid_argument);
  EXPECT_THROW(params(1e-7, -1e-10, 2.0).validate(), std::invalid_argument);
  EXPECT_THROW(params(1e-7, 1e-10, 0.5).validate(), std::invalid_argument);
  EXPECT_NO_THROW(params(0.0, 1e-10, 1.0).validate());
}

TEST(RadioModel, PowerPerBitMatchesFormula) {
  const RadioEnergyModel m(params(1e-7, 1e-10, 2.0));
  EXPECT_DOUBLE_EQ(m.power_per_bit(Meters{0.0}).value(), 1e-7);
  EXPECT_DOUBLE_EQ(m.power_per_bit(Meters{100.0}).value(),
                   1e-7 + 1e-10 * 1e4);
}

TEST(RadioModel, NegativeDistanceThrows) {
  const RadioEnergyModel m(params(1e-7, 1e-10, 2.0));
  EXPECT_THROW(m.power_per_bit(Meters{-1.0}), std::invalid_argument);
}

TEST(RadioModel, TransmitEnergyLinearInBits) {
  const RadioEnergyModel m(params(1e-7, 1e-10, 2.0));
  const Joules one = m.transmit_energy(Meters{100.0}, Bits{1.0});
  EXPECT_DOUBLE_EQ(m.transmit_energy(Meters{100.0}, Bits{1000.0}).value(),
                   (1000.0 * one).value());
  EXPECT_DOUBLE_EQ(m.transmit_energy(Meters{100.0}, Bits{0.0}).value(), 0.0);
  EXPECT_THROW(m.transmit_energy(Meters{100.0}, Bits{-1.0}),
               std::invalid_argument);
}

TEST(RadioModel, SustainableBitsInvertsTransmit) {
  const RadioEnergyModel m(params(1e-7, 1e-10, 2.0));
  const Bits bits = m.sustainable_bits(Meters{150.0}, Joules{10.0});
  EXPECT_NEAR(m.transmit_energy(Meters{150.0}, bits).value(), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.sustainable_bits(Meters{150.0}, Joules{0.0}).value(),
                   0.0);
  EXPECT_DOUBLE_EQ(m.sustainable_bits(Meters{150.0}, Joules{-5.0}).value(),
                   0.0);
}

TEST(RadioModel, RangeForPowerInvertsPower) {
  const RadioEnergyModel m(params(1e-7, 1e-10, 2.0));
  const JoulesPerBit p = m.power_per_bit(Meters{123.0});
  EXPECT_NEAR(m.range_for_power(p).value(), 123.0, 1e-9);
  // Only electronics / below electronics: zero range either way.
  EXPECT_DOUBLE_EQ(m.range_for_power(JoulesPerBit{1e-7}).value(), 0.0);
  EXPECT_DOUBLE_EQ(m.range_for_power(JoulesPerBit{1e-8}).value(), 0.0);
}

// Parameterized over path-loss exponents: monotonicity and convexity of P.
class RadioAlpha : public ::testing::TestWithParam<double> {};

TEST_P(RadioAlpha, PowerMonotoneIncreasing) {
  const RadioEnergyModel m(params(1e-7, 1e-10, GetParam()));
  JoulesPerBit prev = m.power_per_bit(Meters{0.0});
  for (double d = 10.0; d <= 300.0; d += 10.0) {
    const JoulesPerBit cur = m.power_per_bit(Meters{d});
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST_P(RadioAlpha, EvenSplitNeverWorseThanDirect) {
  // Relaying at the midpoint halves the per-hop distance; with alpha >= 1
  // and two transmissions, total amplifier energy never exceeds the direct
  // transmission's amplifier energy (this is what makes relay placement on
  // the line optimal).
  const RadioEnergyModel m(params(0.0, 1e-10, GetParam()));
  for (double d = 20.0; d <= 300.0; d += 20.0) {
    const Joules direct = m.transmit_energy(Meters{d}, Bits{1000.0});
    const Joules two_hop =
        2.0 * m.transmit_energy(Meters{d / 2.0}, Bits{1000.0});
    EXPECT_LE(two_hop, direct + Joules{1e-12});
  }
}

TEST_P(RadioAlpha, RangeForPowerRoundTrip) {
  const RadioEnergyModel m(params(1e-7, 1e-10, GetParam()));
  for (double d = 1.0; d <= 250.0; d += 7.0) {
    EXPECT_NEAR(m.range_for_power(m.power_per_bit(Meters{d})).value(), d,
                1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, RadioAlpha,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0));

}  // namespace
}  // namespace imobif::energy
